"""Setuptools shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` needs ``wheel`` for PEP 660;
offline boxes without it can use ``python setup.py develop`` instead.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
