#!/usr/bin/env python3
"""Quickstart: PMNet vs the baseline on a simple key-value update load.

Builds two simulated systems — the Client-Server baseline and PMNet as
the ToR switch — drives both with the same YCSB-style update workload,
and prints mean/p99 latency and throughput side by side.

Run:  python examples/quickstart.py
"""

from repro import DeploymentSpec, SystemConfig, build
from repro.experiments.driver import run_closed_loop
from repro.workloads.handlers import StructureHandler
from repro.workloads.pmdk.btree import PMBTree
from repro.workloads.ycsb import YCSBConfig, make_op_maker


def main() -> None:
    config = SystemConfig(seed=7).with_clients(8)
    workload = make_op_maker(YCSBConfig(update_ratio=1.0, population=10_000,
                                        payload_bytes=100))

    print("Driving 8 clients x 200 updates against a PMDK B-tree store...\n")
    results = {}
    for name, spec in [("Client-Server", DeploymentSpec(placement="none")),
                       ("PMNet-Switch", DeploymentSpec(placement="switch"))]:
        deployment = build(spec, config, handler=StructureHandler(PMBTree()))
        stats = run_closed_loop(deployment, workload,
                                requests_per_client=200,
                                warmup_requests=20)
        results[name] = stats
        print(f"{name:14s}  mean {stats.mean_latency_us():7.2f} us   "
              f"p99 {stats.p99_latency_us():7.2f} us   "
              f"{stats.ops_per_second():>10,.0f} ops/s   "
              f"completed via {dict(stats.completions_by_via)}")

    base = results["Client-Server"]
    pmnet = results["PMNet-Switch"]
    print(f"\nPMNet speedup: "
          f"{base.mean_latency_us() / pmnet.mean_latency_us():.2f}x mean "
          f"latency, {base.p99_latency_us() / pmnet.p99_latency_us():.2f}x "
          f"p99, {pmnet.ops_per_second() / base.ops_per_second():.2f}x "
          f"throughput")
    print("(paper: ~4.3x throughput at 100% updates, ~3.2x p99)")


if __name__ == "__main__":
    main()
