#!/usr/bin/env python3
"""TPC-C on PMNet: application-level ordering via bypass locks (Fig 5).

Most transactions (payments) are independent and enjoy sub-RTT
persistence; the stock-modifying NEW-ORDER transactions serialize
through a server-side lock that PMNet deliberately does *not* log, so
mutual exclusion is enforced where it must be — at the server — while
the updates inside the critical section still commit in-network.

Run:  python examples/tpcc_critical_sections.py
"""

from repro import DeploymentSpec, SystemConfig, build
from repro.experiments.driver import run_sessions
from repro.workloads import tpcc


def drive(name: str, spec: DeploymentSpec, config: SystemConfig):
    handler = tpcc.TPCCHandler(warehouses=2)
    deployment = build(
        spec, config, handler=handler,
        transport="tcp" if name == "Client-Server" else "udp")

    def session(index, api, rng):
        return tpcc.session(index, api, rng, transactions=120,
                            update_ratio=1.0, payload_bytes=100,
                            warehouses=2)

    stats = run_sessions(deployment, session, warmup_requests=10)
    server = deployment.server
    print(f"{name:14s}  mean {stats.mean_latency_us():7.2f} us   "
          f"p99 {stats.p99_latency_us():7.2f} us   "
          f"{stats.ops_per_second():>9,.0f} req/s")
    lock_ops = server.locks.acquisitions
    total = stats.requests
    print(f"{'':14s}  {handler.payments} payments, "
          f"{handler.new_orders} new-orders "
          f"({lock_ops} lock acquisitions, "
          f"{server.locks.conflicts} conflicts retried)")
    if deployment.devices:
        device = deployment.devices[0]
        logged = int(device.log.logged)
        print(f"{'':14s}  {logged}/{total} requests were logged "
              f"in-network; locks always bypassed")
    return stats


def main() -> None:
    config = SystemConfig(seed=23).with_clients(8)
    print("TPC-C: 8 terminals, 2 warehouses; ~8% of transactions enter "
          "the stock critical section\n")
    base = drive("Client-Server", DeploymentSpec(placement="none"), config)
    pmnet = drive("PMNet-Switch", DeploymentSpec(placement="switch"), config)
    print(f"\nPMNet throughput speedup: "
          f"{pmnet.ops_per_second() / base.ops_per_second():.2f}x")
    print("Lock requests pay the full RTT (correctness), everything else "
          "is sub-RTT (performance).")


if __name__ == "__main__":
    main()
