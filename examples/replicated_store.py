#!/usr/bin/env python3
"""3-way replication: in-network (chained PMNets) vs server-side.

Reproduces the Fig 9/21 comparison interactively: the same update load
runs against (a) a single PMNet, (b) three chained PMNet switches whose
log persists overlap, and (c) a primary server that synchronously
commits to two replicas before acknowledging.

Run:  python examples/replicated_store.py
"""

from repro import DeploymentSpec, SystemConfig, build
from repro.baselines import build_server_replication
from repro.experiments.driver import run_closed_loop
from repro.workloads.handlers import StructureHandler
from repro.workloads.kv import OpKind, Operation
from repro.workloads.pmdk.hashmap import PMHashmap


def op_maker(ci, ri, rng):
    return Operation(OpKind.SET, key=(ci, ri), value=b"payload"), 100


def main() -> None:
    config = SystemConfig(seed=5).with_clients(4)
    points = [
        ("PMNet x1 (no replication)",
         build(DeploymentSpec(placement="switch"), config,
               handler=StructureHandler(PMHashmap()))),
        ("PMNet x3 (in-network replication)",
         build(DeploymentSpec(placement="switch", chain_length=3), config,
               handler=StructureHandler(PMHashmap()))),
        ("Server-side x3 replication",
         build_server_replication(config,
                                  handler=StructureHandler(PMHashmap()),
                                  replicas=3)),
    ]
    latencies = {}
    for name, deployment in points:
        stats = run_closed_loop(deployment, op_maker,
                                requests_per_client=150, warmup_requests=15)
        latencies[name] = stats.update_latencies.mean() / 1000.0
        extra = ""
        if deployment.devices:
            acks = [int(d.acks_sent) for d in deployment.devices]
            extra = f"   (per-device PMNet-ACKs: {acks})"
        print(f"{name:36s} mean update {latencies[name]:7.2f} us{extra}")

    single = latencies["PMNet x1 (no replication)"]
    chained = latencies["PMNet x3 (in-network replication)"]
    server = latencies["Server-side x3 replication"]
    print(f"\n3-way PMNet overhead over single log: "
          f"{100 * (chained / single - 1):.1f}%   (paper: ~16%)")
    print(f"PMNet x3 vs server-side x3 speedup: {server / chained:.2f}x"
          f"   (paper: 5.88x)")
    print("\nThe chained persists overlap (Fig 9b): the client waits for "
          "all three\nACKs, but they race each other down the same path.")


if __name__ == "__main__":
    main()
