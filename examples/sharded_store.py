#!/usr/bin/env python3
"""A sharded PM store behind one PMNet switch.

Three shard servers hold disjoint key ranges; every client talks to all
of them through one ToR PMNet device, which logs traffic for every
shard.  One shard power-fails mid-run — its clients keep completing
(the switch log absorbs the outage) and on restart the device replays
*only that shard's* entries to it.

Run:  python examples/sharded_store.py
"""

from repro import DeploymentSpec, SystemConfig, build
from repro.failure.injector import FailureInjector
from repro.sim.clock import format_time, microseconds, milliseconds
from repro.workloads.handlers import StructureHandler
from repro.workloads.kv import OpKind, Operation
from repro.workloads.pmdk.hashmap import PMHashmap


def main() -> None:
    config = SystemConfig(seed=29).with_clients(4)
    handlers = []

    def handler_factory():
        handler = StructureHandler(PMHashmap())
        handlers.append(handler)
        return handler

    deployment = build(DeploymentSpec(placement="switch",
                                      servers_per_rack=3), config,
                       handler_factory=handler_factory)
    sim = deployment.sim
    injector = FailureInjector(sim)
    written = {}

    def client_proc(index, client):
        for i in range(50):
            key = f"user:{index}:{i}"
            completion = yield client.send_update(
                Operation(OpKind.SET, key=key, value=i))
            if completion.result.ok:
                written[key] = i
            yield config.client.think_time_ns

    deployment.open_all_sessions()
    for index, client in enumerate(deployment.clients):
        sim.spawn(client_proc(index, client), f"client{index}")

    victim = deployment.servers[1]
    injector.crash_server_at(victim, microseconds(300))
    recovery = injector.recover_server_at(victim, milliseconds(2.5),
                                          deployment.pmnet_names)
    sim.run()

    client = deployment.clients[0]
    shard_sizes = [len(handler.structure) for handler in handlers]
    print(f"3 shards behind one PMNet switch; {len(written)}/200 updates "
          "acknowledged")
    print(f"shard sizes after the run: {shard_sizes}")
    print(f"shard 1 ({victim.host.name}) was down "
          f"{format_time(microseconds(300))} -> "
          f"{format_time(milliseconds(2.5))}; replayed "
          f"{int(deployment.devices[0].resend_engine.resends)} of its "
          "entries on recovery")

    lost = sum(1 for key, value in written.items()
               if dict(handlers[client.shard_index(key)]
                       .structure.items()).get(key) != value)
    misplaced = sum(
        1 for key in written
        for shard, handler in enumerate(handlers)
        if shard != client.shard_index(key)
        and key in dict(handler.structure.items()))
    print(f"acknowledged updates lost: {lost}; misplaced keys: {misplaced}")
    assert lost == 0 and misplaced == 0
    print("every key is durable, on exactly the shard that owns it.")


if __name__ == "__main__":
    main()
