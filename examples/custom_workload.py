#!/usr/bin/env python3
"""Tutorial: bring your own workload to PMNet.

Shows the two extension points a downstream user needs:

1. a **request handler** — the server-side application (here: a tiny
   persistent event-sourcing ledger with metered PM costs);
2. a **session generator** — the client-side access pattern (here:
   append events, occasionally fold a snapshot, rarely audit-read).

Everything else (protocol, logging, recovery) comes from the library;
the example finishes by crash-testing the custom workload to show that
recovery guarantees hold for user code too.

Run:  python examples/custom_workload.py
"""

from repro import DeploymentSpec, SystemConfig, build
from repro.experiments.driver import run_sessions
from repro.failure.injector import FailureInjector
from repro.host.handler import HandlerOutcome, RequestHandler
from repro.sim.clock import microseconds, milliseconds
from repro.workloads.kv import OpKind, Operation, Result


class LedgerHandler(RequestHandler):
    """An append-only, PM-backed event ledger with periodic snapshots."""

    name = "ledger"

    def __init__(self) -> None:
        self.events: list = []          # the PM-resident event log
        self.snapshot_balance = 0.0     # folded snapshot, also in PM
        self.snapshot_upto = 0

    def process(self, op: Operation) -> HandlerOutcome:
        if op.kind is OpKind.PROC_UPDATE and op.proc == "append":
            self.events.append((op.args["account"], op.args["amount"]))
            # One PM append + flush, like an AOF record.
            return HandlerOutcome(Result(ok=True, value=len(self.events)),
                                  microseconds(6), 16)
        if op.kind is OpKind.PROC_UPDATE and op.proc == "fold":
            unfolded = self.events[self.snapshot_upto:]
            for _account, amount in unfolded:
                self.snapshot_balance += amount
            self.snapshot_upto = len(self.events)
            cost = microseconds(4) + microseconds(0.5) * len(unfolded)
            return HandlerOutcome(Result(ok=True), round(cost), 16)
        if op.kind is OpKind.PROC_READ and op.proc == "audit":
            balance = self.snapshot_balance + sum(
                amount for _a, amount in self.events[self.snapshot_upto:])
            cost = microseconds(3) + microseconds(0.2) * (
                len(self.events) - self.snapshot_upto)
            return HandlerOutcome(Result(ok=True, value=balance),
                                  round(cost))
        return HandlerOutcome(Result(ok=False, error="unknown_proc"),
                              microseconds(1), 16)

    def recovery_cost_ns(self) -> int:
        # Reopen the pool and re-validate the snapshot horizon.
        return milliseconds(50) + microseconds(1) * len(self.events)


def ledger_session(index, api, rng, requests=120):
    """The client's access pattern: mostly appends, periodic folds."""
    for i in range(requests):
        roll = rng.random()
        if roll < 0.85:
            op = Operation(OpKind.PROC_UPDATE, proc="append",
                           args={"account": index,
                                 "amount": round(rng.uniform(-50, 100), 2)})
        elif roll < 0.95:
            op = Operation(OpKind.PROC_UPDATE, proc="fold")
        else:
            op = Operation(OpKind.PROC_READ, proc="audit")
        yield from api.request(op, 100)


def main() -> None:
    config = SystemConfig(seed=17).with_clients(6)
    handler = LedgerHandler()
    deployment = build(DeploymentSpec(placement="switch"), config,
                       handler=handler)
    injector = FailureInjector(deployment.sim)
    # Crash the server mid-run: the ledger must survive via log replay.
    injector.crash_server_at(deployment.server, microseconds(600))
    injector.recover_server_at(deployment.server, milliseconds(3),
                               deployment.pmnet_names)
    stats = run_sessions(deployment, lambda i, api, rng:
                         ledger_session(i, api, rng))
    print(f"custom ledger on PMNet: update mean "
          f"{stats.update_latencies.mean() / 1000:.2f} us, p99 "
          f"{stats.p99_latency_us():.2f} us, "
          f"{stats.ops_per_second():,.0f} req/s")
    print(f"completed via: {dict(stats.completions_by_via)}")
    print("(reads issued during the outage stalled until recovery — "
          "updates kept completing\n through the switch log the whole "
          "time; that asymmetry is the paper's point.)")
    appended = sum(1 for _k in handler.events)
    print(f"\nserver crashed at 600 us and recovered; ledger holds "
          f"{appended} events")
    device = deployment.devices[0]
    print(f"log replay resent {int(device.resend_engine.resends)} requests; "
          f"{int(deployment.server.makeup_acks)} duplicates were "
          "make-up-ACKed (exactly-once)")
    balance = handler.snapshot_balance + sum(
        amount for _a, amount in handler.events[handler.snapshot_upto:])
    print(f"final audited balance: {balance:.2f}")


if __name__ == "__main__":
    main()
