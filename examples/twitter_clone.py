#!/usr/bin/env python3
"""The paper's Twitter (Retwis) workload on PMNet.

Each simulated client registers a user (the shared ``lastUID`` counter
of Fig 4 — no cross-client ordering), then mixes tweet posts, follows,
and timeline reads.  Posts and follows are update requests persisted
in-network; timeline reads bypass to the server.

Run:  python examples/twitter_clone.py
"""

from repro import DeploymentSpec, SystemConfig, build
from repro.experiments.driver import run_sessions
from repro.workloads import twitter
from repro.workloads.twitter import TwitterHandler


def drive(name: str, spec: DeploymentSpec, config: SystemConfig) -> None:
    handler = TwitterHandler()
    deployment = build(spec, config, handler=handler,
                       transport="tcp" if name == "Client-Server"
                       else "udp")

    def session(index, api, rng):
        return twitter.session(index, api, rng, requests=150,
                               update_ratio=0.8, payload_bytes=100,
                               population=config.num_clients)

    stats = run_sessions(deployment, session, warmup_requests=10)
    store = handler.store
    print(f"{name:14s}  mean {stats.mean_latency_us():7.2f} us   "
          f"p99 {stats.p99_latency_us():7.2f} us   "
          f"{stats.ops_per_second():>9,.0f} req/s")
    print(f"{'':14s}  server state: {handler.posts} tweets posted, "
          f"{handler.timeline_reads} timelines read, "
          f"{len(store)} Redis keys")


def main() -> None:
    config = SystemConfig(seed=11).with_clients(8)
    print("Retwis workload: 8 clients, 80% updates "
          "(posts/follows), 20% timeline reads\n")
    drive("Client-Server", DeploymentSpec(placement="none"), config)
    drive("PMNet-Switch", DeploymentSpec(placement="switch"), config)
    print("\nNote: every client got a distinct UID from the shared "
          "lastUID counter\nwithout any cross-client ordering — the "
          "independence the paper's Sec III-C relies on.")


if __name__ == "__main__":
    main()
