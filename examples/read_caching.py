#!/usr/bin/env python3
"""The in-network read cache (Fig 10/11) on a mixed GET/SET load.

Runs the same zipfian 50%-update workload against three systems and
renders their latency CDFs as an ASCII plot: the baseline, PMNet
(updates sub-RTT, reads full-RTT — the Fig 20b knee), and PMNet with
the persistent read cache (hits are served by the switch).

Run:  python examples/read_caching.py
"""

from repro import DeploymentSpec, SystemConfig, build
from repro.analysis.plot import ascii_cdf
from repro.experiments.driver import run_closed_loop
from repro.workloads.handlers import StructureHandler
from repro.workloads.pmdk.hashmap import PMHashmap
from repro.workloads.traces import WorkloadTrace
from repro.workloads.ycsb import YCSBConfig, make_op_maker


def main() -> None:
    config = SystemConfig(seed=13).with_clients(8)
    # One trace drives all three systems: identical request streams.
    trace = WorkloadTrace.capture(
        make_op_maker(YCSBConfig(update_ratio=0.5, population=512,
                                 zipf_theta=0.9)),
        clients=8, requests_per_client=160, seed=13,
        description="zipfian 50% updates")

    systems = {
        "baseline": build(DeploymentSpec(placement="none"), config,
                          handler=StructureHandler(PMHashmap())),
        "pmnet": build(DeploymentSpec(placement="switch"), config,
                       handler=StructureHandler(PMHashmap())),
        "pmnet+cache": build(DeploymentSpec(placement="switch",
                                            enable_cache=True), config,
                             handler=StructureHandler(PMHashmap())),
    }
    curves = {}
    for name, deployment in systems.items():
        stats = run_closed_loop(deployment, trace.op_maker(), 160, 16)
        curves[name] = [(value / 1000.0, fraction)
                        for value, fraction in stats.all_latencies.cdf(60)]
        cache_note = ""
        if name == "pmnet+cache":
            cache = deployment.devices[0].cache
            cache_note = (f"   cache: {100 * cache.hit_rate():.0f}% hit "
                          f"rate, {int(cache.hits)} switch-served reads")
        print(f"{name:12s} mean {stats.mean_latency_us():6.2f} us   "
              f"p99 {stats.p99_latency_us():7.2f} us"
              f"{cache_note}")

    print()
    print(ascii_cdf(curves, width=66, height=18,
                    title="request latency CDF (50% updates, zipfian)"))
    print("\nThe PMNet curve bends at ~p50 (reads pay the server RTT); "
          "the cached\ncurve keeps more of its mass at sub-RTT latency — "
          "Fig 20b's shape.")


if __name__ == "__main__":
    main()
