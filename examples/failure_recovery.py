#!/usr/bin/env python3
"""Crash the server mid-run and watch PMNet's redo log recover it.

Clients keep writing; at t=0.4 ms the server power-fails.  Clients
*keep completing* (their updates are persistent in the switch's PM) and
the device log absorbs everything the dead server misses.  When the
server comes back, it polls PMNet, replays the log in order, and ends
up with every acknowledged update — the Sec IV-E/VI-B6 story.

Run:  python examples/failure_recovery.py
"""

from repro import DeploymentSpec, SystemConfig, build
from repro.failure.injector import FailureInjector
from repro.sim.clock import format_time, microseconds, milliseconds
from repro.workloads.handlers import StructureHandler
from repro.workloads.kv import OpKind, Operation
from repro.workloads.pmdk.btree import PMBTree


def main() -> None:
    config = SystemConfig(seed=3).with_clients(4)
    handler = StructureHandler(PMBTree())
    deployment = build(DeploymentSpec(placement="switch"), config,
                       handler=handler)
    sim = deployment.sim
    injector = FailureInjector(sim)
    acknowledged = {}

    def client_proc(index, client):
        for i in range(60):
            key = (index, i)
            completion = yield client.send_update(
                Operation(OpKind.SET, key=key, value=f"v{index}.{i}"))
            if completion.result.ok:
                acknowledged[key] = f"v{index}.{i}"
            yield config.client.think_time_ns

    deployment.open_all_sessions()
    for index, client in enumerate(deployment.clients):
        sim.spawn(client_proc(index, client), f"client{index}")

    crash_at = microseconds(400)
    recover_at = crash_at + milliseconds(2)
    record = injector.crash_server_at(deployment.server, crash_at)
    recovery = injector.recover_server_at(deployment.server, recover_at,
                                          deployment.pmnet_names, record)
    device = deployment.devices[0]
    sim.schedule_at(recover_at - 1, lambda: print(
        f"[{format_time(sim.now)}] server still down; device log holds "
        f"{device.log.durable_count} durable entries"))
    sim.run()

    print(f"[{format_time(crash_at)}] server power-cut "
          f"({record.volatile_lost} queued requests lost from DRAM)")
    print(f"[{format_time(recover_at)}] server restarted; polled "
          f"{deployment.pmnet_names}")
    print(f"log replay: {int(device.resend_engine.resends)} requests "
          f"resent, {int(device.resend_engine.skipped_committed)} already "
          f"committed, {int(deployment.server.makeup_acks)} make-up ACKs")
    print(f"recovery completed in "
          f"{format_time(recovery.value)} after restart")

    state = dict(handler.structure.items())
    lost = {k: v for k, v in acknowledged.items() if state.get(k) != v}
    print(f"\nclients completed {len(acknowledged)}/240 updates; "
          f"store holds {len(state)} keys")
    print("acknowledged updates lost:", len(lost))
    assert not lost, "durability violated!"
    handler.structure.check_invariants()
    print("B-tree invariants hold after replay — recovery is exact.")


if __name__ == "__main__":
    main()
