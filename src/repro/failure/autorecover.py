"""Heartbeat-driven automatic recovery orchestration.

Sec IV-E notes that "these systems typically monitor servers' status
using heartbeats" — failures are *detected*, not announced.  The
:class:`RecoveryManager` closes that loop without any simulator
omniscience: a monitor host pings the server; when enough beats are
missed it marks the server failed, and when pongs resume after an
intermittent outage it triggers the server's recovery poll against the
PMNet devices.

Experiments that want scripted failure times keep using
:class:`~repro.failure.injector.FailureInjector` directly; the manager
is for end-to-end runs where detection latency itself matters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.host.heartbeat import HeartbeatMonitor, MonitorEndpoint
from repro.host.node import HostNode
from repro.host.server import PMNetServer
from repro.host.stackmodel import UDP, HostStack
from repro.sim.clock import microseconds
from repro.sim.event import SimEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.deploy import Deployment
    from repro.sim.kernel import Simulator


class RecoveryManager:
    """Detects server outages via heartbeats and drives recovery.

    The manager runs on its own monitor host attached to the fabric.
    On detected recovery of the server *host* (pongs flowing again after
    a failure), it invokes ``server.recover(pmnet_devices)``, which runs
    application recovery and the log-replay poll.
    """

    def __init__(self, sim: "Simulator", monitor_host: HostNode,
                 server: PMNetServer, pmnet_devices: List[str],
                 period_ns: int = microseconds(150),
                 miss_threshold: int = 3) -> None:
        self.sim = sim
        self.server = server
        self.pmnet_devices = list(pmnet_devices)
        self.endpoint = MonitorEndpoint(monitor_host)
        self.monitor = self.endpoint.attach(HeartbeatMonitor(
            sim, monitor_host, server.host.name, period_ns=period_ns,
            miss_threshold=miss_threshold,
            on_failure=self._on_failure_detected,
            on_recovery=self._on_host_back))
        self.detections = 0
        self.recoveries_started = 0
        #: Recovery triggers suppressed because one was already running
        #: for the same outage (pong bursts on a flapping link).
        self.recoveries_skipped = 0
        self.detected_at_ns: List[int] = []
        #: Succeeds (with the recovery duration) when the next automatic
        #: recovery completes; re-armed for each outage.
        self.recovery_done: Optional[SimEvent] = None
        #: Host epoch at which the in-flight recovery started; a crash
        #: bumps the epoch, which is what legitimizes a new recovery.
        self._recovery_epoch: Optional[int] = None

    def start(self) -> None:
        self.monitor.start()

    def stop(self) -> None:
        self.monitor.stop()

    # ------------------------------------------------------------------
    def _on_failure_detected(self) -> None:
        self.detections += 1
        self.detected_at_ns.append(self.sim.now)

    def _on_host_back(self) -> None:
        """Pongs are flowing again: the machine rebooted; start the
        application + log-replay recovery.

        A flapping network can deliver pong bursts *during* an in-flight
        recovery (dead -> alive -> dead -> alive within one app-recovery
        window); calling ``server.recover()`` again then would clobber
        the recovery state and spawn a duplicate worker pool.  While a
        recovery is in flight, a repeat trigger is only honored after a
        genuine new *application* crash: the host epoch must have moved
        (the host really failed again, not just a lossy window faking a
        detection) and the application must be down again (a bare host
        flap leaves it running and the in-flight recovery valid).
        """
        in_flight = (self.recovery_done is not None
                     and not self.recovery_done.triggered)
        crashed_again = (self._recovery_epoch != self.server.host.epoch
                         and not self.server.app_ready)
        if in_flight and not crashed_again:
            self.recoveries_skipped += 1
            return
        self.recoveries_started += 1
        self._recovery_epoch = self.server.host.epoch
        inner = self.server.recover(self.pmnet_devices)
        proxy = self.sim.event("auto-recovery-done")
        inner.add_callback(
            lambda event: proxy.succeed(event.value)
            if not proxy.triggered else None)
        self.recovery_done = proxy


def attach_recovery_manager(deployment: "Deployment",
                            period_ns: int = microseconds(150),
                            miss_threshold: int = 3) -> RecoveryManager:
    """Wire a monitor host into a deployment and return its manager.

    Must be called before the simulation starts (it adds a host and
    recomputes routes).
    """
    sim = deployment.sim
    stack = HostStack(sim, "recovery-monitor",
                      deployment.config.client_stack, UDP)
    host = HostNode(sim, "recovery-monitor", stack)
    deployment.topology.add(host)
    attach_point = (deployment.switches[0] if deployment.switches
                    else deployment.devices[0])
    deployment.topology.connect(host, attach_point)
    deployment.topology.compute_routes()
    return RecoveryManager(sim, host, deployment.server,
                           deployment.pmnet_names, period_ns=period_ns,
                           miss_threshold=miss_threshold)
