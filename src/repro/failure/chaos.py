"""Seed-driven chaos sweeps: random deployments, faults, and checking.

The failure scenarios in :mod:`repro.failure.scenarios` replay the
paper's *hand-picked* crash points (Figs 12/13).  This module explores
the space around them: from one integer seed it derives

* a randomized deployment — replication chain length 1-3, read cache
  on or off, client count, one of the five PMDK structures, and a
  YCSB-style workload mix (update ratio, Zipfian skew, payload size,
  and a deliberately small keyspace so clients contend); and
* a randomized fault schedule composed from the existing
  :class:`~repro.failure.injector.FailureInjector` primitives (server
  power-cut + recovery, device power-cut + recovery, permanent device
  death + blank replacement) plus timed
  :class:`~repro.net.link.Impairments` windows (loss / duplication /
  reordering on one directed channel).

:func:`generate_fabric_plan` explores the multi-rack spine/leaf fabric
the same way: every plan is a :class:`DeploymentSpec` (see
:meth:`ChaosPlan.deployment_spec`), and fabric schedules add
chain-member device loss mid-write, leaf-spine uplink impairment
windows, and whole-rack outages.  ``pmnet-repro chaos --fabric`` sweeps
them; failing fabric seeds land in
``tests/failure/chaos_fabric_corpus.txt``.

The run is driven to quiescence and validated twice over: the
PMTest-style :class:`~repro.analysis.persistcheck.PersistenceChecker`
rules R1-R6 on the trace, and a durability oracle comparing every
client-acknowledged update against the recovered store.  Everything is
a pure function of the seed — the plan, the simulated timeline, the
trace digest, and the verdict — so a failing seed IS the bug report.

On a violation, :func:`shrink` bisects the fault schedule down to a
1-minimal failing subset and :func:`repro_line` renders the exact CLI
invocation that replays it.  Failing seeds land in
``tests/failure/chaos_corpus.txt`` (see :func:`append_to_corpus`),
which the tier-1 suite replays as regression tests.

Fan-out reuses the job protocol (:mod:`repro.experiments.jobs`): the
``chaos`` registry entry exposes ``jobs``/``run_point``/``assemble``,
so ``pmnet-repro chaos --runs 200 --jobs 8`` ships seeds to worker
processes exactly like any figure sweep.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.persistcheck import PersistenceChecker
from repro.analysis.report import format_table
from repro.config import SystemConfig
from repro.errors import SimulationError
from repro.experiments.deploy import DeploymentSpec, build
from repro.experiments.jobs import JobResult, JobSpec, execute_serial
from repro.failure.injector import FailureInjector
from repro.net.link import Impairments
from repro.net.packet import reset_frame_ids
from repro.obs.context import Observability
from repro.protocol.packet import reset_request_ids
from repro.workloads import PMDK_STRUCTURES, StructureHandler
from repro.workloads.ycsb import YCSBConfig, YCSBGenerator

#: Fault kinds a plan may schedule.
SERVER_OUTAGE = "server-outage"
DEVICE_OUTAGE = "device-outage"
DEVICE_REPLACE = "device-replace"
IMPAIRMENT = "impairment"
#: Fabric-only fault kinds (multi-rack plans).
RACK_OUTAGE = "rack-outage"
SPINE_IMPAIRMENT = "spine-impairment"
#: Control-plane fault kind (control plans): a scripted live migration
#: ``target`` server -> ``dest`` server through the deployment's
#: :class:`~repro.control.migrator.SessionMigrator`.
REBALANCE = "rebalance"

#: The adversarial control-plane schedule shapes
#: :func:`generate_control_plan` draws from.
CONTROL_SHAPES = ("rebalance-outage", "migration-replay", "flapping")

#: Default sweep sizes for the registry entry / ``pmnet-repro run chaos``.
QUICK_SWEEP_SEEDS = 12
FULL_SWEEP_SEEDS = 48


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: a window ``[at_ns, at_ns + duration_ns)``.

    ``target`` selects the victim (device index for device faults,
    directed-channel index for impairments; reduced modulo the actual
    population at run time, so it stays valid for any plan shape).
    """

    kind: str
    at_ns: int
    duration_ns: int
    target: int = 0
    loss: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    #: Migration destination (REBALANCE only): server index, reduced
    #: modulo the population and bumped off the source on collision.
    dest: int = 0

    @property
    def end_ns(self) -> int:
        return self.at_ns + self.duration_ns

    def describe(self) -> str:
        window = f"@{self.at_ns}ns +{self.duration_ns}ns"
        if self.kind == IMPAIRMENT:
            return (f"{self.kind} {window} channel#{self.target} "
                    f"loss={self.loss} dup={self.duplicate} "
                    f"reorder={self.reorder}")
        if self.kind == SPINE_IMPAIRMENT:
            return (f"{self.kind} {window} uplink#{self.target} "
                    f"loss={self.loss} dup={self.duplicate} "
                    f"reorder={self.reorder}")
        if self.kind == SERVER_OUTAGE:
            return f"{self.kind} {window} server#{self.target}"
        if self.kind == RACK_OUTAGE:
            return f"{self.kind} {window} rack#{self.target}"
        if self.kind == REBALANCE:
            return (f"{self.kind} @{self.at_ns}ns "
                    f"server#{self.target}->server#{self.dest}")
        return f"{self.kind} {window} device#{self.target}"


@dataclass(frozen=True)
class ChaosPlan:
    """Everything one chaos run does, derived from ``seed`` alone."""

    seed: int
    replication: int
    enable_cache: bool
    clients: int
    requests_per_client: int
    structure: str
    update_ratio: float
    zipf_theta: float
    payload_bytes: int
    population: int
    faults: Tuple[Fault, ...]
    #: Fabric shape (defaults describe the legacy one-ToR deployments).
    racks: int = 1
    spines: int = 1
    devices_per_rack: int = 1
    servers_per_rack: int = 1
    spine_propagation_ns: Optional[int] = None
    #: Control plans: attach a (scripted, balancer-idle) control plane
    #: so REBALANCE faults can drive its migrator.
    control: bool = False
    control_shape: str = ""

    def deployment_spec(self) -> DeploymentSpec:
        """The declarative deployment this plan stands up."""
        return DeploymentSpec(
            racks=self.racks, spines=self.spines, placement="switch",
            chain_length=self.replication,
            devices_per_rack=self.devices_per_rack,
            servers_per_rack=self.servers_per_rack,
            enable_cache=self.enable_cache,
            spine_propagation_ns=self.spine_propagation_ns,
            control_period_ns=100_000 if self.control else None)

    @property
    def is_fabric(self) -> bool:
        return self.racks > 1

    def describe(self) -> str:
        shape = (f"{self.racks}x{self.devices_per_rack} PMNet(s) over "
                 f"{self.spines} spine(s), "
                 f"{self.servers_per_rack} shard(s)/rack"
                 if self.is_fabric else f"{self.replication} PMNet(s)")
        lines = [
            f"chaos seed {self.seed}: {self.clients} client(s), "
            f"{shape}, "
            f"cache {'on' if self.enable_cache else 'off'}, "
            f"{self.structure}, "
            f"{self.requests_per_client} req/client, "
            f"update={self.update_ratio} zipf={self.zipf_theta} "
            f"payload={self.payload_bytes}B keys={self.population}"]
        if self.is_fabric:
            lines[0] += f" chain={self.replication}"
        if self.control:
            lines[0] += f" control[{self.control_shape}]"
        if not self.faults:
            lines.append("  (no faults)")
        for index, fault in enumerate(self.faults):
            lines.append(f"  [{index}] {fault.describe()}")
        return "\n".join(lines)


def generate_plan(seed: int) -> ChaosPlan:
    """Derive a deployment + fault schedule from one integer seed.

    Pure: the same seed always yields the same plan (the RNG is a
    dedicated ``random.Random(f"chaos/{seed}")``, untouched by any
    simulation stream).  Fault windows never overlap globally — each
    window starts after the previous one ends — which keeps every
    schedule recoverable: a server recovery never polls a dead device,
    and at most ``replication - 1`` devices are ever replaced (a blank
    board forgets its log, so one durable copy must survive;
    Sec IV-E2).
    """
    rng = random.Random(f"chaos/{seed}")
    replication = rng.randint(1, 3)
    enable_cache = rng.random() < 0.5
    clients = rng.randint(1, 4)
    requests_per_client = rng.randint(8, 20)
    structure = rng.choice(sorted(PMDK_STRUCTURES))
    update_ratio = rng.choice([0.5, 0.9, 1.0])
    zipf_theta = rng.choice([0.0, 0.9])
    payload_bytes = rng.choice([64, 100, 256])
    population = rng.choice([16, 256])

    faults: List[Fault] = []
    cursor = 60_000  # let the first requests get going
    server_outages = 0
    replacements = 0
    for _ in range(rng.randint(1, 4)):
        kind = rng.choice([SERVER_OUTAGE, DEVICE_OUTAGE, DEVICE_REPLACE,
                           IMPAIRMENT])
        # The server's crash/recover cycle is exercised once per run;
        # replacements must leave a surviving log copy.
        if kind == SERVER_OUTAGE and server_outages:
            kind = DEVICE_OUTAGE
        if kind == DEVICE_REPLACE and replacements >= replication - 1:
            kind = DEVICE_OUTAGE
        start = cursor + rng.randrange(20_000, 150_000)
        if kind == IMPAIRMENT:
            fault = Fault(kind, start, rng.randrange(50_000, 250_000),
                          target=rng.randrange(1024),
                          loss=round(rng.uniform(0.05, 0.3), 3),
                          duplicate=round(rng.uniform(0.0, 0.3), 3),
                          reorder=round(rng.uniform(0.0, 0.3), 3))
        elif kind == SERVER_OUTAGE:
            server_outages += 1
            fault = Fault(kind, start, rng.randrange(100_000, 400_000))
        else:
            if kind == DEVICE_REPLACE:
                replacements += 1
            fault = Fault(kind, start, rng.randrange(50_000, 250_000),
                          target=rng.randrange(replication))
        faults.append(fault)
        cursor = fault.end_ns
    return ChaosPlan(seed=seed, replication=replication,
                     enable_cache=enable_cache, clients=clients,
                     requests_per_client=requests_per_client,
                     structure=structure, update_ratio=update_ratio,
                     zipf_theta=zipf_theta, payload_bytes=payload_bytes,
                     population=population, faults=tuple(faults))


def generate_fabric_plan(seed: int) -> ChaosPlan:
    """Derive a multi-rack fabric deployment + fault schedule from a seed.

    A separate generator (its own RNG namespace) so every legacy
    ``generate_plan`` seed — including the shipped corpus — stays
    byte-identical.  Fabric plans add the cross-rack failure modes: a
    chain-member device lost mid-write (the in-flight update must still
    complete and stay durable), an impairment window on one leaf-spine
    uplink (chain hops cross it), and a whole-rack outage (every device
    and shard server in the rack, recovered together).  The same
    invariants hold: windows never overlap, the blank-replacement
    budget leaves one durable chain copy (Sec IV-E2).
    """
    rng = random.Random(f"chaos-fabric/{seed}")
    racks = rng.randint(2, 3)
    spines = rng.randint(1, 2)
    devices_per_rack = rng.randint(1, 2)
    servers_per_rack = rng.randint(1, 2)
    total_devices = racks * devices_per_rack
    chain_length = rng.randint(2, min(3, total_devices))
    enable_cache = rng.random() < 0.5
    clients = rng.randint(1, 2)  # per rack
    requests_per_client = rng.randint(6, 14)
    structure = rng.choice(sorted(PMDK_STRUCTURES))
    update_ratio = rng.choice([0.5, 0.9, 1.0])
    zipf_theta = rng.choice([0.0, 0.9])
    payload_bytes = rng.choice([64, 100, 256])
    population = rng.choice([16, 256])
    spine_propagation_ns = rng.choice([None, 2_000, 10_000])

    faults: List[Fault] = []
    cursor = 60_000
    server_outages = 0
    rack_outages = 0
    replacements = 0
    for _ in range(rng.randint(1, 4)):
        kind = rng.choice([SERVER_OUTAGE, DEVICE_OUTAGE, DEVICE_REPLACE,
                           IMPAIRMENT, RACK_OUTAGE, SPINE_IMPAIRMENT])
        if kind == SERVER_OUTAGE and server_outages:
            kind = DEVICE_OUTAGE
        if kind == RACK_OUTAGE and (rack_outages or server_outages):
            kind = SPINE_IMPAIRMENT
        if kind == DEVICE_REPLACE and replacements >= chain_length - 1:
            kind = DEVICE_OUTAGE
        start = cursor + rng.randrange(20_000, 150_000)
        if kind in (IMPAIRMENT, SPINE_IMPAIRMENT):
            fault = Fault(kind, start, rng.randrange(50_000, 250_000),
                          target=rng.randrange(1024),
                          loss=round(rng.uniform(0.05, 0.3), 3),
                          duplicate=round(rng.uniform(0.0, 0.3), 3),
                          reorder=round(rng.uniform(0.0, 0.3), 3))
        elif kind == SERVER_OUTAGE:
            server_outages += 1
            fault = Fault(kind, start, rng.randrange(100_000, 400_000),
                          target=rng.randrange(racks * servers_per_rack))
        elif kind == RACK_OUTAGE:
            rack_outages += 1
            fault = Fault(kind, start, rng.randrange(150_000, 400_000),
                          target=rng.randrange(racks))
        else:
            if kind == DEVICE_REPLACE:
                replacements += 1
            fault = Fault(kind, start, rng.randrange(50_000, 250_000),
                          target=rng.randrange(total_devices))
        faults.append(fault)
        cursor = fault.end_ns
    return ChaosPlan(seed=seed, replication=chain_length,
                     enable_cache=enable_cache, clients=clients,
                     requests_per_client=requests_per_client,
                     structure=structure, update_ratio=update_ratio,
                     zipf_theta=zipf_theta, payload_bytes=payload_bytes,
                     population=population, faults=tuple(faults),
                     racks=racks, spines=spines,
                     devices_per_rack=devices_per_rack,
                     servers_per_rack=servers_per_rack,
                     spine_propagation_ns=spine_propagation_ns)


def generate_control_plan(seed: int) -> ChaosPlan:
    """Derive a fabric deployment + control-plane fault schedule.

    A third generator namespace (``chaos-control/{seed}``), so legacy
    and fabric corpora stay byte-identical.  Every plan is a fabric
    shape with a scripted control plane, drawn from one of three
    adversarial schedule shapes:

    * ``rebalance-outage`` — a live migration is requested *while* its
      source server is power-cut: the drain must ride out the outage
      (updates early-ACK at the chain tail; reads block until the
      scripted recovery) and commit afterwards without losing an
      acknowledged write.
    * ``migration-replay`` — the migration lands just after an outage
      ends, inside the ~150 ms application-recovery/log-replay window,
      racing the replayed updates (which still target the original
      server, whose store stays in the durable union).
    * ``flapping`` — ownership bounces back and forth between two
      servers several times, stacking overrides and stale store copies.

    Unlike destructive faults, REBALANCE windows may deliberately
    overlap outage windows — that interleaving is the point.
    """
    rng = random.Random(f"chaos-control/{seed}")
    racks = rng.randint(2, 3)
    spines = rng.randint(1, 2)
    devices_per_rack = rng.randint(1, 2)
    servers_per_rack = rng.randint(1, 2)
    total_devices = racks * devices_per_rack
    total_servers = racks * servers_per_rack
    chain_length = rng.randint(2, min(3, total_devices))
    enable_cache = rng.random() < 0.5
    clients = rng.randint(1, 2)  # per rack
    requests_per_client = rng.randint(6, 14)
    structure = rng.choice(sorted(PMDK_STRUCTURES))
    update_ratio = rng.choice([0.9, 1.0])
    zipf_theta = rng.choice([0.0, 0.9])
    payload_bytes = rng.choice([64, 100])
    population = rng.choice([16, 256])
    spine_propagation_ns = rng.choice([None, 2_000])
    shape = rng.choice(CONTROL_SHAPES)

    def other(server: int) -> int:
        return (server + 1 + rng.randrange(total_servers - 1)) \
            % total_servers

    faults: List[Fault] = []
    if shape == "rebalance-outage":
        victim = rng.randrange(total_servers)
        outage = Fault(SERVER_OUTAGE, 60_000 + rng.randrange(20_000, 120_000),
                       rng.randrange(150_000, 400_000), target=victim)
        rebalance_at = outage.at_ns + rng.randrange(
            10_000, max(20_000, outage.duration_ns // 2))
        faults = [outage,
                  Fault(REBALANCE, rebalance_at, 0, target=victim,
                        dest=other(victim))]
        if rng.random() < 0.5:
            start = outage.end_ns + rng.randrange(20_000, 100_000)
            faults.append(Fault(SPINE_IMPAIRMENT, start,
                                rng.randrange(50_000, 200_000),
                                target=rng.randrange(1024),
                                loss=round(rng.uniform(0.05, 0.2), 3),
                                duplicate=round(rng.uniform(0.0, 0.2), 3),
                                reorder=round(rng.uniform(0.0, 0.2), 3)))
    elif shape == "migration-replay":
        victim = rng.randrange(total_servers)
        outage = Fault(SERVER_OUTAGE, 60_000 + rng.randrange(20_000, 120_000),
                       rng.randrange(150_000, 400_000), target=victim)
        # The scripted recovery starts at end_ns and replays for
        # ~150 ms; landing the migration shortly after end_ns races it
        # against the replay traffic.
        rebalance_at = outage.end_ns + rng.randrange(5_000, 100_000)
        source = victim if rng.random() < 0.7 \
            else rng.randrange(total_servers)
        faults = [outage,
                  Fault(REBALANCE, rebalance_at, 0, target=source,
                        dest=other(source))]
    else:  # flapping
        first = rng.randrange(total_servers)
        second = other(first)
        cursor = 60_000
        for index in range(rng.randint(2, 4)):
            at = cursor + rng.randrange(20_000, 120_000)
            source, dest = ((first, second) if index % 2 == 0
                            else (second, first))
            faults.append(Fault(REBALANCE, at, 0, target=source, dest=dest))
            cursor = at
        if rng.random() < 0.5:
            start = cursor + rng.randrange(20_000, 100_000)
            faults.append(Fault(IMPAIRMENT, start,
                                rng.randrange(50_000, 200_000),
                                target=rng.randrange(1024),
                                loss=round(rng.uniform(0.05, 0.2), 3),
                                duplicate=round(rng.uniform(0.0, 0.2), 3),
                                reorder=round(rng.uniform(0.0, 0.2), 3)))
    return ChaosPlan(seed=seed, replication=chain_length,
                     enable_cache=enable_cache, clients=clients,
                     requests_per_client=requests_per_client,
                     structure=structure, update_ratio=update_ratio,
                     zipf_theta=zipf_theta, payload_bytes=payload_bytes,
                     population=population, faults=tuple(faults),
                     racks=racks, spines=spines,
                     devices_per_rack=devices_per_rack,
                     servers_per_rack=servers_per_rack,
                     spine_propagation_ns=spine_propagation_ns,
                     control=True, control_shape=shape)


@dataclass(frozen=True)
class ChaosRunResult:
    """One executed (sub)schedule and its verdict."""

    plan: ChaosPlan
    fault_indices: Tuple[int, ...]
    violations: Tuple[str, ...]
    completions: int
    acknowledged: int
    trace_events: int
    trace_digest: str
    executed_events: int
    spans: int
    instruments: int

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        """JSON-safe summary (what workers ship back and reports hold)."""
        return {
            "seed": self.plan.seed,
            "ok": self.ok,
            "violations": list(self.violations),
            "fault_indices": list(self.fault_indices),
            "faults": len(self.plan.faults),
            "completions": self.completions,
            "acknowledged": self.acknowledged,
            "trace_events": self.trace_events,
            "trace_digest": self.trace_digest,
            "executed_events": self.executed_events,
            "spans": self.spans,
            "instruments": self.instruments,
            "plan": self.plan.describe(),
        }


def _horizon_ns(plan: ChaosPlan) -> int:
    """A generous stop time: quiescent runs end long before it; only a
    genuinely stuck run (a liveness bug) reaches it.

    The dominant term is server recovery: restarting the application
    store costs ~150 ms simulated (``app_recovery_ns``), so the slack
    must dwarf that or mid-recovery runs would be cut short and read
    as liveness/R2 violations.
    """
    fault_end = max((fault.end_ns for fault in plan.faults), default=0)
    workload = plan.clients * plan.requests_per_client * 2_000_000
    return fault_end + workload + 1_000_000_000


def _set_impairments(channel, impairments: Impairments) -> None:
    channel.impairments = impairments
    # A fault window opening mid-run invalidates folded in-flight work
    # whose impairment draws would only happen from here on — convert it
    # back to the unfolded path so the draws land draw-for-draw where
    # the PMNET_NO_FOLD timeline puts them.
    channel.on_impairments_changed()


def _schedule_fault(sim, injector: FailureInjector, deployment,
                    channels, fault: Fault) -> None:
    if fault.kind == SERVER_OUTAGE:
        servers = deployment.servers
        server = servers[fault.target % len(servers)]
        record = injector.crash_server_at(server, fault.at_ns)
        injector.recover_server_at(
            server, fault.end_ns,
            deployment.recovery_devices(server.host.name), record)
    elif fault.kind == RACK_OUTAGE:
        fabric = deployment.fabric
        if fabric is None:
            raise SimulationError("rack-outage needs a fabric deployment")
        rack = fabric.racks[fault.target % len(fabric.racks)]
        devices_by_name = {device.name: device
                           for device in deployment.devices}
        for name in rack.devices:
            record = injector.crash_device_at(devices_by_name[name],
                                              fault.at_ns)
            injector.recover_device_at(devices_by_name[name], fault.end_ns,
                                       record)
        servers_by_name = {server.host.name: server
                           for server in deployment.servers}
        for name in rack.servers:
            server = servers_by_name[name]
            record = injector.crash_server_at(server, fault.at_ns)
            # The rack's devices come back at end_ns; stagger the shard
            # recoveries past that so they never poll a dead tail.
            injector.recover_server_at(
                server, fault.end_ns + 20_000,
                deployment.recovery_devices(name), record)
    elif fault.kind == SPINE_IMPAIRMENT:
        fabric = deployment.fabric
        if fabric is None:
            raise SimulationError("spine-impairment needs a fabric "
                                  "deployment")
        uplinks = fabric.spine_links
        _rack, _spine, link = uplinks[fault.target % len(uplinks)]
        impaired = Impairments(loss_probability=fault.loss,
                               duplicate_probability=fault.duplicate,
                               reorder_probability=fault.reorder)
        for channel in (link.forward, link.backward):
            sim.schedule_at(fault.at_ns, _set_impairments, channel,
                            impaired)
            sim.schedule_at(fault.end_ns, _set_impairments, channel,
                            Impairments())
    elif fault.kind == DEVICE_OUTAGE:
        device = deployment.devices[fault.target % len(deployment.devices)]
        record = injector.crash_device_at(device, fault.at_ns)
        injector.recover_device_at(device, fault.end_ns, record)
    elif fault.kind == DEVICE_REPLACE:
        device = deployment.devices[fault.target % len(deployment.devices)]
        record = injector.kill_device_permanently_at(device, fault.at_ns)
        injector.replace_device_at(device, fault.end_ns, record)
    elif fault.kind == IMPAIRMENT:
        channel = channels[fault.target % len(channels)]
        impaired = Impairments(loss_probability=fault.loss,
                               duplicate_probability=fault.duplicate,
                               reorder_probability=fault.reorder)
        sim.schedule_at(fault.at_ns, _set_impairments, channel, impaired)
        sim.schedule_at(fault.end_ns, _set_impairments, channel,
                        Impairments())
    elif fault.kind == REBALANCE:
        control = deployment.control
        if control is None:
            raise SimulationError("rebalance needs a deployment with a "
                                  "control plane (control plan)")
        servers = deployment.servers
        source = servers[fault.target % len(servers)].host.name
        dest = servers[fault.dest % len(servers)].host.name
        if dest == source:
            dest = servers[(fault.dest + 1) % len(servers)].host.name
        sim.schedule_at(fault.at_ns, control.migrator.migrate, source, dest)
    else:
        raise SimulationError(f"unknown fault kind {fault.kind!r}")


def _durability_oracle(acked: Dict[object, List[object]],
                       attempted: Set[object],
                       server_state: Dict[object, object]) -> List[str]:
    """Every acknowledged update survives; nothing appears from nowhere.

    With a contended keyspace the final value of a key may be any of
    its acknowledged writes (last server-commit wins among racing
    clients), so the per-key check is membership, not equality.
    """
    problems = []
    for key, values in acked.items():
        if key not in server_state:
            problems.append(
                f"[ORACLE] acknowledged key {key!r} missing from the "
                f"recovered store")
        elif server_state[key] not in values:
            problems.append(
                f"[ORACLE] key {key!r} holds {server_state[key]!r}, "
                f"which no client was acknowledged for")
    for key in server_state:
        if key not in attempted:
            problems.append(
                f"[ORACLE] spurious key {key!r} in the store (no client "
                f"ever wrote it)")
    return problems


def run_plan(plan: ChaosPlan,
             fault_indices: Optional[Sequence[int]] = None
             ) -> ChaosRunResult:
    """Execute one plan (optionally only a subset of its faults).

    ``fault_indices`` selects positions in ``plan.faults`` — the
    shrinker's handle.  ``None`` means the full schedule.  The
    deployment, workload, and all simulation randomness derive from
    ``plan.seed`` alone, so repeated calls are bit-identical.
    """
    if fault_indices is None:
        indices: Tuple[int, ...] = tuple(range(len(plan.faults)))
    else:
        indices = tuple(fault_indices)
    faults = [plan.faults[i] for i in indices]

    # Request/frame ids are process-global counters; restart them so the
    # trace (and any violation text) is a function of the seed alone —
    # identical no matter how many runs preceded this one or which
    # worker process executes it.
    reset_request_ids()
    reset_frame_ids()

    obs = Observability(spans=True, trace=True)
    config = SystemConfig(seed=plan.seed).with_clients(plan.clients)
    spec = plan.deployment_spec()
    handlers: List[StructureHandler] = []

    def handler_factory() -> StructureHandler:
        handler = StructureHandler(PMDK_STRUCTURES[plan.structure]())
        handlers.append(handler)
        return handler

    if spec.racks > 1 or spec.servers_per_rack > 1:
        deployment = build(spec, config, handler_factory=handler_factory,
                           obs=obs)
    else:
        deployment = build(spec, config, handler=handler_factory(),
                           obs=obs)
    sim = deployment.sim
    injector = FailureInjector(sim)
    generator = YCSBGenerator(YCSBConfig(update_ratio=plan.update_ratio,
                                         population=plan.population,
                                         zipf_theta=plan.zipf_theta,
                                         payload_bytes=plan.payload_bytes))
    acked: Dict[object, List[object]] = {}
    attempted: Set[object] = set()
    stats = {"completions": 0, "acknowledged": 0}

    def client_proc(index: int, client):
        rng = sim.random.stream(f"chaos:client{index}")
        for request_index in range(plan.requests_per_client):
            op, payload = generator.make_op(index, request_index, rng)
            if op.is_update:
                attempted.add(op.key)
                completion = yield client.send_update(op, payload)
                if completion.result.ok:
                    acked.setdefault(op.key, []).append(op.value)
                    stats["acknowledged"] += 1
            else:
                yield client.bypass(op, payload)
            stats["completions"] += 1
            yield config.client.think_time_ns

    deployment.open_all_sessions()
    processes = [sim.spawn(client_proc(i, c), f"chaos-client{i}")
                 for i, c in enumerate(deployment.clients)]
    channels = [channel for link in deployment.topology.links
                for channel in (link.forward, link.backward)]
    for fault in faults:
        _schedule_fault(sim, injector, deployment, channels, fault)

    horizon = _horizon_ns(plan)
    sim.run(until=horizon)

    stalled = [i for i, process in enumerate(processes) if process.alive]
    violations: List[str] = [
        f"[LIVENESS] client {i} still blocked at the {horizon}ns horizon"
        for i in stalled]
    checker = PersistenceChecker(obs.tracer, expect_quiesced=not stalled)
    violations.extend(str(violation) for violation in checker.check())
    # Shards own disjoint key ranges, so the recovered state is the
    # union of every shard store.
    server_state = {}
    for handler in handlers:
        server_state.update(handler.structure.items())
    violations.extend(_durability_oracle(acked, attempted, server_state))

    digest = hashlib.sha256(
        obs.tracer.dump().encode("utf-8")).hexdigest()[:16]
    return ChaosRunResult(plan=plan, fault_indices=indices,
                          violations=tuple(violations),
                          completions=stats["completions"],
                          acknowledged=stats["acknowledged"],
                          trace_events=len(obs.tracer.records),
                          trace_digest=digest,
                          executed_events=sim.executed_events,
                          spans=len(obs.spans),
                          instruments=len(obs.registry))


# ----------------------------------------------------------------------
# Shrinking: bisect a failing schedule to a 1-minimal subset
# ----------------------------------------------------------------------
def shrink(plan: ChaosPlan,
           failing: Optional[ChaosRunResult] = None) -> ChaosRunResult:
    """Reduce a failing plan to a minimal failing fault subset.

    Strategy: first check the empty schedule (a bug that needs no
    faults shrinks to nothing), then bisect (try each half), then
    greedy one-at-a-time removal until 1-minimal — every remaining
    fault is necessary for the failure.  Each candidate re-runs the
    same seed, so the reduction is exact, not heuristic.
    """
    if failing is None:
        failing = run_plan(plan)
    if failing.ok:
        raise ValueError(f"seed {plan.seed} passes; nothing to shrink")
    empty = run_plan(plan, ())
    if not empty.ok:
        return empty
    current = list(failing.fault_indices)
    best = failing
    while len(current) > 1:
        half = len(current) // 2
        first = run_plan(plan, tuple(current[:half]))
        if not first.ok:
            current, best = current[:half], first
            continue
        second = run_plan(plan, tuple(current[half:]))
        if not second.ok:
            current, best = current[half:], second
            continue
        break
    changed = True
    while changed and len(current) > 1:
        changed = False
        for index in range(len(current)):
            candidate = current[:index] + current[index + 1:]
            attempt = run_plan(plan, tuple(candidate))
            if not attempt.ok:
                current, best = candidate, attempt
                changed = True
                break
    return best


def repro_line(result: ChaosRunResult) -> str:
    """The CLI invocation that replays exactly this (sub)schedule."""
    if len(result.fault_indices) == len(result.plan.faults):
        selector = "all"
    elif not result.fault_indices:
        selector = "none"
    else:
        selector = ",".join(str(i) for i in result.fault_indices)
    if result.plan.control:
        flavor = " --control"
    elif result.plan.is_fabric:
        flavor = " --fabric"
    else:
        flavor = ""
    return (f"pmnet-repro chaos --seed {result.plan.seed}{flavor} "
            f"--faults {selector}")


def parse_fault_selector(selector: Optional[str],
                         num_faults: int) -> Optional[Tuple[int, ...]]:
    """Parse a ``--faults`` value: ``all``/``None`` (full schedule),
    ``none`` (empty), or a comma-separated index list."""
    if selector is None or selector == "all":
        return None
    if selector == "none":
        return ()
    try:
        indices = tuple(int(part) for part in selector.split(","))
    except ValueError:
        raise ValueError(f"bad --faults value {selector!r}: expected "
                         f"'all', 'none', or comma-separated indices")
    for index in indices:
        if not 0 <= index < num_faults:
            raise ValueError(f"fault index {index} out of range "
                             f"(plan has {num_faults} fault(s))")
    return indices


# ----------------------------------------------------------------------
# Corpus: failing seeds become permanent regression tests
# ----------------------------------------------------------------------
def load_corpus(path: str) -> List[int]:
    """Seeds from a corpus file (one per line; ``#`` starts a comment)."""
    seeds: List[int] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError:
        return seeds
    for line in lines:
        text = line.split("#", 1)[0].strip()
        if text:
            seeds.append(int(text.split()[0]))
    return seeds


def append_to_corpus(path: str, seed: int, note: str = "") -> bool:
    """Record a failing seed (idempotent); returns True if appended."""
    if seed in load_corpus(path):
        return False
    with open(path, "a", encoding="utf-8") as handle:
        suffix = f"  # {note}" if note else ""
        handle.write(f"{seed}{suffix}\n")
    return True


# ----------------------------------------------------------------------
# Job protocol (registry entry "chaos"): sweep seeds like sweep points
# ----------------------------------------------------------------------
def jobs(config: Optional[SystemConfig] = None, quick: bool = True,
         start_seed: int = 0, runs: Optional[int] = None,
         fabric: bool = False, control: bool = False) -> List[JobSpec]:
    count = runs if runs is not None else (
        QUICK_SWEEP_SEEDS if quick else FULL_SWEEP_SEEDS)
    if control:
        prefix, params = "control-seed", {"control": True}
    elif fabric:
        prefix, params = "fabric-seed", {"fabric": True}
    else:
        prefix, params = "seed", {}
    return [JobSpec(experiment="chaos", point=f"{prefix}={seed}",
                    params={"seed": seed, **params}, seed=seed, quick=quick,
                    config=config)
            for seed in range(start_seed, start_seed + count)]


def run_point(spec: JobSpec) -> dict:
    """Execute one seed in any process; returns the JSON-safe summary."""
    seed = int(spec.params["seed"])
    if spec.params.get("control"):
        plan = generate_control_plan(seed)
    elif spec.params.get("fabric"):
        plan = generate_fabric_plan(seed)
    else:
        plan = generate_plan(seed)
    return run_plan(plan).to_dict()


def assemble(results: Sequence[JobResult]) -> str:
    rows = []
    failing = 0
    for result in sorted(results, key=lambda r: r.spec.seed):
        value = result.value
        verdict = "ok" if value["ok"] else "FAIL"
        if not value["ok"]:
            failing += 1
        rows.append([value["seed"], verdict, len(value["violations"]),
                     value["faults"], value["completions"],
                     value["trace_digest"]])
    title = (f"Chaos sweep — {len(rows)} seed(s), {failing} failing "
             f"(R1-R6 + durability oracle)")
    return format_table(
        ["seed", "verdict", "violations", "faults", "completions",
         "trace digest"], rows, title=title)


def run(quick: bool = True) -> str:
    return assemble(execute_serial(jobs(quick=quick), run_point))
