"""Failure injection and the paper's Fig 12/13 recovery scenarios."""

from repro.failure.autorecover import RecoveryManager, attach_recovery_manager
from repro.failure.injector import FailureInjector, FailureRecord
from repro.failure.scenarios import (
    ScenarioOutcome,
    client_failure_mid_run,
    device_failure_before_ack,
    device_failure_before_receive,
    intermittent_server_failure,
    permanent_device_failure_with_replication,
)

__all__ = [
    "FailureInjector", "FailureRecord",
    "RecoveryManager", "attach_recovery_manager",
    "ScenarioOutcome",
    "intermittent_server_failure",
    "device_failure_before_ack",
    "device_failure_before_receive",
    "client_failure_mid_run",
    "permanent_device_failure_with_replication",
]
