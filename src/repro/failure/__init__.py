"""Failure injection, the Fig 12/13 recovery scenarios, chaos sweeps."""

from repro.failure.autorecover import RecoveryManager, attach_recovery_manager
from repro.failure.chaos import (
    ChaosPlan,
    ChaosRunResult,
    Fault,
    append_to_corpus,
    generate_plan,
    load_corpus,
    repro_line,
    run_plan,
    shrink,
)
from repro.failure.injector import FailureInjector, FailureRecord
from repro.failure.scenarios import (
    ScenarioOutcome,
    client_failure_mid_run,
    device_failure_before_ack,
    device_failure_before_receive,
    intermittent_server_failure,
    permanent_device_failure_with_replication,
)

__all__ = [
    "FailureInjector", "FailureRecord",
    "RecoveryManager", "attach_recovery_manager",
    "ScenarioOutcome",
    "intermittent_server_failure",
    "device_failure_before_ack",
    "device_failure_before_receive",
    "client_failure_mid_run",
    "permanent_device_failure_with_replication",
    "ChaosPlan", "ChaosRunResult", "Fault",
    "generate_plan", "run_plan", "shrink", "repro_line",
    "load_corpus", "append_to_corpus",
]
