"""Runnable failure scenarios (Fig 12 intermittent, Fig 13 permanent).

Each scenario builds a deployment, drives clients, injects the failure
at the point the paper's figure describes, and returns a
:class:`ScenarioOutcome` with the facts the paper's argument depends on
(no acknowledged update lost, exactly-once application, recovery
duration).  Tests and the failure-recovery example both call these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.config import SystemConfig
from repro.experiments.deploy import DeploymentSpec, build
from repro.failure.injector import FailureInjector
from repro.sim.clock import microseconds, milliseconds
from repro.workloads.handlers import StructureHandler
from repro.workloads.kv import OpKind, Operation
from repro.workloads.pmdk.hashmap import PMHashmap


@dataclass
class ScenarioOutcome:
    """What a failure scenario observed."""

    name: str
    acknowledged_updates: Dict[object, object] = field(default_factory=dict)
    server_state: Dict[object, object] = field(default_factory=dict)
    recovery_duration_ns: Optional[int] = None
    resent: int = 0
    retransmissions: int = 0
    client_completions: int = 0

    @property
    def durable(self) -> bool:
        """Every acknowledged update is present in the recovered store."""
        return all(self.server_state.get(key) == value
                   for key, value in self.acknowledged_updates.items())


def _small_config(config: Optional[SystemConfig], clients: int) -> SystemConfig:
    base = config if config is not None else SystemConfig()
    return base.with_clients(clients)


def intermittent_server_failure(config: Optional[SystemConfig] = None,
                                clients: int = 4,
                                requests_per_client: int = 40,
                                crash_after: int = milliseconds(1),
                                outage: int = milliseconds(5)
                                ) -> ScenarioOutcome:
    """The Sec VI-B6 scenario: server power-cut with a loaded PMNet log.

    Clients write continuously; the server dies mid-run and recovers
    after ``outage``.  PMNet resends its durable log; the outcome checks
    that every client-acknowledged update is in the recovered store.
    """
    cfg = _small_config(config, clients)
    handler = StructureHandler(PMHashmap())
    deployment = build(DeploymentSpec(placement="switch"), cfg,
                       handler=handler)
    sim = deployment.sim
    injector = FailureInjector(sim)
    outcome = ScenarioOutcome("intermittent-server-failure")

    def client_proc(index: int, client) -> object:
        for request_index in range(requests_per_client):
            key = (index, request_index)
            value = f"v{index}.{request_index}"
            op = Operation(OpKind.SET, key=key, value=value)
            completion = yield client.send_update(op)
            if completion.result.ok:
                outcome.acknowledged_updates[key] = value
                outcome.client_completions += 1
            yield cfg.client.think_time_ns

    deployment.open_all_sessions()
    processes = [sim.spawn(client_proc(i, c), f"client{i}")
                 for i, c in enumerate(deployment.clients)]
    record = injector.crash_server_at(deployment.server, crash_after)
    recovery = injector.recover_server_at(
        deployment.server, crash_after + outage, deployment.pmnet_names,
        record)
    sim.run()
    assert all(not p.alive for p in processes), "clients never finished"
    assert recovery.triggered, "recovery never completed"
    outcome.recovery_duration_ns = recovery.value
    outcome.resent = sum(int(d.resend_engine.resends)
                         for d in deployment.devices)
    outcome.retransmissions = sum(int(c.retransmissions)
                                  for c in deployment.clients)
    outcome.server_state = dict(handler.structure.items())
    return outcome


def device_failure_before_ack(config: Optional[SystemConfig] = None
                              ) -> ScenarioOutcome:
    """Fig 12 case 2b: PMNet dies after accepting a request but before
    the PMNet-ACK reaches the client.

    The client must stall, time out, retransmit, and eventually complete
    through the recovered path; durability is never claimed falsely.
    """
    cfg = _small_config(config, 1)
    handler = StructureHandler(PMHashmap())
    deployment = build(DeploymentSpec(placement="switch"), cfg,
                       handler=handler)
    sim = deployment.sim
    injector = FailureInjector(sim)
    outcome = ScenarioOutcome("device-failure-before-ack")
    device = deployment.devices[0]
    client = deployment.clients[0]

    # Kill the device the instant the update's log write is in flight:
    # just after the request would reach it (client stack + wire).
    crash_at = cfg.client_stack.send_ns + microseconds(1.2)
    record = injector.crash_device_at(device, crash_at)
    injector.recover_device_at(device, crash_at + microseconds(400), record)

    def client_proc() -> object:
        op = Operation(OpKind.SET, key="k", value="v")
        completion = yield client.send_update(op)
        if completion.result.ok:
            outcome.acknowledged_updates["k"] = "v"
            outcome.client_completions += 1

    deployment.open_all_sessions()
    process = sim.spawn(client_proc(), "client")
    sim.run()
    assert not process.alive, "client never finished"
    outcome.retransmissions = int(client.retransmissions)
    outcome.server_state = dict(handler.structure.items())
    return outcome


def device_failure_before_receive(config: Optional[SystemConfig] = None
                                  ) -> ScenarioOutcome:
    """Fig 12 case 1: PMNet dies *before* the request reaches it.

    Nothing was accepted anywhere, so no acknowledgement exists; the
    client simply stalls, times out, and resends once the device is
    back.  Durability is never claimed falsely.
    """
    cfg = _small_config(config, 1)
    handler = StructureHandler(PMHashmap())
    deployment = build(DeploymentSpec(placement="switch"), cfg,
                       handler=handler)
    sim = deployment.sim
    injector = FailureInjector(sim)
    outcome = ScenarioOutcome("device-failure-before-receive")
    device = deployment.devices[0]
    client = deployment.clients[0]

    # Fail the device before the client's packet can arrive (the client
    # stack alone takes ~10 us).
    injector.crash_device_at(device, microseconds(1))
    injector.recover_device_at(device, microseconds(500))

    def client_proc():
        completion = yield client.send_update(
            Operation(OpKind.SET, key="k", value="v"))
        if completion.result.ok:
            outcome.acknowledged_updates["k"] = "v"
            outcome.client_completions += 1

    deployment.open_all_sessions()
    process = sim.spawn(client_proc(), "client")
    sim.run()
    assert not process.alive, "client never finished"
    outcome.retransmissions = int(client.retransmissions)
    outcome.server_state = dict(handler.structure.items())
    return outcome


def client_failure_mid_run(config: Optional[SystemConfig] = None,
                           requests_per_client: int = 30) -> ScenarioOutcome:
    """Sec IV-E3: a component outside the persistence domain fails.

    One client dies mid-run.  The system owes it nothing — but every
    update it *was* acknowledged for must still be durable, and the
    surviving clients and the server must be completely unaffected.
    """
    cfg = _small_config(config, 3)
    handler = StructureHandler(PMHashmap())
    deployment = build(DeploymentSpec(placement="switch"), cfg,
                       handler=handler)
    sim = deployment.sim
    outcome = ScenarioOutcome("client-failure")
    doomed = deployment.clients[0]

    def client_proc(index: int, client) -> object:
        for request_index in range(requests_per_client):
            key = (index, request_index)
            value = f"v{index}.{request_index}"
            completion = yield client.send_update(
                Operation(OpKind.SET, key=key, value=value))
            if completion.result.ok:
                outcome.acknowledged_updates[key] = value
                outcome.client_completions += 1
            yield cfg.client.think_time_ns

    deployment.open_all_sessions()
    processes = [sim.spawn(client_proc(i, c), f"client{i}")
                 for i, c in enumerate(deployment.clients)]
    # Kill client 0's machine a few requests in; its driver process is
    # interrupted like a real process dying.
    kill_at = microseconds(180)
    sim.schedule_at(kill_at, doomed.host.fail)
    sim.schedule_at(kill_at, processes[0].interrupt, "client died")
    sim.run()
    assert all(not p.alive for p in processes[1:]), \
        "surviving clients never finished"
    outcome.server_state = dict(handler.structure.items())
    return outcome


def permanent_device_failure_with_replication(
        config: Optional[SystemConfig] = None,
        requests_per_client: int = 20) -> ScenarioOutcome:
    """Fig 13: one of two chained PMNet devices dies permanently.

    Timeline: (1) the server power-cuts early, so the devices' logs fill
    with durable, un-committed updates while clients keep completing via
    the two PMNet-ACKs; (2) device #2 dies permanently and is replaced
    by a *blank* unit — its copy of the log is gone for good; (3) the
    server restarts and recovers from the surviving device #1 alone,
    which must be sufficient (Sec IV-E2: any surviving PMNet can
    retransmit).
    """
    cfg = _small_config(config, 2)
    handler = StructureHandler(PMHashmap())
    deployment = build(DeploymentSpec(placement="switch", chain_length=2),
                       cfg, handler=handler)
    sim = deployment.sim
    injector = FailureInjector(sim)
    outcome = ScenarioOutcome("permanent-device-failure")
    doomed = deployment.devices[1]
    survivor = deployment.devices[0]

    def client_proc(index: int, client) -> object:
        for request_index in range(requests_per_client):
            key = (index, request_index)
            value = f"v{index}.{request_index}"
            completion = yield client.send_update(
                Operation(OpKind.SET, key=key, value=value))
            if completion.result.ok:
                outcome.acknowledged_updates[key] = value
                outcome.client_completions += 1
            yield cfg.client.think_time_ns

    deployment.open_all_sessions()
    processes = [sim.spawn(client_proc(i, c), f"client{i}")
                 for i, c in enumerate(deployment.clients)]
    # Clients need ~requests * RTT to finish; place the failures after.
    send_window = microseconds(30) * requests_per_client + microseconds(200)
    injector.crash_server_at(deployment.server, microseconds(150))
    death = injector.kill_device_permanently_at(doomed, send_window)
    injector.replace_device_at(doomed, send_window + microseconds(100),
                               death)
    recovery = injector.recover_server_at(
        deployment.server, send_window + microseconds(200), [survivor.name])
    sim.run()
    assert all(not p.alive for p in processes), "clients never finished"
    assert recovery.triggered, "recovery never completed"
    outcome.recovery_duration_ns = recovery.value
    outcome.resent = int(survivor.resend_engine.resends)
    outcome.retransmissions = sum(int(c.retransmissions)
                                  for c in deployment.clients)
    outcome.server_state = dict(handler.structure.items())
    return outcome
