"""Failure injection: power cuts, permanent deaths, scheduled recovery.

The injector manipulates only what the paper's persistence domains say
survives: a power-cut device keeps its durable PM log but loses queued
SRAM and in-flight DMA; a crashed server keeps its PM store and applied
table but loses every request in its stacks, queues, and workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.core.pmnet_device import PMNetDevice
from repro.host.server import PMNetServer
from repro.sim.event import SimEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


@dataclass
class FailureRecord:
    """What the injector did, for assertions and reports."""

    target: str
    kind: str
    failed_at_ns: int
    recovered_at_ns: Optional[int] = None
    volatile_lost: int = 0


class FailureInjector:
    """Schedules and tracks failures in one deployment."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.records: List[FailureRecord] = []

    # ------------------------------------------------------------------
    # Server failures (Sec VI-B6)
    # ------------------------------------------------------------------
    def crash_server_at(self, server: PMNetServer, at_ns: int) -> FailureRecord:
        """Power-cut the server at an absolute simulated time."""
        record = FailureRecord(server.host.name, "server-power-cut", at_ns)
        self.records.append(record)

        def cut() -> None:
            record.volatile_lost = len(server._ready)
            server.crash()

        self.sim.schedule_at(at_ns, cut)
        return record

    def recover_server_at(self, server: PMNetServer, at_ns: int,
                          pmnet_devices: List[str],
                          record: Optional[FailureRecord] = None) -> SimEvent:
        """Restart the server at ``at_ns``; returns the recovery event.

        The returned event is a proxy that succeeds with the recovery
        duration once the server's own recovery (poll + resend drain)
        completes.
        """
        proxy = self.sim.event("server-recovery")

        def restore() -> None:
            if record is not None:
                record.recovered_at_ns = at_ns
            inner = server.recover(pmnet_devices)
            inner.add_callback(
                lambda event: proxy.succeed(event.value)
                if not proxy.triggered else None)

        self.sim.schedule_at(at_ns, restore)
        return proxy

    # ------------------------------------------------------------------
    # Device failures (Fig 12 / Fig 13)
    # ------------------------------------------------------------------
    def crash_device_at(self, device: PMNetDevice,
                        at_ns: int) -> FailureRecord:
        """Power-cut a PMNet device (durable log survives)."""
        record = FailureRecord(device.name, "device-power-cut", at_ns)
        self.records.append(record)

        def cut() -> None:
            before = device.log.occupancy
            device.fail()
            record.volatile_lost = before - device.log.occupancy

        self.sim.schedule_at(at_ns, cut)
        return record

    def recover_device_at(self, device: PMNetDevice, at_ns: int,
                          record: Optional[FailureRecord] = None) -> None:
        def restore() -> None:
            if record is not None:
                record.recovered_at_ns = at_ns
            device.recover()

        self.sim.schedule_at(at_ns, restore)

    def kill_device_permanently_at(self, device: PMNetDevice,
                                   at_ns: int) -> FailureRecord:
        """A permanent hardware death: the device never comes back."""
        record = FailureRecord(device.name, "device-permanent", at_ns)
        self.records.append(record)
        self.sim.schedule_at(at_ns, device.fail)
        return record

    def replace_device_at(self, device: PMNetDevice, at_ns: int,
                          record: Optional[FailureRecord] = None) -> None:
        """Swap a permanently dead device for a blank replacement unit.

        The forwarding path comes back but the old board's log is gone —
        exactly why the paper replicates across multiple PMNets
        (Sec IV-E2: "any surviving PMNet can retransmit").
        """
        def swap() -> None:
            device.log.wipe()
            if device.cache is not None:
                # Wipe in place rather than constructing a fresh
                # ReadCache: the metrics registry holds the counters the
                # device registered at construction, and a replacement
                # object would either strand those (every post-swap hit
                # invisible) or raise DuplicateInstrumentError on
                # re-registration.  Contents are blank-board blank;
                # counters stay cumulative, like the log's own wipe().
                device.cache.wipe()
            device.recover()
            # recover() already drops cached arrival plans, but the
            # replacement contract is explicit: a new board answers
            # extension queries from scratch.
            device.invalidate_arrival_plans()
            if record is not None:
                record.recovered_at_ns = at_ns

        self.sim.schedule_at(at_ns, swap)
