"""A consistent-hash ring mapping keys to shard owners.

The fabric shards the keyspace across many PMNet devices/servers (the
disaggregated-PM direction: many in-network persistence points instead
of one).  Placement must be a *pure function of the key and the member
list* — every client, the chaos oracle, and the experiment assembler
recompute it independently and must agree — so the ring hashes with the
repo's table-driven CRC-32 (same as ``PMNetHeader``), never Python's
process-seeded ``hash``.

Each member is projected onto the ring at ``replicas`` virtual points
(``crc32(f"{member}#{i}")``); a key maps to the first member clockwise
from ``crc32(repr(key))``.  Virtual points smooth the load split and
keep remapping incremental when the member list changes.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, List, Sequence, Tuple

from repro.protocol.crc import crc32


class HashRing:
    """Deterministic consistent hashing over a fixed member list."""

    def __init__(self, members: Sequence[str], replicas: int = 32) -> None:
        if not members:
            raise ValueError("hash ring needs at least one member")
        if len(set(members)) != len(members):
            raise ValueError(f"duplicate ring members: {list(members)}")
        if replicas <= 0:
            raise ValueError("replicas must be positive")
        self.members: Tuple[str, ...] = tuple(members)
        self.replicas = replicas
        points = []
        for member in self.members:
            for index in range(replicas):
                point = crc32(f"{member}#{index}".encode())
                points.append((point, member))
        # Ties between virtual points are broken by member name so the
        # ring is identical regardless of construction order.
        points.sort()
        self._points = points
        self._keys = [point for point, _ in points]

    # ------------------------------------------------------------------
    def key_point(self, key: Any) -> int:
        """Where a key lands on the ring (CRC-32 of its repr)."""
        return crc32(repr(key).encode())

    def lookup(self, key: Any) -> str:
        """The member owning ``key``: first virtual point clockwise."""
        index = bisect_right(self._keys, self.key_point(key))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def successors(self, key: Any, count: int) -> List[str]:
        """The first ``count`` *distinct* members clockwise from the key.

        ``successors(key, 1)[0] == lookup(key)``; the rest are the
        natural replica placement for the key.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        if count > len(self.members):
            raise ValueError(
                f"asked for {count} members, ring has {len(self.members)}")
        start = bisect_right(self._keys, self.key_point(key))
        found: List[str] = []
        for offset in range(len(self._points)):
            member = self._points[(start + offset) % len(self._points)][1]
            if member not in found:
                found.append(member)
                if len(found) == count:
                    break
        return found

    def spread(self, keys: Sequence[Any]) -> dict:
        """How many of ``keys`` each member owns (diagnostics/tests)."""
        counts = {member: 0 for member in self.members}
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts

    def __len__(self) -> int:
        return len(self.members)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<HashRing {len(self.members)} members × "
                f"{self.replicas} points>")
