"""The PMNet device: a programmable switch/NIC with a persistent log.

This is the paper's primary contribution (Sec IV).  The device executes
the three-stage MAT pipeline of Fig 8:

* **ingress** — classify by UDP port and PMNet Type;
* **PM access** — create/remove/look up log entries through the
  BDP-sized log queues, never blocking the pipeline;
* **egress** — forward requests toward the server, generate PMNet-ACKs
  once a request is durable, serve Retrans from the log, and (optionally)
  serve reads from the integrated cache.

``mode`` is cosmetic ("switch" at the ToR position, "nic" as the server's
bump-in-the-wire): both run the identical pipeline, as in the paper where
the two differ only by placement (Sec VI-B1 finds their latency within
1 us of each other).
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Dict, Optional

from repro.config import folding_enabled, whole_request_folding_enabled
from repro.core.cache import ReadCache
from repro.core.mat import MATAction, classify, pmnet_packet
from repro.core.recovery import ResendEngine
from repro.net.device import ForwardingTable, Node, Port
from repro.net.packet import Frame
from repro.pm.device import PMDevice
from repro.pm.log import LogEntry, LogRegion
from repro.pm.queues import LogQueue
from repro.protocol.packet import (
    PMNetPacket,
    RecoveryPoll,
    RetransRequest,
)
from repro.obs import spans
from repro.obs.registry import register_with_sim
from repro.protocol.types import PacketType
from repro.sim.monitor import Counter
from repro.sim.trace import Tracer
from repro.workloads.kv import Operation, Result

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import SystemConfig
    from repro.sim.kernel import Simulator


class PMNetDevice(Node):
    """A PM-backed programmable data-plane device."""

    def __init__(self, sim: "Simulator", name: str, config: "SystemConfig",
                 mode: str = "switch", enable_cache: bool = False,
                 cache_capacity: int = 4096,
                 tracer: Optional[Tracer] = None) -> None:
        if mode not in ("switch", "nic"):
            raise ValueError(f"mode must be 'switch' or 'nic', got {mode!r}")
        super().__init__(sim, name)
        self.config = config
        self.mode = mode
        self.table = ForwardingTable()
        self.tracer = tracer if tracer is not None else sim.tracer
        self._spans = spans.spans_for(sim)
        self.pm = PMDevice(sim, f"{name}.pm", config.network_pm)
        self.write_queue = LogQueue(sim, f"{name}.wq",
                                    config.log.write_queue_bytes,
                                    self.pm, is_write=True)
        self.read_queue = LogQueue(sim, f"{name}.rq",
                                   config.log.read_queue_bytes,
                                   self.pm, is_write=False)
        self.log = LogRegion(sim, f"{name}.log", config.log, self.pm,
                             self.write_queue, self.read_queue)
        self.cache = ReadCache(cache_capacity, f"{name}.cache") if enable_cache else None
        self.resend_engine = ResendEngine(self)
        #: HashVal -> key for cacheable reads forwarded to the server,
        #: so the returning response can be captured into the cache.
        self._outstanding_reads: Dict[int, object] = {}
        self.acks_sent = Counter(f"{name}.pmnet_acks")
        self.cache_responses = Counter(f"{name}.cache_responses")
        self.retrans_served = Counter(f"{name}.retrans_served")
        self.forwarded_plain = Counter(f"{name}.forwarded_plain")
        self.redo_resends = Counter(f"{name}.redo_resends")
        self.folded_stages = Counter(f"{name}.folded_stages")
        self._fold = folding_enabled()
        self._whole = whole_request_folding_enabled()
        self._scrub_armed = False
        register_with_sim(sim, self)

    def instruments(self) -> tuple:
        """This device's typed instruments (explicit registration).

        The embedded :class:`ReadCache` has no registration hook of its
        own (it is not a :class:`~repro.net.device.Node`), so its
        hits/misses/evictions/overflow ride along here — otherwise
        cache statistics silently vanish from every metrics export.
        """
        own = (self.acks_sent, self.cache_responses, self.retrans_served,
               self.forwarded_plain, self.redo_resends, self.folded_stages)
        if self.cache is not None:
            return own + self.cache.instruments()
        return own

    # ------------------------------------------------------------------
    # Frame entry point
    # ------------------------------------------------------------------
    def handle_frame(self, frame: Frame, in_port: Port) -> None:
        if self._fold:
            # Latency-folded MAT walk: classification is pure (it only
            # reads the frame), so it can run at arrival time and the
            # deterministic stage delays of side-effect-free hops sum
            # into one scheduled event.  Only actions whose intermediate
            # ingress callback mutates nothing fold — every counter,
            # cache, and log mutation still fires at the exact virtual
            # time the per-stage path produced.  Crash safety: the
            # folded chains end in callbacks that re-check `failed`
            # (and `fail()` revokes unstarted channel reservations), so
            # a mid-window crash drops the frame on both timelines; the
            # only unguarded divergence is a crash *and* recovery
            # landing inside one pipeline window (nanoseconds) — the
            # failure scenarios separate them by hundreds of
            # microseconds (Fig 12/13).
            action = classify(frame)
            if action is MATAction.LOG_AND_FORWARD:
                # ingress -> PM-access: `_log_update` performs all side
                # effects itself; the intermediate hop only dispatched.
                self.folded_stages.increment()
                self.sim.schedule_deferred(
                    self.config.pipeline.ingress_ns,
                    self.config.pipeline.pm_stage_ns,
                    self._log_update, frame, pmnet_packet(frame))
                return
            if action is MATAction.FORWARD_ACK:
                # ingress -> egress: a pass-through ACK touches nothing
                # until the forwarding lookup in `_forward_frame`, so
                # the whole pipeline can ride a channel reservation —
                # ingress + egress + serialization + propagation in one
                # delivery event.  A crash inside the window is safe:
                # `fail()` revokes the reservation and `_unfold_forward`
                # re-runs the unfolded fire-time check at its slot.
                self.folded_stages.increment()
                pipeline_ns = (self.config.pipeline.ingress_ns
                               + self.config.pipeline.egress_ns)
                channel = self.table.lookup(frame.dst).channel
                if channel is not None and channel.send_in(
                        pipeline_ns, frame, self._unfold_forward):
                    return
                self.sim.schedule_deferred(
                    self.config.pipeline.ingress_ns,
                    self.config.pipeline.egress_ns,
                    self._forward_frame, frame)
                return
        self.sim.schedule(self.config.pipeline.ingress_ns,
                          self._after_ingress, frame)

    def arrival_extension(self, frame: Frame):
        """Whole-request folding: extend an inbound wire chain through
        the deterministic head of this device's pipeline.

        Classification is pure (it reads only the frame), so it can run
        at reservation time just as the stage-folded path runs it at
        arrival time.  Two actions extend — their interior hops mutate
        nothing, every side effect lives in the barrier:

        * **LOG_AND_FORWARD** rides ingress + PM-access and lands in
          :meth:`_express_ingest` at the exact ``_log_update`` instant;
        * **INVALIDATE_AND_FORWARD** rides ingress and lands in
          :meth:`_express_server_ack` at the ``_after_ingress`` instant.

        Everything else — notably the cache read path, whose lookup
        outcome steers mid-pipeline branching — stays on the per-stage
        paths, so a cache-capable request never whole-request folds.
        The barriers re-check ``failed``, matching the stage-folded
        interior checks; a crash inside the window drops the frame on
        both timelines.
        """
        if not self._whole:
            return None
        action = classify(frame)
        if action is MATAction.LOG_AND_FORWARD:
            return ((self.config.pipeline.ingress_ns,
                     self.config.pipeline.pm_stage_ns),
                    self._express_ingest, (frame, pmnet_packet(frame)), None)
        if action is MATAction.INVALIDATE_AND_FORWARD:
            return ((self.config.pipeline.ingress_ns,),
                    self._express_server_ack,
                    (frame, pmnet_packet(frame)), None)
        return None

    def _express_ingest(self, frame: Frame, packet: PMNetPacket) -> None:
        """Barrier of an extended update chain: the ``_log_update``
        instant, with the ``receive``-time bookkeeping the chain
        subsumed."""
        if self.failed:
            return
        frame.hops += 1
        self.folded_stages.increment()
        self._log_update(frame, packet)

    def _express_server_ack(self, frame: Frame, packet: PMNetPacket) -> None:
        """Barrier of an extended server-ACK chain: the
        ``_after_ingress`` instant for an INVALIDATE_AND_FORWARD."""
        if self.failed:
            return
        frame.hops += 1
        self.folded_stages.increment()
        self._handle_server_ack(frame, packet)

    def _after_ingress(self, frame: Frame) -> None:
        if self.failed:
            return
        action = classify(frame)
        packet = pmnet_packet(frame)
        if action is MATAction.FORWARD_PLAIN:
            self.forwarded_plain.increment()
            self._egress(frame, payload_cost=False)
        elif action is MATAction.LOG_AND_FORWARD:
            self._handle_update(frame, packet)
        elif action is MATAction.BYPASS:
            self._handle_bypass(frame, packet)
        elif action is MATAction.FORWARD_ACK:
            self._egress(frame, payload_cost=False)
        elif action is MATAction.INVALIDATE_AND_FORWARD:
            self._handle_server_ack(frame, packet)
        elif action is MATAction.SERVE_RETRANS:
            self._handle_retrans(frame, packet)
        elif action is MATAction.CAPTURE_RESPONSE:
            self._handle_response(frame, packet)
        elif action is MATAction.RECOVERY:
            self._handle_recovery_poll(frame, packet)
        elif action is MATAction.CHAIN_LOG_AND_FORWARD:
            self._handle_chain_update(frame, packet)

    # ------------------------------------------------------------------
    # update-req: PM-access stage + egress (Fig 8 steps 3, 6, 7)
    # ------------------------------------------------------------------
    def _handle_update(self, frame: Frame, packet: PMNetPacket) -> None:
        self.sim.schedule(self.config.pipeline.pm_stage_ns,
                          self._log_update, frame, packet)

    def _log_update(self, frame: Frame, packet: PMNetPacket) -> None:
        if self.failed:
            return
        if self._spans is not None:
            # Fires at the same virtual time folded and unfolded: the
            # fold collapses ingress+PM-stage into one deferred event
            # ending exactly here.
            self._spans.record(packet.request_id, spans.LOG_WRITE,
                               self.sim.now)
        logged = self.log.try_log(packet, self._on_persisted)
        if logged:
            self._arm_scrubber()
        op = packet.payload if isinstance(packet.payload, Operation) else None
        if self.cache is not None and op is not None and packet.frag_count == 1:
            if op.is_cacheable_set:
                if logged:
                    self.cache.on_update_logged(op.key, op.value)  # T1/T3/T4/T5
                else:
                    self.cache.on_update_bypassed(op.key)
            elif op.is_update and op.key is not None and not logged:
                self.cache.on_update_bypassed(op.key)
        self.tracer.emit(self.sim.now, self.name,
                         "update_logged" if logged else "update_bypassed",
                         req=packet.request_id, seq=packet.seq_num)
        # Forward to the server regardless of the logging outcome
        # (Sec IV-B1: full log or collision means forward-without-ack).
        self._egress(frame, payload_cost=True)

    def _on_persisted(self, entry: LogEntry) -> None:
        """The log write completed: the request is in the persistence
        domain — generate the PMNet-ACK (Fig 3 step 4)."""
        if self.failed:
            return
        packet = entry.packet
        ack = packet.make_ack(PacketType.PMNET_ACK, origin_device=self.name)
        if self._spans is not None:
            self._spans.record(packet.request_id, spans.PMNET_ACK,
                               self.sim.now)
        self.acks_sent.increment()
        self.tracer.emit(self.sim.now, self.name, "pmnet_ack",
                         req=packet.request_id, seq=packet.seq_num)
        self._delayed_transmit(self.config.pipeline.ack_generation_ns,
                               ack, packet.client)

    # ------------------------------------------------------------------
    # chain-update: NetChain-style replication across devices.  Store-
    # and-forward: each member persists its copy before handing the
    # write to the next member; only the tail ACKs the client (the
    # paper's Sec IV-B1 "ACK from another PMNet", generalized across
    # switches).  Chain packets ride the generic per-stage path in all
    # fold modes, so fold/backend identity holds by construction.
    # ------------------------------------------------------------------
    def _handle_chain_update(self, frame: Frame, packet: PMNetPacket) -> None:
        self.sim.schedule(self.config.pipeline.pm_stage_ns,
                          self._log_chain_update, frame, packet)

    def _log_chain_update(self, frame: Frame, packet: PMNetPacket) -> None:
        if self.failed:
            return
        if self._spans is not None:
            self._spans.record(packet.request_id, spans.LOG_WRITE,
                               self.sim.now)
        existing = self.log.lookup(packet.hash_val)
        if existing is not None:
            # A client retransmission re-walking the chain (some member
            # downstream may still be missing its copy).  A durable
            # entry continues the walk immediately; a still-volatile
            # one advances through its original persist continuation.
            self.tracer.emit(self.sim.now, self.name, "chain_duplicate",
                             req=packet.request_id, seq=packet.seq_num)
            if existing.durable:
                self._advance_chain(packet)
            return
        if self.log.try_log(packet, self._on_chain_persisted):
            self._arm_scrubber()
            op = (packet.payload
                  if isinstance(packet.payload, Operation) else None)
            if (self.cache is not None and op is not None
                    and packet.frag_count == 1 and op.is_cacheable_set):
                self.cache.on_update_logged(op.key, op.value)
            self.tracer.emit(self.sim.now, self.name, "update_logged",
                             req=packet.request_id, seq=packet.seq_num)
            return
        # Log full / queue saturated: this member cannot hold a copy.
        # Pass the write along with the chain marked broken — the tail
        # withholds its early ACK, so the client completes on the
        # server ACK instead (forward-without-ack, chain edition).
        op = packet.payload if isinstance(packet.payload, Operation) else None
        if (self.cache is not None and op is not None and op.is_update
                and op.key is not None and packet.frag_count == 1):
            self.cache.on_update_bypassed(op.key)
        self.tracer.emit(self.sim.now, self.name, "update_bypassed",
                         req=packet.request_id, seq=packet.seq_num)
        self._advance_chain(replace(packet, chain_broken=True))

    def _on_chain_persisted(self, entry: LogEntry) -> None:
        """A chain member's copy is durable: continue the walk."""
        if self.failed:
            return
        self._advance_chain(entry.packet)

    def _advance_chain(self, packet: PMNetPacket) -> None:
        chain = packet.chain
        try:
            index = chain.index(self.name)
        except ValueError:
            # Not a member (stale routing after a membership change):
            # degrade to the plain-update behavior and push the write
            # toward the server.
            self._transmit_packet(packet, packet.server)
            return
        cost = (self.config.pipeline.egress_ns
                + round(packet.wire_bytes * self.config.pipeline.per_byte_ns))
        if index + 1 < len(chain):
            self.tracer.emit(self.sim.now, self.name, "chain_forward",
                             req=packet.request_id, seq=packet.seq_num,
                             to=chain[index + 1])
            self._delayed_transmit(cost, packet, chain[index + 1])
            return
        # Tail: every member upstream holds a durable copy unless one
        # bypassed en route (chain_broken) — early-ACK the client, then
        # hand the write to the shard server.
        if not packet.chain_broken:
            ack = packet.make_ack(PacketType.PMNET_ACK,
                                  origin_device=self.name)
            if self._spans is not None:
                self._spans.record(packet.request_id, spans.PMNET_ACK,
                                   self.sim.now)
            self.acks_sent.increment()
            self.tracer.emit(self.sim.now, self.name, "pmnet_ack",
                             req=packet.request_id, seq=packet.seq_num)
            self._delayed_transmit(self.config.pipeline.ack_generation_ns,
                                   ack, packet.client)
        self._delayed_transmit(cost, packet, packet.server)

    def _propagate_chain_invalidate(self, packet: PMNetPacket) -> None:
        """Walk a server ACK's invalidation toward the chain head.

        Members upstream of the tail are not on the server-to-client
        path, so the tail (and each member in turn) re-addresses the
        ACK to its predecessor.  Each hop invalidates its local entry
        in :meth:`_handle_server_ack` and keeps walking; the head stops.
        """
        index = packet.chain.index(self.name)
        if index == 0:
            return
        self.tracer.emit(self.sim.now, self.name, "chain_invalidate",
                         req=packet.request_id, seq=packet.seq_num,
                         to=packet.chain[index - 1])
        self._delayed_transmit(self.config.pipeline.egress_ns,
                               packet, packet.chain[index - 1])

    # ------------------------------------------------------------------
    # bypass-req: cache lookup, else plain forwarding (Fig 10)
    # ------------------------------------------------------------------
    def _handle_bypass(self, frame: Frame, packet: PMNetPacket) -> None:
        op = packet.payload if isinstance(packet.payload, Operation) else None
        if (self.cache is not None and op is not None
                and op.is_cacheable_get and packet.frag_count == 1):
            value = self.cache.lookup(op.key)
            if value is not None:
                self._serve_from_cache(packet, value)
                return
            # Miss: remember the key so the response can be captured.
            self._outstanding_reads[packet.hash_val] = op.key
            if len(self._outstanding_reads) > 4 * self.config.log.num_entries:
                self._outstanding_reads.pop(next(iter(self._outstanding_reads)))
        self._egress(frame, payload_cost=True)

    def _serve_from_cache(self, packet: PMNetPacket, value: object) -> None:
        """Serve a read hit: one PM read, then answer the client."""
        result = Result(ok=True, value=value, from_cache=True)
        size = max(16, packet.payload_bytes)
        if not self.read_queue.try_enqueue(size, self._cache_respond,
                                           packet, result, size):
            # Cache read port busy: fall back to the server path.
            self._transmit_packet(packet, packet.server)

    def _cache_respond(self, packet: PMNetPacket, result: Result,
                       size: int) -> None:
        if self.failed:
            return
        response = packet.make_response(result, size, from_cache=True,
                                        origin_device=self.name)
        self.cache_responses.increment()
        self._delayed_transmit(self.config.pipeline.ack_generation_ns,
                               response, packet.client)

    # ------------------------------------------------------------------
    # server-ACK: invalidate + forward (Fig 8 step 4)
    # ------------------------------------------------------------------
    def _handle_server_ack(self, frame: Frame, packet: PMNetPacket) -> None:
        entry = self.log.lookup(packet.hash_val)
        if entry is not None:
            if self._spans is not None:
                self._spans.record(packet.request_id, spans.LOG_INVALIDATE,
                                   self.sim.now)
            op = (entry.packet.payload
                  if isinstance(entry.packet.payload, Operation) else None)
            self.log.invalidate(packet.hash_val)
            if self.cache is not None and op is not None and op.key is not None:
                self.cache.on_server_ack(op.key)  # T2/T6
            self.tracer.emit(self.sim.now, self.name, "log_invalidated",
                             req=packet.request_id, seq=packet.seq_num)
        self.resend_engine.on_server_ack(packet.hash_val)
        if packet.chain and self.name in packet.chain:
            self._propagate_chain_invalidate(packet)
        if frame.dst == self.name:
            # A chain-addressed invalidation terminates here; the
            # propagation above keeps walking tail-to-head.
            return
        # Always forward toward the client: an upstream PMNet in a
        # replication chain may hold its own copy (Sec IV-B1).
        self._egress(frame, payload_cost=False)

    # ------------------------------------------------------------------
    # Retrans: serve from log when possible (Sec IV-B1)
    # ------------------------------------------------------------------
    def _handle_retrans(self, frame: Frame, packet: PMNetPacket) -> None:
        request = packet.payload
        if not isinstance(request, RetransRequest):
            self._egress(frame, payload_cost=False)
            return
        leftover_seqs = []
        leftover_hashes = []
        for seq, hash_val in zip(request.missing_seq_nums,
                                 request.missing_hash_vals):
            entry = self.log.lookup(hash_val)
            if entry is not None and entry.durable:
                self.retrans_served.increment()
                self.log.read_entry(entry, self._resend_to_server, entry)
            else:
                leftover_seqs.append(seq)
                leftover_hashes.append(hash_val)
        if leftover_seqs:
            remainder = RetransRequest(request.session_id,
                                       tuple(leftover_seqs),
                                       tuple(leftover_hashes))
            forwarded = PMNetPacket(
                header=packet.header, payload=remainder,
                payload_bytes=packet.payload_bytes,
                request_id=packet.request_id, client=packet.client,
                server=packet.server)
            self._transmit_packet(forwarded, packet.client)

    # ------------------------------------------------------------------
    # Server responses: capture reads into the cache (Fig 10 step 5)
    # ------------------------------------------------------------------
    def _handle_response(self, frame: Frame, packet: PMNetPacket) -> None:
        if self.cache is not None:
            key = self._outstanding_reads.pop(packet.hash_val, None)
            result = packet.payload
            if key is not None and isinstance(result, Result) and result.ok:
                self.cache.on_server_response(key, result.value)
        self._egress(frame, payload_cost=False)

    # ------------------------------------------------------------------
    # Recovery poll (Sec IV-E1): start the ordered resend
    # ------------------------------------------------------------------
    def _handle_recovery_poll(self, frame: Frame, packet: PMNetPacket) -> None:
        if frame.dst != self.name:
            # The server polls each device individually; polls for other
            # devices in the chain pass through.
            self._egress(frame, payload_cost=False)
            return
        poll = packet.payload
        expected = poll.expected_seq if isinstance(poll, RecoveryPoll) else {}
        self.tracer.emit(self.sim.now, self.name, "recovery_poll",
                         sessions=len(expected))
        self.resend_engine.start(packet.server, expected)

    # ------------------------------------------------------------------
    # Log scrubber: redo aged, never-ACKed entries (tail-loss repair)
    # ------------------------------------------------------------------
    def _arm_scrubber(self) -> None:
        """Ensure one scrub pass is scheduled while entries exist.

        The client already holds a PMNet-ACK for every logged entry, so
        if the forwarded copy was lost on the way to the server nobody
        else will retry — the device redoes entries older than the redo
        timeout (the log acting as the redo log it is, Sec III).
        Event-driven: no periodic timer runs while the log is empty.
        """
        if self._scrub_armed or self.failed:
            return
        self._scrub_armed = True
        self.sim.schedule(self.config.log.redo_timeout_ns, self._scrub)

    def _scrub(self) -> None:
        self._scrub_armed = False
        if self.failed or self.resend_engine.active:
            # A full recovery resend is already replaying everything.
            if self.log.occupancy:
                self._arm_scrubber()
            return
        now = self.sim.now
        redone = 0
        for entry in self.log.durable_entries_in_order():
            if redone >= self.config.log.redo_batch:
                break
            if now - entry.inserted_at_ns < self.config.log.redo_timeout_ns:
                break  # insertion order == age order
            self.redo_resends.increment()
            self.log.read_entry(entry, self._resend_to_server, entry)
            redone += 1
        if self.log.occupancy:
            self._arm_scrubber()

    def _resend_to_server(self, entry: LogEntry) -> None:
        """Redo one durable log entry toward the server (log read done)."""
        self._transmit_packet(entry.packet.as_resent(), entry.packet.server)

    # ------------------------------------------------------------------
    # Egress stage: stage cost + transmit via the forwarding table
    # ------------------------------------------------------------------
    def _egress(self, frame: Frame, payload_cost: bool) -> None:
        cost = self.config.pipeline.egress_ns
        if payload_cost:
            cost += round(frame.payload_bytes * self.config.pipeline.per_byte_ns)
        if self._fold:
            channel = self.table.lookup(frame.dst).channel
            if channel is not None and channel.send_in(cost, frame,
                                                       self._unfold_forward):
                self.folded_stages.increment()
                return
        self.sim.schedule(cost, self._forward_frame, frame)

    def _unfold_forward(self, frame: Frame) -> None:
        """A channel reservation was revoked (competing send, or this
        device failed mid-window): roll back the fold-time stage count
        and re-run the unfolded fire-time callback — its ``failed``
        check included — at the slot it would have occupied."""
        self.folded_stages.rollback(1)
        self._forward_frame(frame)

    def _forward_frame(self, frame: Frame) -> None:
        if self.failed:
            return
        self.table.lookup(frame.dst).transmit(frame)

    def _delayed_transmit(self, cost: int, packet: PMNetPacket,
                          destination: str) -> None:
        """Send a device-generated packet after a fixed generation delay,
        folding the delay into the wire when the channel is reservable.
        The revocation path reuses ``_unfold_forward``: the frame is
        prebuilt, so the unfolded ``_transmit_packet`` fire-time
        semantics (failed check, lookup, transmit) are identical."""
        if self._fold:
            frame = self._make_frame(packet, destination)
            channel = self.table.lookup(destination).channel
            if channel is not None and channel.send_in(cost, frame,
                                                       self._unfold_forward):
                self.folded_stages.increment()
                return
        self.sim.schedule(cost, self._transmit_packet, packet, destination)

    def _make_frame(self, packet: PMNetPacket, destination: str) -> Frame:
        return Frame(src=self.name, dst=destination, payload=packet,
                     payload_bytes=packet.wire_bytes,
                     udp_port=51000 + packet.session_id % 1000)

    def _transmit_packet(self, packet: PMNetPacket, destination: str) -> None:
        """Wrap a device-generated packet in a frame and send it."""
        if self.failed:
            return
        self.table.lookup(destination).transmit(self._make_frame(packet,
                                                                 destination))

    # ------------------------------------------------------------------
    # Failure semantics
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Power-fail the device: durable log entries survive, everything
        volatile (queues, in-flight PM writes, pipeline state) is lost.
        ``super().fail()`` also revokes every unstarted channel
        reservation, so folded sends committed before the crash fall
        back to their unfolded fire-time checks and drop."""
        super().fail()
        self.pm.crash()
        self.log.crash()
        self.resend_engine.reset()
        self._outstanding_reads.clear()

    def recover(self) -> None:
        super().recover()
        self.pm.recover()
        self.write_queue.recover()
        self.read_queue.recover()
        self._scrub_armed = False
        if self.log.occupancy:
            self._arm_scrubber()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<PMNetDevice {self.name} mode={self.mode} "
                f"log={self.log.occupancy}>")
