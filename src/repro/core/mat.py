"""Match-action classification: the ingress stage of the MAT pipeline.

Mirrors Fig 8: the ingress pipeline first matches on the UDP port to
separate PMNet traffic from plain traffic, then on the PMNet ``Type``
field to pick the action.  The classification result tells the device
which stages (PM access, egress variants) the packet will traverse.
"""

from __future__ import annotations

from enum import Enum, auto
from typing import Optional

from repro.net.packet import Frame
from repro.protocol.packet import PMNetPacket
from repro.protocol.types import PacketType


class MATAction(Enum):
    """What the pipeline does with a classified packet."""

    #: Plain traffic: forward at the regular switching path.
    FORWARD_PLAIN = auto()
    #: update-req: log in PM, forward to server, ACK client on persist.
    LOG_AND_FORWARD = auto()
    #: bypass-req: forward, possibly serving a read from the cache first.
    BYPASS = auto()
    #: Another PMNet's ACK: forward along its path.
    FORWARD_ACK = auto()
    #: server-ACK: invalidate the log entry, then forward.
    INVALIDATE_AND_FORWARD = auto()
    #: Retrans: serve from log if present, else forward to the client.
    SERVE_RETRANS = auto()
    #: Server response: forward; the read cache may capture it.
    CAPTURE_RESPONSE = auto()
    #: Recovery poll from a restarting server: start the resend engine.
    RECOVERY = auto()
    #: chain-update: log in PM, then forward to the *next chain member*
    #: (or ACK client + forward to server, at the tail).
    CHAIN_LOG_AND_FORWARD = auto()


_TYPE_ACTIONS = {
    PacketType.UPDATE_REQ: MATAction.LOG_AND_FORWARD,
    PacketType.CHAIN_UPDATE: MATAction.CHAIN_LOG_AND_FORWARD,
    PacketType.BYPASS_REQ: MATAction.BYPASS,
    PacketType.PMNET_ACK: MATAction.FORWARD_ACK,
    PacketType.SERVER_ACK: MATAction.INVALIDATE_AND_FORWARD,
    PacketType.RETRANS: MATAction.SERVE_RETRANS,
    PacketType.SERVER_RESP: MATAction.CAPTURE_RESPONSE,
    PacketType.CACHE_RESP: MATAction.FORWARD_ACK,
    PacketType.RECOVERY_POLL: MATAction.RECOVERY,
}


def classify(frame: Frame) -> MATAction:
    """The ingress match: UDP port range first, then the Type field."""
    if not frame.is_pmnet:
        return MATAction.FORWARD_PLAIN
    packet = pmnet_packet(frame)
    if packet is None:
        return MATAction.FORWARD_PLAIN
    return _TYPE_ACTIONS[packet.packet_type]


def pmnet_packet(frame: Frame) -> Optional[PMNetPacket]:
    """The PMNet packet carried by a frame, if any."""
    payload = frame.payload
    return payload if isinstance(payload, PMNetPacket) else None
