"""PMNet's persistent read cache (Sec IV-D, Figs 10-11).

The cache sits on top of the request log: update requests refresh it,
read requests may be served from it with sub-RTT latency, and the state
machine of Fig 11 keeps it coherent with the in-flight log:

* ``INVALID``   — empty slot; reads miss.
* ``PENDING``   — holds the value of an update that PMNet has logged but
  the server has not yet committed; servable (T1).
* ``PERSISTED`` — the server has committed the update (T2); servable.
* ``STALE``     — more than one update to the key is outstanding; not
  servable until the ACKs drain (T4/T5/T6).

The transition methods return nothing; coherence is observable through
``lookup`` and the counters.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum
from typing import Any, Hashable, Optional

from repro.sim.monitor import Counter


class CacheState(str, Enum):
    INVALID = "invalid"
    PENDING = "pending"
    PERSISTED = "persisted"
    STALE = "stale"


#: States in which an entry may serve a read (Fig 11 caption).
SERVABLE = frozenset({CacheState.PENDING, CacheState.PERSISTED})


@dataclass
class CacheLine:
    """One key's cached value and coherence state."""

    state: CacheState
    value: Any = None

    @property
    def servable(self) -> bool:
        return self.state in SERVABLE


class ReadCache:
    """An LRU key-value cache with the Fig 11 coherence state machine."""

    def __init__(self, capacity_entries: int = 4096, name: str = "cache") -> None:
        if capacity_entries <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity_entries = capacity_entries
        self.name = name
        self._lines: "OrderedDict[Hashable, CacheLine]" = OrderedDict()
        self.hits = Counter(f"{name}.hits")
        self.misses = Counter(f"{name}.misses")
        self.evictions = Counter(f"{name}.evictions")

    # ------------------------------------------------------------------
    # Read path (Fig 10 steps 1-3)
    # ------------------------------------------------------------------
    def lookup(self, key: Hashable) -> Optional[Any]:
        """Return the cached value if servable, else ``None`` (miss)."""
        line = self._lines.get(key)
        if line is None or not line.servable:
            self.misses.increment()
            return None
        self._lines.move_to_end(key)
        self.hits.increment()
        return line.value

    def state_of(self, key: Hashable) -> CacheState:
        line = self._lines.get(key)
        return line.state if line is not None else CacheState.INVALID

    # ------------------------------------------------------------------
    # Update path (Fig 11 transitions T1/T3/T4/T5)
    # ------------------------------------------------------------------
    def on_update_logged(self, key: Hashable, value: Any) -> None:
        """An update-req for ``key`` was accepted into the log."""
        line = self._lines.get(key)
        if line is None or line.state is CacheState.INVALID:
            # T1: fresh entry, not yet persisted on the server.
            self._insert(key, CacheLine(CacheState.PENDING, value))
        elif line.state is CacheState.PERSISTED:
            # T3: replaces a committed value; back to pending.
            line.state = CacheState.PENDING
            line.value = value
            self._lines.move_to_end(key)
        elif line.state is CacheState.PENDING:
            # T4: a second outstanding update; stop serving until the
            # server catches up.
            line.state = CacheState.STALE
            line.value = None
        else:
            # T5: stale stays stale.
            line.value = None

    def on_update_bypassed(self, key: Hashable) -> None:
        """An update-req for ``key`` passed through *without* being logged.

        The server will change the value behind our back, so a servable
        entry must stop serving.
        """
        line = self._lines.get(key)
        if line is None:
            return
        if line.state in SERVABLE:
            line.state = CacheState.STALE
            line.value = None

    # ------------------------------------------------------------------
    # Server-ACK path (Fig 11 transitions T2/T6)
    # ------------------------------------------------------------------
    def on_server_ack(self, key: Hashable) -> None:
        """The server committed the outstanding update for ``key``."""
        line = self._lines.get(key)
        if line is None:
            return
        if line.state is CacheState.PENDING:
            line.state = CacheState.PERSISTED  # T2
        elif line.state is CacheState.STALE:
            # T6: the prior update persisted but newer ones may still be
            # in flight; drop to invalid and let a read refill.
            del self._lines[key]

    # ------------------------------------------------------------------
    # Fill path (Fig 10 step 5)
    # ------------------------------------------------------------------
    def on_server_response(self, key: Hashable, value: Any) -> None:
        """A read response from the server passes through the device.

        Only fills empty slots: if an update is in flight (PENDING/STALE)
        the response is older than the logged update and must not
        overwrite it.
        """
        line = self._lines.get(key)
        if line is None or line.state is CacheState.INVALID:
            self._insert(key, CacheLine(CacheState.PERSISTED, value))

    # ------------------------------------------------------------------
    def _insert(self, key: Hashable, line: CacheLine) -> None:
        if key in self._lines:
            del self._lines[key]
        while len(self._lines) >= self.capacity_entries:
            victim = self._find_victim()
            if victim is None:
                break  # everything is pinned by in-flight state
            del self._lines[victim]
            self.evictions.increment()
        self._lines[key] = line

    def _find_victim(self) -> Optional[Hashable]:
        """Oldest entry not pinned by in-flight coherence state."""
        for key, line in self._lines.items():
            if line.state is CacheState.PERSISTED:
                return key
        return None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._lines)

    def hit_rate(self) -> float:
        total = int(self.hits) + int(self.misses)
        return int(self.hits) / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ReadCache {self.name} {len(self)}/{self.capacity_entries}>"
