"""PMNet's persistent read cache (Sec IV-D, Figs 10-11).

The cache sits on top of the request log: update requests refresh it,
read requests may be served from it with sub-RTT latency, and the state
machine of Fig 11 keeps it coherent with the in-flight log:

* ``INVALID``   — empty slot; reads miss.
* ``PENDING``   — holds the value of an update that PMNet has logged but
  the server has not yet committed; servable (T1).
* ``PERSISTED`` — the server has committed the update (T2); servable.
* ``STALE``     — more than one update to the key is outstanding; not
  servable until the ACKs drain (T4/T5/T6).

The transition methods return nothing; coherence is observable through
``lookup`` and the counters.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum
from typing import Any, Hashable, Optional

from repro.sim.monitor import Counter, Gauge, instruments_summary


class CacheState(str, Enum):
    INVALID = "invalid"
    PENDING = "pending"
    PERSISTED = "persisted"
    STALE = "stale"


#: States in which an entry may serve a read (Fig 11 caption).
SERVABLE = frozenset({CacheState.PENDING, CacheState.PERSISTED})


@dataclass
class CacheLine:
    """One key's cached value and coherence state."""

    state: CacheState
    value: Any = None

    @property
    def servable(self) -> bool:
        return self.state in SERVABLE


class ReadCache:
    """An LRU key-value cache with the Fig 11 coherence state machine.

    Capacity is enforced against *evictable* lines only: PENDING and
    STALE lines are pinned by in-flight coherence state (dropping one
    would lose the only record that an update is outstanding), so a
    write-heavy burst against a slow server can push the cache past
    ``capacity_entries``.  That overflow is tracked honestly in the
    ``pinned_overflow`` gauge (current excess + high-water mark) rather
    than hidden; it drains as server ACKs land and the pinned lines
    become evictable again.

    Eviction is O(1): PERSISTED (evictable) lines are kept in their own
    LRU ordering (``_persisted``), touched on every hit, so the victim
    is always the least-recently-used persisted line — no scan of the
    pinned population.
    """

    def __init__(self, capacity_entries: int = 4096, name: str = "cache") -> None:
        if capacity_entries <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity_entries = capacity_entries
        self.name = name
        self._lines: "OrderedDict[Hashable, CacheLine]" = OrderedDict()
        #: LRU of keys currently in PERSISTED state (values unused).
        #: Invariant: ``key in _persisted`` iff ``_lines[key].state is
        #: PERSISTED``; ordering is hit/transition recency.
        self._persisted: "OrderedDict[Hashable, None]" = OrderedDict()
        self.hits = Counter(f"{name}.hits")
        self.misses = Counter(f"{name}.misses")
        self.evictions = Counter(f"{name}.evictions")
        self.pinned_overflow = Gauge(f"{name}.pinned_overflow")

    # ------------------------------------------------------------------
    # Read path (Fig 10 steps 1-3)
    # ------------------------------------------------------------------
    def lookup(self, key: Hashable) -> Optional[Any]:
        """Return the cached value if servable, else ``None`` (miss)."""
        line = self._lines.get(key)
        if line is None or not line.servable:
            self.misses.increment()
            return None
        self._lines.move_to_end(key)
        if line.state is CacheState.PERSISTED:
            self._persisted.move_to_end(key)
        self.hits.increment()
        return line.value

    def state_of(self, key: Hashable) -> CacheState:
        line = self._lines.get(key)
        return line.state if line is not None else CacheState.INVALID

    # ------------------------------------------------------------------
    # Update path (Fig 11 transitions T1/T3/T4/T5)
    # ------------------------------------------------------------------
    def on_update_logged(self, key: Hashable, value: Any) -> None:
        """An update-req for ``key`` was accepted into the log."""
        line = self._lines.get(key)
        if line is None or line.state is CacheState.INVALID:
            # T1: fresh entry, not yet persisted on the server.
            self._insert(key, CacheLine(CacheState.PENDING, value))
        elif line.state is CacheState.PERSISTED:
            # T3: replaces a committed value; back to pending (pinned).
            del self._persisted[key]
            line.state = CacheState.PENDING
            line.value = value
            self._lines.move_to_end(key)
        elif line.state is CacheState.PENDING:
            # T4: a second outstanding update; stop serving until the
            # server catches up.
            line.state = CacheState.STALE
            line.value = None
        else:
            # T5: stale stays stale.
            line.value = None

    def on_update_bypassed(self, key: Hashable) -> None:
        """An update-req for ``key`` passed through *without* being logged.

        The server will change the value behind our back, so a servable
        entry must stop serving.
        """
        line = self._lines.get(key)
        if line is None:
            return
        if line.state in SERVABLE:
            if line.state is CacheState.PERSISTED:
                del self._persisted[key]
            line.state = CacheState.STALE
            line.value = None

    # ------------------------------------------------------------------
    # Server-ACK path (Fig 11 transitions T2/T6)
    # ------------------------------------------------------------------
    def on_server_ack(self, key: Hashable) -> None:
        """The server committed the outstanding update for ``key``."""
        line = self._lines.get(key)
        if line is None:
            return
        if line.state is CacheState.PENDING:
            line.state = CacheState.PERSISTED  # T2 — evictable again
            self._persisted[key] = None
        elif line.state is CacheState.STALE:
            # T6: the prior update persisted but newer ones may still be
            # in flight; drop to invalid and let a read refill.
            del self._lines[key]
            self._track_overflow()

    # ------------------------------------------------------------------
    # Fill path (Fig 10 step 5)
    # ------------------------------------------------------------------
    def on_server_response(self, key: Hashable, value: Any) -> None:
        """A read response from the server passes through the device.

        Only fills empty slots: if an update is in flight (PENDING/STALE)
        the response is older than the logged update and must not
        overwrite it.
        """
        line = self._lines.get(key)
        if line is None or line.state is CacheState.INVALID:
            self._insert(key, CacheLine(CacheState.PERSISTED, value))

    # ------------------------------------------------------------------
    def _insert(self, key: Hashable, line: CacheLine) -> None:
        if key in self._lines:
            del self._lines[key]
            self._persisted.pop(key, None)
        while len(self._lines) >= self.capacity_entries and self._persisted:
            victim, _ = self._persisted.popitem(last=False)  # LRU, O(1)
            del self._lines[victim]
            self.evictions.increment()
        # When every resident line is pinned (PENDING/STALE), coherence
        # requires accepting the insert anyway: refusing it would lose
        # the record of an in-flight update.  The growth past capacity
        # is tracked, not hidden.
        self._lines[key] = line
        if line.state is CacheState.PERSISTED:
            self._persisted[key] = None
        self._track_overflow()

    def _track_overflow(self) -> None:
        """Record how far pinned lines have pushed us past capacity."""
        self.pinned_overflow.update(
            max(0, len(self._lines) - self.capacity_entries))

    # ------------------------------------------------------------------
    def wipe(self) -> int:
        """Erase every line (blank-replacement semantics, Sec IV-E2).

        Contents are gone — the data on the dead board cannot be served
        — but the instruments survive: counters stay cumulative across
        the swap so the metrics registry keeps observing the same
        objects it registered at construction.  Returns the number of
        erased lines.
        """
        erased = len(self._lines)
        self._lines.clear()
        self._persisted.clear()
        self._track_overflow()
        return erased

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._lines)

    def instruments(self) -> tuple:
        """This cache's typed instruments (the explicit registration
        protocol; see :mod:`repro.obs.registry`)."""
        return (self.hits, self.misses, self.evictions,
                self.pinned_overflow)

    def summary(self) -> dict:
        return instruments_summary(self.instruments())

    def hit_rate(self) -> float:
        total = int(self.hits) + int(self.misses)
        return int(self.hits) / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ReadCache {self.name} {len(self)}/{self.capacity_entries}>"
