"""PMNet core: the device, its MAT pipeline, cache, replication, recovery."""

from repro.core.cache import CacheLine, CacheState, ReadCache
from repro.core.mat import MATAction, classify, pmnet_packet
from repro.core.pmnet_device import PMNetDevice
from repro.core.recovery import ResendEngine
from repro.core.replication import (
    NO_PMNET,
    SINGLE_LOG,
    ReplicationPolicy,
    build_pmnet_chain,
)

__all__ = [
    "PMNetDevice",
    "MATAction", "classify", "pmnet_packet",
    "ReadCache", "CacheState", "CacheLine",
    "ResendEngine",
    "ReplicationPolicy", "NO_PMNET", "SINGLE_LOG", "build_pmnet_chain",
]
