"""In-network replication: chains of PMNet devices (Sec IV-C, Fig 9).

Replication needs no new data-plane mechanism: placing N PMNet devices in
series means each one logs the same update-req as it passes through and
each sends its own PMNet-ACK; the client proceeds once it holds ACKs from
all N distinct devices, and the single server-ACK invalidates every log
on its way back.  The helpers here express that policy and build chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import SystemConfig
    from repro.core.pmnet_device import PMNetDevice
    from repro.net.topology import Topology
    from repro.sim.kernel import Simulator
    from repro.sim.trace import Tracer


@dataclass(frozen=True)
class ReplicationPolicy:
    """How many distinct in-network persistence points a client requires.

    ``acks_required == 0`` is the baseline (wait for the server);
    ``1`` is plain PMNet; ``N > 1`` is N-way in-network replication.
    """

    acks_required: int = 1

    def __post_init__(self) -> None:
        if self.acks_required < 0:
            raise ValueError("acks_required must be >= 0")

    @property
    def uses_pmnet(self) -> bool:
        return self.acks_required > 0

    def satisfied_by(self, distinct_ack_origins: int) -> bool:
        """Whether a fragment with this many device ACKs is persistent."""
        return distinct_ack_origins >= self.acks_required


#: The baseline Client-Server policy: only the server's word counts.
NO_PMNET = ReplicationPolicy(acks_required=0)
#: Single-log PMNet (the common case).
SINGLE_LOG = ReplicationPolicy(acks_required=1)


def build_pmnet_chain(sim: "Simulator", topology: "Topology",
                      config: "SystemConfig", count: int,
                      mode: str = "switch",
                      enable_cache: bool = False,
                      name_prefix: str = "pmnet",
                      tracer: Optional["Tracer"] = None
                      ) -> List["PMNetDevice"]:
    """Create ``count`` PMNet devices wired in series.

    Returns the chain ordered client-side first.  The caller connects
    ``chain[0]`` toward the clients and ``chain[-1]`` toward the server
    (Fig 9a places the replication switches in series on the path).
    """
    from repro.core.pmnet_device import PMNetDevice

    if count <= 0:
        raise ValueError("a chain needs at least one device")
    devices = []
    for index in range(count):
        device = PMNetDevice(sim, f"{name_prefix}{index + 1}", config,
                             mode=mode, enable_cache=enable_cache,
                             tracer=tracer)
        topology.add(device)
        devices.append(device)
    for upstream, downstream in zip(devices, devices[1:]):
        topology.connect(upstream, downstream)
    return devices
