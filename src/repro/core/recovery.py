"""Device-side recovery: ordered, windowed resend of logged requests.

After a server failure, the recovering server polls PMNet (Sec IV-E1)
and the device replays its durable log entries *in original insertion
order* so the server can redo them with per-session SeqNum ordering
intact (Fig 3 recovery steps 1-3).

The resend is windowed: at most ``window`` entries are in flight at a
time, and each server-ACK both invalidates the entry and releases the
next resend.  The default window of 1 (stop-and-wait) keeps the replay
trivially ordered and matches the paper's measured ~67 us per resent
request (Sec VI-B6); larger windows pipeline the drain at the cost of
burstier replay, and would overrun switch queues if unbounded.

Stop-and-wait needs its own loss repair: while any resend is
outstanding the device's log scrubber stands down (the replay is
already redoing everything), so a resent request lost on the way to
the server would stall the drain forever.  A retry timer re-reads and
resends every still-outstanding entry after the redo timeout; the
server make-up-ACKs duplicates, so retries always converge.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.obs import spans
from repro.obs.registry import register_with_sim
from repro.pm.log import LogEntry
from repro.sim.monitor import Counter

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pmnet_device import PMNetDevice


class ResendEngine:
    """Replays a device's durable log to a recovering server."""

    def __init__(self, device: "PMNetDevice", window: int = 1) -> None:
        if window <= 0:
            raise ValueError("resend window must be positive")
        self.device = device
        self.window = window
        self._queue: List[LogEntry] = []
        self._outstanding: Set[int] = set()
        self._target_server: Optional[str] = None
        self.active = False
        self._retry_armed = False
        self.resends = Counter(f"{device.name}.resends")
        self.retries = Counter(f"{device.name}.resend_retries")
        self.skipped_committed = Counter(f"{device.name}.resend_skipped")
        self.started_at_ns: Optional[int] = None
        self.finished_at_ns: Optional[int] = None
        self._spans = spans.spans_for(device.sim)
        #: Distinguishes successive replays of one device in span keys.
        self._replay_seq = 0
        register_with_sim(device.sim, self)

    def instruments(self) -> tuple:
        """This engine's typed instruments (explicit registration)."""
        return (self.resends, self.retries, self.skipped_committed)

    def _record_replay(self, stage: str) -> None:
        self._spans.record(("recovery", self.device.name, self._replay_seq),
                           stage, self.device.sim.now, kind=spans.RECOVERY)

    # ------------------------------------------------------------------
    def start(self, server: str, expected_seq: Dict[int, int]) -> None:
        """Begin replaying durable entries the server has not committed.

        ``expected_seq`` maps SessionID to the next SeqNum the server
        expects; entries below that are already committed — the device
        invalidates them locally instead of resending (the make-up-ACK
        shortcut of Sec IV-E1 case 3, taken eagerly).

        A duplicate poll (the server re-polls devices that stay silent)
        is ignored while a replay to the same server is in progress:
        the retry timer guarantees that replay cannot stall, and
        ``resend_done`` goes out when it finishes.
        """
        if self.active and server == self._target_server:
            return
        entries = self.device.log.durable_entries_in_order()
        self._queue = []
        for entry in entries:
            packet = entry.packet
            if packet.server != server:
                # Multi-server fabrics: this entry belongs to a different
                # destination; only that server's own poll may replay it.
                continue
            threshold = expected_seq.get(packet.session_id)
            if threshold is not None and packet.seq_num < threshold:
                self.device.log.invalidate(packet.hash_val)
                self.skipped_committed.increment()
                continue
            self._queue.append(entry)
        self._outstanding = set()
        self._target_server = server
        self.active = True
        self.started_at_ns = self.device.sim.now
        self.finished_at_ns = None
        if self._spans is not None:
            self._replay_seq += 1
            self._record_replay(spans.REPLAY_START)
        if not self._queue:
            self._finish()
            return
        for _ in range(min(self.window, len(self._queue))):
            self._send_next()

    def _send_next(self) -> None:
        if not self.active:
            return
        if not self._queue:
            if not self._outstanding:
                self._finish()
            return
        entry = self._queue.pop(0)
        if self.device.log.lookup(entry.packet.hash_val) is not entry:
            # Invalidated (e.g. a late server-ACK raced the recovery).
            self._send_next()
            return
        self._outstanding.add(entry.packet.hash_val)
        self.device.log.read_entry(entry, self._transmit_resend, entry)
        self._arm_retry()

    def _transmit_resend(self, entry: LogEntry) -> None:
        if not self.active:
            return
        if self._spans is not None:
            self._record_replay(spans.REPLAY_RESEND)
        self.resends.increment()
        self.device._transmit_packet(entry.packet.as_resent(),
                                     self._target_server)

    def _arm_retry(self) -> None:
        """Schedule one loss-repair pass while resends are outstanding."""
        if self._retry_armed or not self.active:
            return
        self._retry_armed = True
        self.device.sim.schedule(self.device.config.log.redo_timeout_ns,
                                 self._retry_tick)

    def _retry_tick(self) -> None:
        self._retry_armed = False
        if not self.active or not self._outstanding:
            return
        for hash_val in list(self._outstanding):
            entry = self.device.log.lookup(hash_val)
            if entry is None:
                # Invalidated by a path that bypassed on_server_ack
                # (e.g. device recovery); count it as drained.
                self._outstanding.discard(hash_val)
                self._send_next()
            else:
                self.retries.increment()
                self.device.log.read_entry(entry, self._transmit_resend,
                                           entry)
        if self._outstanding:
            self._arm_retry()

    # ------------------------------------------------------------------
    def on_server_ack(self, hash_val: int) -> None:
        """Called by the device for every server-ACK it processes."""
        if not self.active or hash_val not in self._outstanding:
            return
        self._outstanding.discard(hash_val)
        self._send_next()

    def _finish(self) -> None:
        if not self.active:
            return
        self.active = False
        self.finished_at_ns = self.device.sim.now
        if self._spans is not None:
            self._record_replay(spans.REPLAY_DONE)
        self.device.tracer.emit(self.device.sim.now, self.device.name,
                                "resend_complete",
                                resent=int(self.resends))
        if self._target_server is not None:
            # Tell the recovering server this device's log is drained.
            from repro.net.packet import Frame, RawPayload
            frame = Frame(src=self.device.name, dst=self._target_server,
                          payload=RawPayload(
                              ("resend_done", self.device.name), 8),
                          payload_bytes=8)
            self.device.table.lookup(self._target_server).transmit(frame)

    def reset(self) -> None:
        """Abandon an in-progress resend (the device itself failed)."""
        self.active = False
        self._queue = []
        self._outstanding = set()

    @property
    def pending(self) -> int:
        return len(self._queue) + len(self._outstanding)

    def duration_ns(self) -> Optional[int]:
        """Wall time of the last completed resend, if any."""
        if self.started_at_ns is None or self.finished_at_ns is None:
            return None
        return self.finished_at_ns - self.started_at_ns
