"""Abstract network node: anything a link can terminate at.

Concrete nodes are plain switches (:mod:`repro.net.switch`), PMNet devices
(:mod:`repro.core.pmnet_device`), and hosts (:mod:`repro.stack.host`).
A node owns numbered ports; each port is attached to one directed pair of
channels by the topology builder.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import NetworkError
from repro.net.packet import Frame

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Channel
    from repro.sim.kernel import Simulator


class Port:
    """One attachment point of a node; sends into a directed channel."""

    def __init__(self, node: "Node", index: int) -> None:
        self.node = node
        self.index = index
        self.channel: Optional["Channel"] = None

    @property
    def connected(self) -> bool:
        return self.channel is not None

    def transmit(self, frame: Frame) -> None:
        """Send a frame out of this port."""
        if self.channel is None:
            raise NetworkError(
                f"port {self.index} of {self.node.name} is not connected")
        self.channel.send(frame)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Port {self.node.name}[{self.index}]>"


class Node:
    """Base class for every device attached to the fabric."""

    #: Whether this node's :meth:`arrival_extension` answer is a pure
    #: function of the frame *kind* (its classification), so channels
    #: may cache the returned plan per (node, kind) and rebuild only the
    #: per-frame ``args`` (see :meth:`Channel._sink_extension`).  Nodes
    #: whose extensions carry per-frame state — pre-drawn RNG, claim
    #: slots — must set this ``False`` and are queried per delivery.
    arrival_plans_static = True

    def __init__(self, sim: "Simulator", name: str) -> None:
        self.sim = sim
        self.name = name
        self.ports: List[Port] = []
        #: Set by the failure injector; failed nodes drop all traffic.
        self.failed = False
        #: Per-frame-kind arrival-extension plans cached by inbound
        #: channels (``None`` disables caching entirely).  Invalidated
        #: on failure, recovery, impairment change, and device
        #: replacement — any event that could change what this node
        #: answers.
        self._arrival_plans: Optional[dict] = (
            {} if self.arrival_plans_static else None)

    def add_port(self) -> Port:
        """Create one more port on this node."""
        port = Port(self, len(self.ports))
        self.ports.append(port)
        return port

    def receive(self, frame: Frame, in_port: Port) -> None:
        """Called by a channel when a frame arrives at ``in_port``."""
        if self.failed:
            return  # a dead device is a black hole
        frame.hops += 1
        self.handle_frame(frame, in_port)

    def handle_frame(self, frame: Frame, in_port: Port) -> None:
        """Process one arriving frame; subclasses must implement."""
        raise NotImplementedError

    def arrival_extension(self, frame: Frame):
        """Whole-request folding hook, queried by :meth:`Channel.send_in`.

        A node that can absorb this frame's arrival into deterministic
        extra hops returns ``(extra_hops, callback, args, claim)``: the
        wire chain is extended by ``extra_hops`` and ends in
        ``callback(*args)`` — a barrier that must re-check the node's
        liveness exactly as the stage-folded interior callbacks would —
        instead of the usual :meth:`~Node.receive` delivery.  ``claim``
        (or ``None``) is released on every in-place revocation so any
        RNG state the node pre-drew rewinds.  The base node never
        extends.
        """
        return None

    def fail(self) -> None:
        """Mark the node failed (volatile state handling is subclass duty).

        Folded sends commit their delivery at reservation time, before
        the instant the unfolded model would have re-checked ``failed``
        (see :meth:`Channel.send_in`).  Revoking every not-yet-started
        reservation on this node's outgoing channels converts each one
        back into its unfolded fire-time callback, so a crash inside a
        fold window drops exactly the frames the unfolded model drops.
        Started reservations (serialization underway) are kept: the
        unfolded timeline had also committed those to the wire.
        """
        self.failed = True
        self.invalidate_arrival_plans()
        for port in self.ports:
            if port.channel is not None:
                port.channel.revoke_unstarted()

    def recover(self) -> None:
        """Bring the node back after an intermittent failure."""
        self.failed = False
        self.invalidate_arrival_plans()

    def invalidate_arrival_plans(self) -> None:
        """Drop every cached arrival-extension plan for this node.

        Channels re-query :meth:`arrival_extension` per kind after this;
        call it whenever the node's extension answers could change
        (failure, recovery, reconfiguration, in-place replacement).
        """
        plans = self._arrival_plans
        if plans:
            plans.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "FAILED" if self.failed else "up"
        return f"<{type(self).__name__} {self.name!r} ports={len(self.ports)} {state}>"


class ForwardingTable:
    """Destination-node -> output-port map with an optional default."""

    def __init__(self) -> None:
        self._routes: Dict[str, Port] = {}
        self.default: Optional[Port] = None

    def set_route(self, destination: str, port: Port) -> None:
        self._routes[destination] = port

    def lookup(self, destination: str) -> Port:
        port = self._routes.get(destination)
        if port is None:
            port = self.default
        if port is None:
            raise NetworkError(f"no route to {destination!r}")
        return port

    def destinations(self) -> List[str]:
        return sorted(self._routes)

    def __len__(self) -> int:
        return len(self._routes)
