"""Links: serialization, propagation, FIFO queueing, and impairments.

A :class:`Link` is full duplex: it is built from two independent directed
:class:`Channel` objects.  Each channel models

* a drop-tail output queue (finite packet capacity),
* a transmitter that serializes one frame at a time at the link rate,
* fixed propagation delay, and
* optional impairments (loss, reordering, duplication) driven by a
  dedicated random stream so experiments can inject packet loss exactly
  where the paper's Fig 7 scenarios need it.

The common case — no impairments, transmitter idle, output queue empty —
takes a **latency-folded fast path**: serialization and propagation are
summed into one scheduled delivery event instead of a ``_serialized``
hop followed by a ``_deliver`` hop.  Delivery times are bit-identical to
the unfolded path (``PMNET_NO_FOLD=1`` keeps it testable); only the
event count changes.  Folding requires ``propagation_ns > 0``: with a
zero-delay wire the deferred chain would execute delivery on the seq
allocated at send time instead of the fresh seq the unfolded ``_launch``
allocates at the serialize instant, perturbing same-nanosecond
tie-breaking.  Transmitter occupancy is tracked as an absolute
``_busy_until`` time so back-to-back sends still serialize exactly: a
frame arriving mid-serialization queues, and the folded record ahead of
it is rewritten **in place** into the unfolded ``_serialized`` callback
— its queue slot (serialize-end time, seq allocated at serialize start)
is exactly where the unfolded record would sit, so the queue restarts
with bit-identical tie-breaking and the transmission finishes on the
unfolded code path.  In-place rewrites and revocations only ever touch
a record's callback, args, and deferred chain — never its ``(time,
seq)`` — which is what keeps them legal under every scheduler backend:
the record keeps its slot whether it lives in the heap, the now lane,
a calendar bucket, or the far tier (``PMNET_KERNEL``; see
``docs/simulator.md``), and deferred hops re-sequence through the
owning queue so each hop draws its fresh seq at the exact virtual
instant the unfolded path would have.  Impaired channels never fold — their per-frame
random draws and the loss/duplicate/reorder branching stay on the
original path, preserving RNG stream positions draw for draw.

Folding interacts with mid-run crashes through revocation: a folded
send commits its delivery at reservation time, while the unfolded
timeline re-checks the sender's liveness when the fire-time callback
runs.  :meth:`Channel.send_in` therefore records an ``on_revoke``
callback (the owner's unfolded fire-time callback) with every
reservation, and ``Node.fail`` revokes every reservation that has not
started serializing — converting each back into that callback at its
original queue slot, where the owner's ``failed`` check drops the frame
exactly as the unfolded run would.

**Whole-request folding** (fold level 2) extends a reservation's chain
*through the receiving node*: at reservation time the channel asks the
sink node for an :meth:`~repro.net.device.Node.arrival_extension` —
extra deterministic hops (a PMNet device's ingress/PM stages, a client
host's pre-drawn stack receive cost) appended to the serialize +
propagation chain, ending in the node's own barrier callback instead of
:meth:`_deliver`.  Each extra hop re-sequences at exactly the instant
the stage-folded path would have allocated the corresponding event, so
tie-breaking is unchanged; the barrier re-checks the receiver's
liveness just as the stage-folded interior callbacks would.  Extended
records revoke in place like base ones — a queueing frame, a competing
send, a node failure, or (for claims) any competing RNG draw at the
receiving host converts the record back to the exact stage-folded (or
unfolded) shape via :meth:`strip_extension`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Deque, Optional

from repro.config import folding_enabled
from repro.errors import SimulationError
from repro.net.device import Port
from repro.net.packet import PMNET_UDP_PORT_MAX, PMNET_UDP_PORT_MIN, Frame
from repro.protocol.packet import PMNetPacket
from repro.sim.clock import transmission_delay
from repro.obs.registry import register_with_sim
from repro.sim.monitor import Counter, Gauge, instruments_summary

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import NetworkProfile
    from repro.sim.kernel import Simulator


@dataclass(slots=True)
class Impairments:
    """Probabilistic misbehaviour of a directed channel."""

    loss_probability: float = 0.0
    duplicate_probability: float = 0.0
    reorder_probability: float = 0.0
    #: Extra delay added to a reordered frame so it lands behind its
    #: successors.
    reorder_extra_ns: int = 5_000

    def any_enabled(self) -> bool:
        return (self.loss_probability > 0.0
                or self.duplicate_probability > 0.0
                or self.reorder_probability > 0.0)


#: Frame-kind key for non-PMNet traffic in the arrival-plan cache.
_PLAIN_KIND = object()

#: Cache-miss sentinel (``None`` is a valid cached plan: "never extends").
_NO_PLAN = object()


def _remaining_hops(call) -> int:
    """Hops a deferred record has not yet consumed (0 = final slot)."""
    defer = call.defer_ns
    if type(defer) is tuple:
        return len(defer)
    return 1 if defer else 0


class _Reservation:
    """Bookkeeping for one :meth:`Channel.send_in` reservation.

    ``hops`` is the chain length at construction (2 for the base
    serialize + propagation chain, more when an arrival extension was
    appended): a record is *started* once its remaining hop count drops
    below ``hops``, and past the serialize-end slot once it drops to
    ``hops - 2``.  ``claim`` is the receiving host's pre-drawn RNG
    claim, if any — every in-place revocation must release it so the
    host's random stream rewinds to its unfolded position.
    """

    __slots__ = ("call", "frame", "start", "prev_busy_until", "wire_bytes",
                 "on_revoke", "hops", "claim")

    def __init__(self, call, frame, start, prev_busy_until, wire_bytes,
                 on_revoke, hops, claim):
        self.call = call
        self.frame = frame
        self.start = start
        self.prev_busy_until = prev_busy_until
        self.wire_bytes = wire_bytes
        self.on_revoke = on_revoke
        self.hops = hops
        self.claim = claim


class Channel:
    """One direction of a link: ``source`` port -> ``sink`` port."""

    def __init__(self, sim: "Simulator", name: str, profile: "NetworkProfile",
                 sink: Port, impairments: Optional[Impairments] = None) -> None:
        self.sim = sim
        self.name = name
        self.profile = profile
        self.sink = sink
        self.impairments = impairments or Impairments()
        self._rng = sim.random.stream(f"channel:{name}")
        self._queue: Deque[Frame] = deque()
        #: Absolute time the transmitter finishes its current frame.
        self._busy_until = 0
        #: An *unfolded* transmission is in progress: set when
        #: ``_serialized`` is scheduled, cleared when it runs.  While
        #: set, the transmitter is busy even at exactly ``_busy_until``
        #: — the pending ``_serialized`` callback owns the restart, so
        #: a same-nanosecond send must queue behind it (matching the
        #: pre-fold boolean-busy semantics tick for tick).  Folded
        #: transmissions leave this False; they free the transmitter
        #: only once their deferred record has been re-sequenced past
        #: the serialize-end slot, which happens at the same
        #: sub-nanosecond point the unfolded ``_serialized`` would run
        #: (see :meth:`send`).
        self._transmitting = False
        #: The heap record of the newest *folded* transmission whose
        #: serialization has begun (a plain-send fold, or a reservation
        #: observed past its start).  While ``now < _busy_until`` with
        #: ``_transmitting`` False, this record owns the transmitter; a
        #: frame queueing behind it converts it in place into the
        #: unfolded ``_serialized`` callback (see :meth:`_unfold_inflight`).
        self._serializing = None
        #: The :class:`_Reservation` backing :attr:`_serializing` when it
        #: came from :meth:`send_in` (``None`` for plain-send folds) —
        #: needed to interpret an *extended* record's remaining hops and
        #: to release its claim on conversion.
        self._serializing_res = None
        #: Future-start :class:`_Reservation` records taken by
        #: :meth:`send_in`, oldest first.  A plain :meth:`send` arriving
        #: before a reservation's start revokes it (see
        #: :meth:`revoke_unstarted`), so reservations can never overtake
        #: a frame that reached the channel earlier.
        self._reservations: Deque[_Reservation] = deque()
        #: Construction-time half of the fold gate; impairments are
        #: re-checked per send because experiments swap them mid-run
        #: (e.g. a timed loss window).  ``propagation_ns > 0`` keeps the
        #: delivery seq allocation on its own later instant (see the
        #: module docstring).
        self._fold = (folding_enabled()
                      and profile.queue_capacity_packets > 0
                      and profile.propagation_ns > 0)
        self.delivered = Counter(f"{name}.delivered")
        self.dropped_full = Counter(f"{name}.dropped_full")
        self.dropped_full_bytes = Counter(f"{name}.dropped_full_bytes")
        self.dropped_loss = Counter(f"{name}.dropped_loss")
        self.bytes_sent = Counter(f"{name}.bytes")
        self.folded_sends = Counter(f"{name}.folded")
        self.queue_depth_highwater = Gauge(f"{name}.queue_depth")
        register_with_sim(sim, self)

    # ------------------------------------------------------------------
    def _sink_extension(self, frame: Frame):
        """The receiving node's arrival extension for ``frame``, served
        from the per-(node, frame-kind) plan cache when the node allows.

        The extension walk (classification + config lookups) is a pure
        function of the frame kind on nodes that declare
        ``arrival_plans_static`` — re-walking it on every delivery was
        measurable at loadgen scale.  A cached plan stores only the
        static half ``(hops, barrier)``; the per-frame ``args`` are
        rebuilt as ``(frame, frame.payload)``, which is exactly what
        every static extender passes.  A cache miss queries the node
        through its instance attribute (so test spies intercept the
        first delivery of each kind), and anything per-frame — a claim,
        or unexpected args — is passed through uncached.  Plans are
        dropped by ``Node.invalidate_arrival_plans`` on failure,
        recovery, impairment change, and device replacement.
        """
        node = self.sink.node
        plans = node._arrival_plans
        if plans is None:
            return node.arrival_extension(frame)
        payload = frame.payload
        if (PMNET_UDP_PORT_MIN <= frame.udp_port <= PMNET_UDP_PORT_MAX
                and isinstance(payload, PMNetPacket)):
            kind = payload.packet_type
        else:
            kind = _PLAIN_KIND
        plan = plans.get(kind, _NO_PLAN)
        if plan is _NO_PLAN:
            extension = node.arrival_extension(frame)
            if extension is None:
                plans[kind] = None
                return None
            hops, callback, args, claim = extension
            if claim is not None or args != (frame, payload):
                # Per-frame state the rebuild could not reproduce:
                # serve it, but never cache it.
                return extension
            plans[kind] = (tuple(hops), callback)
            return extension
        if plan is None:
            return None
        hops, callback = plan
        return (hops, callback, (frame, payload), None)

    def send(self, frame: Frame) -> None:
        """Enqueue a frame for transmission (drop-tail when full)."""
        if self._reservations:
            self.revoke_unstarted()
        serializing = self._serializing
        if serializing is not None:
            ext = (self._serializing_res.hops - 2
                   if self._serializing_res is not None else 0)
            if _remaining_hops(serializing) <= ext:
                # The folded record has been re-sequenced past its
                # serialize-end slot (only arrival-extension hops, if
                # any, remain): the instant the unfolded ``_serialized``
                # would have run is behind us, so the transmitter really
                # is free.
                self._serializing = serializing = None
                self._serializing_res = None
        # At exactly ``now == _busy_until`` a still-deferred record means
        # the unfolded ``_serialized`` (same heap slot) has NOT run yet
        # relative to this event — the kernel re-sequences folded records
        # in (time, seq) order, so ``defer_ns`` being truthy is precisely
        # "our seq comes later this nanosecond".  The unfolded timeline
        # would find ``_transmitting`` still True and queue this frame,
        # so the folded one must too (converting the record in place).
        if (self._fold and not self._transmitting and not self._queue
                and serializing is None
                and self.sim.now >= self._busy_until
                and not self.impairments.any_enabled()):
            # Fast path: idle transmitter, empty queue, no impairments —
            # serialization + propagation fold into one delivery event.
            # The receiving node may extend the chain through its own
            # pipeline head exactly as on the :meth:`send_in` path; a
            # plain send starts serializing immediately, so the record
            # goes straight into the :attr:`_serializing` slot (with a
            # reservation alongside when extended, so hop accounting and
            # claim release keep working on conversion).
            wire_bytes = frame.wire_size(self.profile.header_overhead_bytes)
            serialize = transmission_delay(wire_bytes,
                                           self.profile.bandwidth_bps)
            self.bytes_sent.increment(wire_bytes)
            self.folded_sends.increment()
            now = self.sim.now
            hops = (self.profile.propagation_ns,)
            callback, args, claim = self._deliver, (frame,), None
            extension = self._sink_extension(frame)
            if extension is not None:
                extra_hops, ext_callback, ext_args, claim = extension
                hops = hops + tuple(extra_hops)
                callback, args = self._deliver_ext, (ext_callback, ext_args)
            call = self.sim.schedule_deferred(
                serialize, hops if len(hops) > 1 else hops[0],
                callback, *args)
            self._serializing = call
            if extension is not None:
                # ``hops`` counts the serialize hop like send_in's chains
                # (it lives in the record's surface delay here), so the
                # started/free arithmetic stays uniform.
                self._serializing_res = _Reservation(
                    call, frame, now, self._busy_until, wire_bytes, None,
                    len(hops) + 1, claim)
                if claim is not None:
                    claim.attach(call, self)
            else:
                self._serializing_res = None
            self._busy_until = now + serialize
            return
        if len(self._queue) >= self.profile.queue_capacity_packets:
            self.dropped_full.increment()
            self.dropped_full_bytes.increment(
                frame.wire_size(self.profile.header_overhead_bytes))
            return
        self._queue.append(frame)
        self.queue_depth_highwater.update(len(self._queue))
        if not self._transmitting:
            if serializing is not None:
                # A *folded* frame still owns the transmitter (either
                # mid-serialization, or ending this very nanosecond with
                # its record not yet re-sequenced): nothing would call
                # `_transmit_next` when it frees, so rewrite the folded
                # record into the unfolded `_serialized` callback at its
                # exact heap slot.
                self._unfold_inflight()
            elif self.sim.now >= self._busy_until:
                self._transmit_next()
            else:
                raise SimulationError(
                    f"channel {self.name}: busy transmitter with no "
                    f"in-flight record to convert")

    def send_in(self, pre_delay_ns: int, frame: Frame,
                on_revoke: Optional[Callable[[Frame], None]] = None) -> bool:
        """Reserve the transmitter for a send ``pre_delay_ns`` from now.

        A node whose next hop toward the wire is a fixed delay (a
        switch's forwarding latency, a device's egress stage, a host's
        stack-send cost) can fold that delay into the wire chain:
        pre-delay + serialization + propagation become one deferred
        event that executes only at delivery.  The reservation is taken
        only when the transmitter is predictably idle at send time:
        empty queue, no transmission in progress, any current busy
        period (including earlier reservations) over by
        ``now + pre_delay_ns``, and no impairments.  Returns ``False``
        otherwise — the caller must then schedule its own callback and
        call :meth:`send` at the original time (the unfolded path).

        A reservation is *provisional* until its serialization start
        time: if any plain :meth:`send` reaches the channel during the
        pre-delay gap — when the unfolded timeline would have had an
        idle transmitter — or the owning node fails, then
        :meth:`revoke_unstarted` converts the reservation back into the
        exact event the unfolded path would have executed.
        Single-writer rule: only the node owning the source port sends
        on a channel, so every competing send does come through
        :meth:`send` and triggers that revocation.

        ``on_revoke`` is the unfolded fire-time callback the reservation
        replaces: when revoked, the reservation's heap slot runs
        ``on_revoke(frame)`` so the owner's liveness check (``failed``,
        epoch) executes exactly as it would have unfolded.  Callers that
        incremented counters at fold time must roll them back inside
        ``on_revoke``.  Without one, the revoked slot falls back to a
        bare re-:meth:`send` — correct only for senders that can never
        fail mid-run (bare channels in tests).
        """
        if not (self._fold and not self._transmitting and not self._queue
                and self.sim.now + pre_delay_ns >= self._busy_until
                and not self.impairments.any_enabled()):
            return False
        self._pop_started()
        wire_bytes = frame.wire_size(self.profile.header_overhead_bytes)
        serialize = transmission_delay(wire_bytes, self.profile.bandwidth_bps)
        self.bytes_sent.increment(wire_bytes)
        self.folded_sends.increment()
        start = self.sim.now + pre_delay_ns
        hops = (serialize, self.profile.propagation_ns)
        callback, args, claim = self._deliver, (frame,), None
        extension = self._sink_extension(frame)
        if extension is not None:
            # Whole-request folding: the receiving node extends the
            # chain through its own deterministic pipeline head, ending
            # in a barrier callback that re-checks its liveness.
            extra_hops, ext_callback, ext_args, claim = extension
            hops = hops + tuple(extra_hops)
            callback, args = self._deliver_ext, (ext_callback, ext_args)
        call = self.sim.schedule_deferred(pre_delay_ns, hops, callback, *args)
        reservation = _Reservation(call, frame, start, self._busy_until,
                                   wire_bytes, on_revoke, len(hops), claim)
        if claim is not None:
            claim.attach(call, self)
        self._reservations.append(reservation)
        self._busy_until = start + serialize
        return True

    def _deliver_ext(self, callback, args) -> None:
        """Barrier slot of an extension-carrying chain: count the wire
        delivery (the chain subsumed the ``_deliver`` hop) and run the
        receiving node's barrier callback."""
        self.delivered.increment()
        callback(*args)

    def _pop_started(self) -> None:
        """Drop reservations whose serialization began from tracking.

        The kernel consumed the chain's first hop (the remaining hop
        count dropped below the construction-time length), i.e.
        serialization began — they can no longer be revoked.  The newest
        one popped owns the transmitter whenever ``now < _busy_until``,
        so it becomes the :attr:`_serializing` record a queueing frame
        may convert.
        """
        res = self._reservations
        while res and _remaining_hops(res[0].call) < res[0].hops:
            started = res.popleft()
            self._serializing = started.call
            self._serializing_res = started

    def revoke_unstarted(self) -> None:
        """Fall every not-yet-started reservation back to the unfolded
        timeline (a competing plain send arrived during its gap, or the
        owning node failed).

        A reservation whose serialization has begun is indistinguishable
        from a folded in-flight frame and stays.  One that is still in
        its pre-delay gap is converted **in place**: its heap record —
        whose (time, seq) slot is exactly where the unfolded send
        callback's record sits, because the seq was allocated at the
        same instant — becomes the reservation's ``on_revoke`` callback
        at the original start time, and the transmitter-busy horizon
        rolls back to what it was before the reservation.  The callback
        then re-runs the owner's unfolded fire-time path — liveness
        check included — re-counting bytes on whichever path it takes.
        """
        self._pop_started()
        res = self._reservations
        restored = False
        while res:
            entry = res.popleft()
            if not restored:
                self._busy_until = entry.prev_busy_until
                restored = True
            self.bytes_sent.rollback(entry.wire_bytes)
            self.folded_sends.rollback(1)
            if entry.claim is not None:
                entry.claim.release()
            call = entry.call
            call.defer_ns = 0
            call.callback = (self._revoked_send if entry.on_revoke is None
                             else entry.on_revoke)
            call.args = (entry.frame,)

    def strip_extension(self, call, frame: Frame) -> None:
        """Convert an extended in-flight record back to the stage-folded
        chain (the receiving node revoked its arrival extension).

        The claim's pre-drawn hop is removed and the record becomes a
        plain ``_deliver`` chain: drop the trailing extension hop from
        whatever shape the chain is currently in, so the record ends at
        the wire-arrival instant with the seq the stage-folded path
        allocates there.  Reservation bookkeeping shrinks to the base
        two-hop interpretation so started/free detection keeps working.
        """
        defer = call.defer_ns
        if type(defer) is tuple:
            if len(defer) > 2:
                call.defer_ns = defer[:-1]
            elif len(defer) == 2:
                call.defer_ns = defer[0]
            elif defer:
                # A post-serialization extension (``_launch``): the sole
                # remaining hop IS the claim's — the record already sits
                # at the wire-arrival slot.
                call.defer_ns = 0
            else:
                return
        elif defer:
            call.defer_ns = 0
        else:
            return  # already at its final slot: nothing left to strip
        call.callback = self._deliver
        call.args = (frame,)
        if self._serializing is call:
            self._serializing_res = None
        else:
            for entry in self._reservations:
                if entry.call is call:
                    entry.hops = 2
                    entry.claim = None
                    break

    def on_impairments_changed(self) -> None:
        """Fall in-flight folded work back to the unfolded path after a
        mid-run impairment swap (a chaos fault window opening).

        Folding commits draws-free delivery up front, but the unfolded
        timeline draws loss/duplicate/reorder at each frame's
        serialize-end — so any folded record whose serialize-end lies
        *after* this instant must be converted back: reservations still
        in their pre-delay gap revoke wholesale, and a record
        mid-serialization is rewritten in place into ``_serialized`` at
        its serialize-end slot, where ``_launch`` re-checks impairments
        and draws exactly as the unfolded run does.  Records already
        past serialize-end committed before the swap on both timelines
        and stay folded.

        Cached arrival plans on the receiving node are dropped too: the
        plan cache must never outlive a reconfiguration of the path
        that feeds it (the send paths also stop querying extensions
        entirely while impairments are enabled).
        """
        self.sink.node.invalidate_arrival_plans()
        if self._reservations:
            self.revoke_unstarted()
        call = self._serializing
        if call is not None:
            ext = (self._serializing_res.hops - 2
                   if self._serializing_res is not None else 0)
            if _remaining_hops(call) == ext + 1:
                self._unfold_inflight()

    def _revoked_send(self, frame: Frame) -> None:
        """Fallback for reservations taken without ``on_revoke``: re-send
        unconditionally.  Only correct when the sender cannot fail."""
        self.send(frame)

    def _unfold_inflight(self) -> None:
        """Convert the in-flight folded transmission into ``_serialized``.

        A frame just queued while a folded transmission occupies the
        transmitter, so something must restart the queue when it frees.
        The folded record sits at exactly the heap slot the unfolded
        ``_serialized`` callback would occupy — same time (the serialize
        end), same seq (allocated at the serialize start) — so rather
        than scheduling a separate drain event (whose later-allocated
        seq could tie-break differently against unrelated
        same-nanosecond events), the record is rewritten in place into
        that callback.  From here the transmission is bit-for-bit the
        unfolded one: ``_serialized`` launches the frame, allocating the
        delivery seq at the serialize instant exactly as the unfolded
        ``_launch`` does, and restarts the queue.
        """
        call = self._serializing
        res = self._serializing_res
        ext = res.hops - 2 if res is not None else 0
        assert call is not None and _remaining_hops(call) == ext + 1, \
            "busy transmitter without a convertible folded record"
        if res is not None and res.claim is not None:
            res.claim.release()
            res.claim = None
        call.callback = self._serialized
        call.args = (res.frame,) if res is not None else call.args
        call.defer_ns = 0
        self._transmitting = True
        self._serializing = None
        self._serializing_res = None

    def _transmit_next(self) -> None:
        if not self._queue:
            return
        frame = self._queue.popleft()
        self.queue_depth_highwater.update(len(self._queue))
        wire_bytes = frame.wire_size(self.profile.header_overhead_bytes)
        serialize = transmission_delay(wire_bytes, self.profile.bandwidth_bps)
        self.bytes_sent.increment(wire_bytes)
        self._busy_until = self.sim.now + serialize
        self._transmitting = True
        # The transmitter is busy for the serialization time, then the
        # frame flies for the propagation delay while the next one starts.
        self.sim.schedule(serialize, self._serialized, frame)

    def _serialized(self, frame: Frame) -> None:
        self._transmitting = False
        self._launch(frame)
        self._transmit_next()

    def _launch(self, frame: Frame) -> None:
        if not self.impairments.any_enabled():
            # Even an *unfolded* transmission (queued behind contention)
            # can extend its delivery through the receiving node: the
            # record's push seq lands at this serialize-end instant and
            # each extension hop re-sequences exactly where the
            # stage-folded interior would have allocated its events, so
            # the chain is heap-order-identical with one event fewer.
            # The record is already past the transmitter (nothing here
            # tracks it), and claims stay revocable through the host
            # hooks.  Impaired copies never extend, mirroring the fold
            # gate.
            extension = self._sink_extension(frame)
            if extension is not None:
                extra_hops, ext_callback, ext_args, claim = extension
                call = self.sim.schedule_deferred(
                    self.profile.propagation_ns, tuple(extra_hops),
                    self._deliver_ext, ext_callback, ext_args)
                if claim is not None:
                    claim.attach(call, self)
                return
            self.sim.schedule(self.profile.propagation_ns,
                              self._deliver, frame)
            return
        # Draw order per frame: loss(original), duplicate, then per
        # surviving copy a reorder draw and — for the duplicate — its
        # own loss draw.  Each copy is an independent wire traversal,
        # so each gets independent loss and reorder draws (sharing the
        # original's draws made duplicate+loss and duplicate+reorder
        # unreachable); duplication is decided once per frame, so a
        # duplicate cannot spawn further duplicates.  All draws come
        # from the channel's dedicated stream, keeping runs seeded.
        imp = self.impairments
        rng = self._rng
        lost = rng.random() < imp.loss_probability
        duplicated = rng.random() < imp.duplicate_probability
        self._launch_copy(frame, lost, imp, rng)
        if duplicated:
            self._launch_copy(frame, rng.random() < imp.loss_probability,
                              imp, rng)

    def _launch_copy(self, frame: Frame, lost: bool,
                     imp: Impairments, rng) -> None:
        """Deliver (or drop) one copy of an impaired frame."""
        if lost:
            self.dropped_loss.increment()
            return
        delay = self.profile.propagation_ns
        if rng.random() < imp.reorder_probability:
            delay += imp.reorder_extra_ns
        self.sim.schedule(delay, self._deliver, frame)

    def _deliver(self, frame: Frame) -> None:
        self.delivered.increment()
        self.sink.node.receive(frame, self.sink)

    @property
    def queue_depth(self) -> int:
        """Frames waiting behind the one being serialized."""
        return len(self._queue)

    def instruments(self) -> tuple:
        """This channel's typed instruments (the explicit registration
        protocol; see :mod:`repro.obs.registry`)."""
        return (self.delivered, self.dropped_full, self.dropped_full_bytes,
                self.dropped_loss, self.bytes_sent, self.folded_sends,
                self.queue_depth_highwater)

    def summary(self) -> dict:
        """Every counter/gauge on this channel (queue pressure included)."""
        return instruments_summary(self.instruments())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Channel {self.name} queued={self.queue_depth}>"


class Link:
    """A full-duplex link between two ports (two directed channels)."""

    def __init__(self, sim: "Simulator", profile: "NetworkProfile",
                 port_a: Port, port_b: Port,
                 impairments_ab: Optional[Impairments] = None,
                 impairments_ba: Optional[Impairments] = None) -> None:
        name_ab = f"{port_a.node.name}->{port_b.node.name}"
        name_ba = f"{port_b.node.name}->{port_a.node.name}"
        self.forward = Channel(sim, name_ab, profile, port_b, impairments_ab)
        self.backward = Channel(sim, name_ba, profile, port_a, impairments_ba)
        port_a.channel = self.forward
        port_b.channel = self.backward
        self.port_a = port_a
        self.port_b = port_b

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.forward.name}>"
