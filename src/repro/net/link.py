"""Links: serialization, propagation, FIFO queueing, and impairments.

A :class:`Link` is full duplex: it is built from two independent directed
:class:`Channel` objects.  Each channel models

* a drop-tail output queue (finite packet capacity),
* a transmitter that serializes one frame at a time at the link rate,
* fixed propagation delay, and
* optional impairments (loss, reordering, duplication) driven by a
  dedicated random stream so experiments can inject packet loss exactly
  where the paper's Fig 7 scenarios need it.

The common case — no impairments, transmitter idle, output queue empty —
takes a **latency-folded fast path**: serialization and propagation are
summed into one scheduled delivery event instead of a ``_serialized``
hop followed by a ``_deliver`` hop.  Delivery times are bit-identical to
the unfolded path (``PMNET_NO_FOLD=1`` keeps it testable); only the
event count changes.  Transmitter occupancy is tracked as an absolute
``_busy_until`` time so back-to-back sends still serialize exactly:
a frame arriving mid-serialization queues and a single *drain* event at
``_busy_until`` starts it precisely when the unfolded ``_serialized``
callback would have.  Impaired channels never fold — their per-frame
random draws and the loss/duplicate/reorder branching stay on the
original path, preserving RNG stream positions draw for draw.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Optional

from repro.config import folding_enabled
from repro.net.device import Port
from repro.net.packet import Frame
from repro.sim.clock import transmission_delay
from repro.sim.monitor import Counter, Gauge, component_summary

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import NetworkProfile
    from repro.sim.kernel import Simulator


@dataclass
class Impairments:
    """Probabilistic misbehaviour of a directed channel."""

    loss_probability: float = 0.0
    duplicate_probability: float = 0.0
    reorder_probability: float = 0.0
    #: Extra delay added to a reordered frame so it lands behind its
    #: successors.
    reorder_extra_ns: int = 5_000

    def any_enabled(self) -> bool:
        return (self.loss_probability > 0.0
                or self.duplicate_probability > 0.0
                or self.reorder_probability > 0.0)


class Channel:
    """One direction of a link: ``source`` port -> ``sink`` port."""

    def __init__(self, sim: "Simulator", name: str, profile: "NetworkProfile",
                 sink: Port, impairments: Optional[Impairments] = None) -> None:
        self.sim = sim
        self.name = name
        self.profile = profile
        self.sink = sink
        self.impairments = impairments or Impairments()
        self._rng = sim.random.stream(f"channel:{name}")
        self._queue: Deque[Frame] = deque()
        #: Absolute time the transmitter finishes its current frame.
        self._busy_until = 0
        #: An *unfolded* transmission is in progress: set when
        #: ``_serialized`` is scheduled, cleared when it runs.  While
        #: set, the transmitter is busy even at exactly ``_busy_until``
        #: — the pending ``_serialized`` callback owns the restart, so
        #: a same-nanosecond send must queue behind it (matching the
        #: pre-fold boolean-busy semantics tick for tick).  Folded
        #: transmissions leave this False and free the transmitter the
        #: instant ``now`` reaches ``_busy_until``.
        self._transmitting = False
        #: A drain event is pending at ``_busy_until`` (folded sends
        #: leave no ``_serialized`` callback to restart the queue).
        self._drain_armed = False
        #: Future-start reservations taken by :meth:`send_in`, oldest
        #: first: ``(call, frame, start, prev_busy_until, wire_bytes)``.
        #: A plain :meth:`send` arriving before a reservation's start
        #: revokes it (see :meth:`_revoke_unstarted`), so reservations
        #: can never overtake a frame that reached the channel earlier.
        self._reservations: Deque[tuple] = deque()
        #: Construction-time half of the fold gate; impairments are
        #: re-checked per send because experiments swap them mid-run
        #: (e.g. a timed loss window).
        self._fold = (folding_enabled()
                      and profile.queue_capacity_packets > 0)
        self.delivered = Counter(f"{name}.delivered")
        self.dropped_full = Counter(f"{name}.dropped_full")
        self.dropped_full_bytes = Counter(f"{name}.dropped_full_bytes")
        self.dropped_loss = Counter(f"{name}.dropped_loss")
        self.bytes_sent = Counter(f"{name}.bytes")
        self.folded_sends = Counter(f"{name}.folded")
        self.queue_depth_highwater = Gauge(f"{name}.queue_depth")

    # ------------------------------------------------------------------
    def send(self, frame: Frame) -> None:
        """Enqueue a frame for transmission (drop-tail when full)."""
        if self._reservations:
            self._revoke_unstarted()
        if (self._fold and not self._transmitting and not self._queue
                and self.sim.now >= self._busy_until
                and not self.impairments.any_enabled()):
            # Fast path: idle transmitter, empty queue, no impairments —
            # serialization + propagation fold into one delivery event.
            wire_bytes = frame.wire_size(self.profile.header_overhead_bytes)
            serialize = transmission_delay(wire_bytes,
                                           self.profile.bandwidth_bps)
            self.bytes_sent.increment(wire_bytes)
            self.folded_sends.increment()
            self._busy_until = self.sim.now + serialize
            self.sim.schedule_deferred(serialize, self.profile.propagation_ns,
                                       self._deliver, frame)
            return
        if len(self._queue) >= self.profile.queue_capacity_packets:
            self.dropped_full.increment()
            self.dropped_full_bytes.increment(
                frame.wire_size(self.profile.header_overhead_bytes))
            return
        self._queue.append(frame)
        self.queue_depth_highwater.update(len(self._queue))
        if not self._transmitting:
            if self.sim.now >= self._busy_until:
                self._transmit_next()
            elif not self._drain_armed:
                # Mid-serialization of a *folded* frame: nothing will
                # call `_transmit_next` when the transmitter frees, so
                # schedule the restart at exactly the time the unfolded
                # `_serialized` callback would have run.  (Unfolded
                # frames restart the queue from `_serialized`.)
                self._drain_armed = True
                self.sim.schedule(self._busy_until - self.sim.now,
                                  self._drain)

    def send_in(self, pre_delay_ns: int, frame: Frame) -> bool:
        """Reserve the transmitter for a send ``pre_delay_ns`` from now.

        A node whose next hop toward the wire is a fixed delay (a
        switch's forwarding latency, a device's egress stage, a host's
        stack-send cost) can fold that delay into the wire chain:
        pre-delay + serialization + propagation become one deferred
        event that executes only at delivery.  The reservation is taken
        only when the transmitter is predictably idle at send time:
        empty queue, no transmission in progress, any current busy
        period (including earlier reservations) over by
        ``now + pre_delay_ns``, and no impairments.  Returns ``False``
        otherwise — the caller must then schedule its own callback and
        call :meth:`send` at the original time (the unfolded path).

        A reservation is *provisional* until its serialization start
        time: if any plain :meth:`send` reaches the channel during the
        pre-delay gap — when the unfolded timeline would have had an
        idle transmitter — :meth:`_revoke_unstarted` converts the
        reservation back into the exact event the unfolded path would
        have executed.  Single-writer rule: only the node owning the
        source port sends on a channel, so every competing send does
        come through :meth:`send` and triggers that revocation.
        """
        if not (self._fold and not self._transmitting and not self._queue
                and self.sim.now + pre_delay_ns >= self._busy_until
                and not self.impairments.any_enabled()):
            return False
        res = self._reservations
        while res and type(res[0][0].defer_ns) is not tuple:
            res.popleft()  # serialization began: no longer revocable
        wire_bytes = frame.wire_size(self.profile.header_overhead_bytes)
        serialize = transmission_delay(wire_bytes, self.profile.bandwidth_bps)
        self.bytes_sent.increment(wire_bytes)
        self.folded_sends.increment()
        start = self.sim.now + pre_delay_ns
        call = self.sim.schedule_deferred(
            pre_delay_ns, (serialize, self.profile.propagation_ns),
            self._deliver, frame)
        self._reservations.append(
            (call, frame, start, self._busy_until, wire_bytes))
        self._busy_until = start + serialize
        return True

    def _revoke_unstarted(self) -> None:
        """Fall every not-yet-started reservation back to the unfolded
        timeline (a competing plain send arrived during its gap).

        A reservation whose serialization has begun is indistinguishable
        from a folded in-flight frame and stays.  One that is still in
        its pre-delay gap is converted **in place**: its heap record —
        whose (time, seq) slot is exactly where the unfolded send
        callback's record sits, because the seq was allocated at the
        same instant — becomes a plain :meth:`_revoked_send` at the
        original start time, and the transmitter-busy horizon rolls back
        to what it was before the reservation.  The send then re-runs
        through :meth:`send` at its unfolded time, re-counting bytes on
        whichever path it takes.
        """
        res = self._reservations
        # Started reservations: the kernel consumed the chain's first
        # hop (defer_ns is no longer the 2-tuple), i.e. serialization
        # began — drop them from tracking, they cannot be revoked.
        while res and type(res[0][0].defer_ns) is not tuple:
            res.popleft()
        restored = False
        while res:
            call, frame, _start, prev_busy, wire_bytes = res.popleft()
            if not restored:
                self._busy_until = prev_busy
                restored = True
            self.bytes_sent.rollback(wire_bytes)
            self.folded_sends.rollback(1)
            call.defer_ns = 0
            call.callback = self._revoked_send
            call.args = (frame,)

    def _revoked_send(self, frame: Frame) -> None:
        self.send(frame)

    def _drain(self) -> None:
        self._drain_armed = False
        if not self._transmitting and self.sim.now >= self._busy_until:
            self._transmit_next()

    def _transmit_next(self) -> None:
        if not self._queue:
            return
        frame = self._queue.popleft()
        self.queue_depth_highwater.update(len(self._queue))
        wire_bytes = frame.wire_size(self.profile.header_overhead_bytes)
        serialize = transmission_delay(wire_bytes, self.profile.bandwidth_bps)
        self.bytes_sent.increment(wire_bytes)
        self._busy_until = self.sim.now + serialize
        self._transmitting = True
        # The transmitter is busy for the serialization time, then the
        # frame flies for the propagation delay while the next one starts.
        self.sim.schedule(serialize, self._serialized, frame)

    def _serialized(self, frame: Frame) -> None:
        self._transmitting = False
        self._launch(frame)
        self._transmit_next()

    def _launch(self, frame: Frame) -> None:
        delay = self.profile.propagation_ns
        if self.impairments.any_enabled():
            if self._rng.random() < self.impairments.loss_probability:
                self.dropped_loss.increment()
                return
            if self._rng.random() < self.impairments.duplicate_probability:
                self.sim.schedule(delay, self._deliver, frame)
            if self._rng.random() < self.impairments.reorder_probability:
                delay += self.impairments.reorder_extra_ns
        self.sim.schedule(delay, self._deliver, frame)

    def _deliver(self, frame: Frame) -> None:
        self.delivered.increment()
        self.sink.node.receive(frame, self.sink)

    @property
    def queue_depth(self) -> int:
        """Frames waiting behind the one being serialized."""
        return len(self._queue)

    def summary(self) -> dict:
        """Every counter/gauge on this channel (queue pressure included)."""
        return component_summary(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Channel {self.name} queued={self.queue_depth}>"


class Link:
    """A full-duplex link between two ports (two directed channels)."""

    def __init__(self, sim: "Simulator", profile: "NetworkProfile",
                 port_a: Port, port_b: Port,
                 impairments_ab: Optional[Impairments] = None,
                 impairments_ba: Optional[Impairments] = None) -> None:
        name_ab = f"{port_a.node.name}->{port_b.node.name}"
        name_ba = f"{port_b.node.name}->{port_a.node.name}"
        self.forward = Channel(sim, name_ab, profile, port_b, impairments_ab)
        self.backward = Channel(sim, name_ba, profile, port_a, impairments_ba)
        port_a.channel = self.forward
        port_b.channel = self.backward
        self.port_a = port_a
        self.port_b = port_b

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.forward.name}>"
