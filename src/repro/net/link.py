"""Links: serialization, propagation, FIFO queueing, and impairments.

A :class:`Link` is full duplex: it is built from two independent directed
:class:`Channel` objects.  Each channel models

* a drop-tail output queue (finite packet capacity),
* a transmitter that serializes one frame at a time at the link rate,
* fixed propagation delay, and
* optional impairments (loss, reordering, duplication) driven by a
  dedicated random stream so experiments can inject packet loss exactly
  where the paper's Fig 7 scenarios need it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Optional

from repro.net.device import Port
from repro.net.packet import Frame
from repro.sim.clock import transmission_delay
from repro.sim.monitor import Counter

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import NetworkProfile
    from repro.sim.kernel import Simulator


@dataclass
class Impairments:
    """Probabilistic misbehaviour of a directed channel."""

    loss_probability: float = 0.0
    duplicate_probability: float = 0.0
    reorder_probability: float = 0.0
    #: Extra delay added to a reordered frame so it lands behind its
    #: successors.
    reorder_extra_ns: int = 5_000

    def any_enabled(self) -> bool:
        return (self.loss_probability > 0.0
                or self.duplicate_probability > 0.0
                or self.reorder_probability > 0.0)


class Channel:
    """One direction of a link: ``source`` port -> ``sink`` port."""

    def __init__(self, sim: "Simulator", name: str, profile: "NetworkProfile",
                 sink: Port, impairments: Optional[Impairments] = None) -> None:
        self.sim = sim
        self.name = name
        self.profile = profile
        self.sink = sink
        self.impairments = impairments or Impairments()
        self._rng = sim.random.stream(f"channel:{name}")
        self._queue: Deque[Frame] = deque()
        self._busy = False
        self.delivered = Counter(f"{name}.delivered")
        self.dropped_full = Counter(f"{name}.dropped_full")
        self.dropped_loss = Counter(f"{name}.dropped_loss")
        self.bytes_sent = Counter(f"{name}.bytes")

    # ------------------------------------------------------------------
    def send(self, frame: Frame) -> None:
        """Enqueue a frame for transmission (drop-tail when full)."""
        if len(self._queue) >= self.profile.queue_capacity_packets:
            self.dropped_full.increment()
            return
        self._queue.append(frame)
        if not self._busy:
            self._transmit_next()

    def _transmit_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        frame = self._queue.popleft()
        wire_bytes = frame.wire_size(self.profile.header_overhead_bytes)
        serialize = transmission_delay(wire_bytes, self.profile.bandwidth_bps)
        self.bytes_sent.increment(wire_bytes)
        # The transmitter is busy for the serialization time, then the
        # frame flies for the propagation delay while the next one starts.
        self.sim.schedule(serialize, self._serialized, frame)

    def _serialized(self, frame: Frame) -> None:
        self._launch(frame)
        self._transmit_next()

    def _launch(self, frame: Frame) -> None:
        delay = self.profile.propagation_ns
        if self.impairments.any_enabled():
            if self._rng.random() < self.impairments.loss_probability:
                self.dropped_loss.increment()
                return
            if self._rng.random() < self.impairments.duplicate_probability:
                self.sim.schedule(delay, self._deliver, frame)
            if self._rng.random() < self.impairments.reorder_probability:
                delay += self.impairments.reorder_extra_ns
        self.sim.schedule(delay, self._deliver, frame)

    def _deliver(self, frame: Frame) -> None:
        self.delivered.increment()
        self.sink.node.receive(frame, self.sink)

    @property
    def queue_depth(self) -> int:
        """Frames waiting behind the one being serialized."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Channel {self.name} queued={self.queue_depth}>"


class Link:
    """A full-duplex link between two ports (two directed channels)."""

    def __init__(self, sim: "Simulator", profile: "NetworkProfile",
                 port_a: Port, port_b: Port,
                 impairments_ab: Optional[Impairments] = None,
                 impairments_ba: Optional[Impairments] = None) -> None:
        name_ab = f"{port_a.node.name}->{port_b.node.name}"
        name_ba = f"{port_b.node.name}->{port_a.node.name}"
        self.forward = Channel(sim, name_ab, profile, port_b, impairments_ab)
        self.backward = Channel(sim, name_ba, profile, port_a, impairments_ba)
        port_a.channel = self.forward
        port_b.channel = self.backward
        self.port_a = port_a
        self.port_b = port_b

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.forward.name}>"
