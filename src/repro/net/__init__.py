"""Network substrate: frames, links, switches, and topology wiring."""

from repro.net.device import ForwardingTable, Node, Port
from repro.net.link import Channel, Impairments, Link
from repro.net.packet import (
    PLAIN_UDP_PORT,
    PMNET_UDP_PORT_MAX,
    PMNET_UDP_PORT_MIN,
    Frame,
    RawPayload,
    is_pmnet_port,
)
from repro.net.switch import Switch
from repro.net.topology import Topology

__all__ = [
    "Node", "Port", "ForwardingTable",
    "Channel", "Link", "Impairments",
    "Frame", "RawPayload", "is_pmnet_port",
    "PLAIN_UDP_PORT", "PMNET_UDP_PORT_MIN", "PMNET_UDP_PORT_MAX",
    "Switch", "Topology",
]
