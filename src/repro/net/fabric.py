"""The multi-rack spine/leaf fabric with cross-switch chain replication.

This is the structural scale-out of the one-ToR star: R racks, each a
(leaf switch + PMNet devices + shard servers + client hosts) pod, wired
under S spine switches and routed by the existing BFS
:class:`~repro.net.topology.Topology`.  The keyspace is sharded over
the rack servers by a consistent-hash ring
(:class:`~repro.core.hashring.HashRing`); every write travels a
NetChain-style replication chain of PMNet devices *across racks* —
entering at the head, persisted member by member through the spine, and
early-ACKed by the *tail* device (the paper's Sec IV-B1 "ACK from
another PMNet", generalized across switches).

Placement invariants the protocol relies on:

* each rack's *primary* device sits between the leaf and the rack's
  shard servers, so all server-bound traffic — including SERVER_ACKs on
  their way back to clients — passes the chain tail;
* extra devices (``devices_per_rack > 1``) hang off the leaf and are
  reached only by explicitly addressed chain traffic;
* a shard's chain tail is its home rack's primary, so the tail-to-
  server hand-off is rack-local and a recovering server replays from
  its tail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.control.placement import PlacementView
from repro.core.hashring import HashRing
from repro.core.pmnet_device import PMNetDevice
from repro.core.replication import SINGLE_LOG
from repro.host.handler import IdealHandler
from repro.host.node import HostNode
from repro.host.server import PMNetServer
from repro.host.sharded import RingClient
from repro.host.stackmodel import HostStack
from repro.net.switch import Switch
from repro.net.topology import Topology
from repro.protocol.session import SessionAllocator
from repro.sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import SystemConfig
    from repro.experiments.deploy import Deployment, DeploymentSpec
    from repro.obs.context import Observability
    from repro.sim.trace import Tracer


@dataclass
class RackInfo:
    """One rack's component names."""

    index: int
    leaf: str
    devices: List[str]          # primary first
    servers: List[str]
    clients: List[str]

    @property
    def primary(self) -> str:
        return self.devices[0]


@dataclass
class FabricInfo:
    """The fabric's layout, for experiments and the chaos engine."""

    spines: List[str]
    racks: List[RackInfo]
    ring: HashRing
    #: server name -> chain (device names, head first, tail last).
    chains: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: (rack index, spine index, link) for every leaf-spine uplink, in
    #: wiring order — the chaos engine impairs these.
    spine_links: List[tuple] = field(default_factory=list)
    #: The shared routing view (ring + live migration overrides) every
    #: client of this fabric resolves through.
    placement: Optional[PlacementView] = None

    def rack_of_device(self, device: str) -> Optional[int]:
        for rack in self.racks:
            if device in rack.devices:
                return rack.index
        return None

    def rack_of_server(self, server: str) -> Optional[int]:
        for rack in self.racks:
            if server in rack.servers:
                return rack.index
        return None


def plan_chains(device_order: List[str], primaries: Dict[str, str],
                chain_length: int) -> Dict[str, Tuple[str, ...]]:
    """Chain membership: for each server, ``chain_length`` distinct
    devices ending at the home rack's primary (the tail).

    The upstream members are the devices *following* the tail in the
    global device ring, visited farthest-first, so consecutive racks
    back each other up and membership is a pure function of the layout
    (every client and the recovery path agree without coordination).
    """
    chains: Dict[str, Tuple[str, ...]] = {}
    total = len(device_order)
    for server, tail in primaries.items():
        anchor = device_order.index(tail)
        upstream = tuple(device_order[(anchor + offset) % total]
                         for offset in range(chain_length - 1, 0, -1))
        chains[server] = upstream + (tail,)
    return chains


def build_fabric(spec: "DeploymentSpec", config: "SystemConfig",
                 handler_factory=None, handler=None,
                 tracer: Optional["Tracer"] = None,
                 obs: Optional["Observability"] = None) -> "Deployment":
    """Wire the spine/leaf fabric a multi-rack spec describes."""
    from dataclasses import replace as dc_replace

    from repro.experiments.deploy import Deployment

    if handler is not None:
        raise ValueError("the fabric shards over many servers; pass a "
                         "handler_factory, not a single handler")
    sim = Simulator(seed=config.seed, obs=obs)
    topology = Topology(sim, config.network)
    spine_profile = (dc_replace(config.network,
                                propagation_ns=spec.spine_propagation_ns)
                     if spec.spine_propagation_ns is not None else None)

    spines = [Switch(sim, f"spine{index}", config.network)
              for index in range(spec.spines)]
    for spine in spines:
        topology.add(spine)

    racks: List[RackInfo] = []
    devices: List[PMNetDevice] = []
    servers: List[PMNetServer] = []
    spine_links: List[tuple] = []
    primaries: Dict[str, str] = {}
    clients_per_rack = (spec.clients_per_rack
                        if spec.clients_per_rack is not None
                        else config.num_clients)

    for rack_index in range(spec.racks):
        leaf = Switch(sim, f"leaf{rack_index}", config.network)
        topology.add(leaf)
        for spine_index, spine in enumerate(spines):
            link = topology.connect(leaf, spine, profile=spine_profile)
            spine_links.append((rack_index, spine_index, link))
        rack_devices: List[PMNetDevice] = []
        for device_index in range(spec.devices_per_rack):
            name = (f"pmnet-r{rack_index}" if device_index == 0
                    else f"pmnet-r{rack_index}x{device_index}")
            device = PMNetDevice(sim, name, config, mode="switch",
                                 enable_cache=spec.enable_cache,
                                 tracer=tracer)
            topology.add(device)
            topology.connect(leaf, device)
            rack_devices.append(device)
        devices.extend(rack_devices)
        rack_servers: List[PMNetServer] = []
        for server_index in range(spec.servers_per_rack):
            name = f"server-r{rack_index}s{server_index}"
            stack = HostStack(sim, name, config.server_stack,
                              spec.transport)
            host = HostNode(sim, name, stack)
            topology.add(host)
            topology.connect(rack_devices[0], host)
            shard_handler = (handler_factory()
                             if handler_factory is not None
                             else IdealHandler(config.server.ideal_handler_ns))
            rack_servers.append(PMNetServer(sim, host, shard_handler,
                                            config, tracer=tracer))
            primaries[name] = rack_devices[0].name
        servers.extend(rack_servers)
        racks.append(RackInfo(
            index=rack_index, leaf=leaf.name,
            devices=[device.name for device in rack_devices],
            servers=[server.host.name for server in rack_servers],
            clients=[]))

    device_order = [device.name for device in devices]
    chains = plan_chains(device_order, primaries, spec.chain_length)
    ring = HashRing([server.host.name for server in servers],
                    replicas=spec.ring_replicas)

    placement = PlacementView(ring)
    allocator = SessionAllocator()
    clients: List[RingClient] = []
    leaves = {rack.index: rack for rack in racks}
    for rack_index in range(spec.racks):
        leaf_switch = topology.nodes[leaves[rack_index].leaf]
        for client_index in range(clients_per_rack):
            name = f"client-r{rack_index}c{client_index}"
            stack = HostStack(sim, name, config.client_stack,
                              spec.transport)
            host = HostNode(sim, name, stack)
            topology.add(host)
            topology.connect(host, leaf_switch)
            clients.append(RingClient(sim, host, config, ring, chains,
                                      allocator, policy=SINGLE_LOG,
                                      tracer=tracer, placement=placement))
            racks[rack_index].clients.append(name)
    topology.compute_routes()

    fabric = FabricInfo(spines=[spine.name for spine in spines],
                        racks=racks, ring=ring, chains=chains,
                        spine_links=spine_links, placement=placement)
    return Deployment(sim=sim, config=config, topology=topology,
                      clients=clients, server=servers[0], devices=devices,
                      switches=[*spines] + [topology.nodes[rack.leaf]
                                            for rack in racks],
                      tracer=tracer, obs=obs,
                      extra_servers=servers[1:], spec=spec,
                      chains=chains, fabric=fabric)
