"""Topology builder: nodes, links, and shortest-path route computation.

Experiments construct small rack-scale fabrics (clients - switch - server,
optionally with PMNet devices in the path).  After wiring, a single call
to :meth:`Topology.compute_routes` fills every routing-capable node's
forwarding table with BFS next hops, so packets follow shortest paths —
the simulated analog of the paper's flow-consistent (ECMP) datacenter
fabric where a flow's path is fixed.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import NetworkError, RoutingError
from repro.net.device import Node, Port
from repro.net.link import Impairments, Link

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import NetworkProfile
    from repro.sim.kernel import Simulator


class Topology:
    """A set of nodes and the links between them."""

    def __init__(self, sim: "Simulator", profile: "NetworkProfile") -> None:
        self.sim = sim
        self.profile = profile
        self.nodes: Dict[str, Node] = {}
        self.links: List[Link] = []

    # ------------------------------------------------------------------
    def add(self, node: Node) -> Node:
        """Register a node (its name must be unique in the topology)."""
        if node.name in self.nodes:
            raise NetworkError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        return node

    def connect(self, a: Node, b: Node,
                impairments_ab: Optional[Impairments] = None,
                impairments_ba: Optional[Impairments] = None,
                profile: Optional[NetworkProfile] = None) -> Link:
        """Create a full-duplex link between fresh ports on ``a`` and ``b``.

        ``profile`` overrides the topology-wide network profile for this
        one link — a NIC-attached device sits on a short board trace,
        and spine uplinks cross longer fiber than rack-local links.
        """
        for node in (a, b):
            if node.name not in self.nodes:
                raise NetworkError(
                    f"node {node.name!r} must be added before connecting")
        link = Link(self.sim, profile if profile is not None else self.profile,
                    a.add_port(), b.add_port(),
                    impairments_ab, impairments_ba)
        self.links.append(link)
        return link

    # ------------------------------------------------------------------
    def _adjacency(self) -> Dict[str, List[Tuple[Port, str]]]:
        adjacency: Dict[str, List[Tuple[Port, str]]] = {
            name: [] for name in self.nodes}
        for link in self.links:
            a, b = link.port_a.node, link.port_b.node
            adjacency[a.name].append((link.port_a, b.name))
            adjacency[b.name].append((link.port_b, a.name))
        return adjacency

    def compute_routes(self) -> None:
        """Fill every node's forwarding table with BFS next hops.

        Nodes without a ``table`` attribute (hosts drive their single port
        directly) are skipped as route *holders* but still participate as
        destinations and transit is never routed through them.
        """
        adjacency = self._adjacency()
        for name, node in self.nodes.items():
            table = getattr(node, "table", None)
            if table is None:
                continue
            next_hops = self._bfs_next_hops(name, adjacency)
            for destination, port in next_hops.items():
                table.set_route(destination, port)

    def _bfs_next_hops(self, origin: str,
                       adjacency: Dict[str, List[Tuple[Port, str]]]
                       ) -> Dict[str, Port]:
        """First-hop port from ``origin`` toward every reachable node.

        Transit through hosts (nodes without a forwarding table) is not
        allowed: a path may *end* at a host but never pass through one.
        """
        next_hop: Dict[str, Port] = {}
        visited = {origin}
        queue: deque[Tuple[str, Port]] = deque()
        for port, neighbor in adjacency[origin]:
            if neighbor not in visited:
                visited.add(neighbor)
                next_hop[neighbor] = port
                queue.append((neighbor, port))
        while queue:
            current, first_port = queue.popleft()
            if getattr(self.nodes[current], "table", None) is None:
                continue  # hosts terminate paths; do not transit
            for _port, neighbor in adjacency[current]:
                if neighbor not in visited:
                    visited.add(neighbor)
                    next_hop[neighbor] = first_port
                    queue.append((neighbor, first_port))
        return next_hop

    def path(self, src: str, dst: str) -> List[str]:
        """Node names along the shortest path (for tests/diagnostics)."""
        if src not in self.nodes or dst not in self.nodes:
            raise RoutingError(f"unknown endpoint in path({src!r}, {dst!r})")
        adjacency = self._adjacency()
        parents: Dict[str, Optional[str]] = {src: None}
        queue = deque([src])
        while queue:
            current = queue.popleft()
            if current == dst:
                break
            if current != src and getattr(
                    self.nodes[current], "table", None) is None:
                continue
            for _port, neighbor in adjacency[current]:
                if neighbor not in parents:
                    parents[neighbor] = current
                    queue.append(neighbor)
        if dst not in parents:
            raise RoutingError(f"no path from {src!r} to {dst!r}")
        path = [dst]
        while parents[path[-1]] is not None:
            path.append(parents[path[-1]])  # type: ignore[arg-type]
        path.reverse()
        return path
