"""Network frames: what actually travels on simulated links.

A :class:`Frame` is the L2-L4 envelope: source/destination node names, a
UDP destination port, a payload object, and the payload's wire size.  The
payload is either an opaque :class:`RawPayload` (non-PMNet traffic) or a
``repro.protocol.PMNetPacket``; devices dispatch on the UDP port exactly
like the paper's ingress pipeline (PMNet reserves ports 51000-52000).

Both classes are hand-written ``__slots__`` classes, not dataclasses:
every simulated request allocates several frames, so the per-instance
``__dict__`` and the dataclass ``__init__`` indirection are measurable
on the hot path (see the allocation-lean notes in
``docs/simulator.md``).  Frames are identified by ``frame_id``, never
compared structurally, so no generated ``__eq__`` is needed.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

#: UDP destination-port range reserved for PMNet traffic (Sec IV-A2).
PMNET_UDP_PORT_MIN = 51000
PMNET_UDP_PORT_MAX = 52000

#: Default UDP port for ordinary (non-PMNet) datagram traffic.
PLAIN_UDP_PORT = 9000

_frame_ids = itertools.count(1)


def reset_frame_ids(start: int = 1) -> None:
    """Restart the frame-id sequence (fresh-simulation determinism);
    see :func:`repro.protocol.packet.reset_request_ids`."""
    global _frame_ids
    _frame_ids = itertools.count(start)


def is_pmnet_port(udp_port: int) -> bool:
    """Whether a UDP port falls inside the reserved PMNet range."""
    return PMNET_UDP_PORT_MIN <= udp_port <= PMNET_UDP_PORT_MAX


class RawPayload:
    """Opaque application payload for non-PMNet traffic."""

    __slots__ = ("data", "size_bytes")

    def __init__(self, data: Any = None, size_bytes: int = 0) -> None:
        self.data = data
        self.size_bytes = size_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RawPayload(data={self.data!r}, size_bytes={self.size_bytes})"


class Frame:
    """One simulated network frame.

    ``payload_bytes`` is the application-payload size; links add the
    configured L2-L4 framing overhead when computing serialization time.
    ``hops`` counts store-and-forward stages for diagnostics; ``frame_id``
    makes every frame uniquely identifiable in traces.
    """

    __slots__ = ("src", "dst", "payload", "payload_bytes", "udp_port",
                 "hops", "frame_id")

    def __init__(self, src: str, dst: str, payload: Any,
                 payload_bytes: int, udp_port: int = PLAIN_UDP_PORT,
                 hops: int = 0, frame_id: Optional[int] = None) -> None:
        if payload_bytes < 0:
            raise ValueError(
                f"payload size must be >= 0, got {payload_bytes}")
        self.src = src
        self.dst = dst
        self.payload = payload
        self.payload_bytes = payload_bytes
        self.udp_port = udp_port
        self.hops = hops
        self.frame_id = next(_frame_ids) if frame_id is None else frame_id

    @property
    def is_pmnet(self) -> bool:
        """Whether this frame belongs to the PMNet protocol."""
        return PMNET_UDP_PORT_MIN <= self.udp_port <= PMNET_UDP_PORT_MAX

    def wire_size(self, header_overhead_bytes: int) -> int:
        """Total on-wire size including framing overhead."""
        return self.payload_bytes + header_overhead_bytes

    def reply_to(self, payload: Any, payload_bytes: int,
                 udp_port: Optional[int] = None) -> "Frame":
        """Build a frame going back to this frame's source."""
        return Frame(src=self.dst, dst=self.src, payload=payload,
                     payload_bytes=payload_bytes,
                     udp_port=self.udp_port if udp_port is None else udp_port)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Frame#{self.frame_id} {self.src}->{self.dst} "
                f"port={self.udp_port} {self.payload_bytes}B>")
