"""A plain (non-programmable) store-and-forward switch.

Models the "regular switch (with sub-microsecond latency)" the paper
places between the clients and the FPGA (Sec VI-A1): a fixed forwarding
delay plus whatever queueing the output links impose.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.device import ForwardingTable, Node, Port
from repro.net.packet import Frame
from repro.sim.monitor import Counter

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import NetworkProfile
    from repro.sim.kernel import Simulator


class Switch(Node):
    """Forwards every frame toward its destination after a fixed delay."""

    def __init__(self, sim: "Simulator", name: str,
                 profile: "NetworkProfile") -> None:
        super().__init__(sim, name)
        self.profile = profile
        self.table = ForwardingTable()
        self.forwarded = Counter(f"{name}.forwarded")

    def handle_frame(self, frame: Frame, in_port: Port) -> None:
        self.sim.schedule(self.profile.switch_forward_ns,
                          self._forward, frame)

    def _forward(self, frame: Frame) -> None:
        if self.failed:
            return
        out_port = self.table.lookup(frame.dst)
        self.forwarded.increment()
        out_port.transmit(frame)
