"""A plain (non-programmable) store-and-forward switch.

Models the "regular switch (with sub-microsecond latency)" the paper
places between the clients and the FPGA (Sec VI-A1): a fixed forwarding
delay plus whatever queueing the output links impose.

Because the forwarding delay is a constant, frames reach a given output
channel in exactly the order they arrived at the switch — so when the
output transmitter is predictably idle at send time, the whole hop
folds: forwarding delay + serialization + propagation collapse into one
deferred delivery event (see :meth:`Channel.send_in`).  When the
channel cannot take the reservation (busy, queued, or impaired) the
switch falls back to scheduling ``_forward`` exactly as before; if that
unfolded send lands inside a later reservation's pre-delay gap, the
channel revokes the reservation — running ``_unfold_forward`` at the
slot ``_forward`` would have occupied — so arrival order is preserved.

Folding caveats: the routing lookup and the ``forwarded`` increment
happen at *arrival* time on the folded path, not at the end of the
forwarding delay, so mid-run snapshots of ``forwarded`` may lead the
unfolded timeline by up to ``switch_forward_ns`` (end-of-run totals are
identical), and mutating the forwarding table while frames are inside
that window is incompatible with folding.  A switch crash inside the
window is handled: ``Node.fail`` revokes the reservation and
``_unfold_forward`` re-runs the unfolded ``_forward`` — failed check
and all — rolling the fold-time increment back first.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.device import ForwardingTable, Node, Port
from repro.net.packet import Frame
from repro.obs import spans
from repro.obs.registry import register_with_sim
from repro.protocol.types import PacketType
from repro.sim.monitor import Counter

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import NetworkProfile
    from repro.sim.kernel import Simulator

#: Which lifecycle milestone a switch arrival marks, by packet type.
#: Requests are the forward direction, ACKs/responses the return one;
#: everything else (recovery traffic, retransmission control) is not a
#: per-request milestone.
_SPAN_STAGES = {
    PacketType.UPDATE_REQ: spans.SWITCH_FORWARD,
    PacketType.BYPASS_REQ: spans.SWITCH_FORWARD,
    PacketType.PMNET_ACK: spans.SWITCH_RETURN,
    PacketType.SERVER_ACK: spans.SWITCH_RETURN,
    PacketType.SERVER_RESP: spans.SWITCH_RETURN,
    PacketType.CACHE_RESP: spans.SWITCH_RETURN,
}


class Switch(Node):
    """Forwards every frame toward its destination after a fixed delay.

    A switch never extends inbound chains (``arrival_extension`` stays
    the base ``None``), and that answer is static — the inherited
    ``arrival_plans_static = True`` lets inbound channels cache the
    "never extends" verdict per frame kind instead of re-asking on
    every delivery.
    """

    def __init__(self, sim: "Simulator", name: str,
                 profile: "NetworkProfile") -> None:
        super().__init__(sim, name)
        self.profile = profile
        self.table = ForwardingTable()
        self.forwarded = Counter(f"{name}.forwarded")
        self._spans = spans.spans_for(sim)
        register_with_sim(sim, self)

    def instruments(self) -> tuple:
        """This switch's typed instruments (explicit registration)."""
        return (self.forwarded,)

    def handle_frame(self, frame: Frame, in_port: Port) -> None:
        if self._spans is not None:
            # Arrival executes at the same instant in the folded and
            # unfolded timelines, so this milestone is fold-neutral.
            packet = frame.payload
            stage = _SPAN_STAGES.get(getattr(packet, "packet_type", None))
            if stage is not None:
                self._spans.record(packet.request_id, stage, self.sim.now)
        out_port = self.table.lookup(frame.dst)
        channel = out_port.channel
        if channel is not None:
            if channel.send_in(self.profile.switch_forward_ns, frame,
                               self._unfold_forward):
                self.forwarded.increment()
                return
        self.sim.schedule(self.profile.switch_forward_ns,
                          self._forward, frame)

    def _unfold_forward(self, frame: Frame) -> None:
        """The reservation was revoked: roll back the fold-time
        ``forwarded`` increment and re-run the unfolded ``_forward`` at
        the slot it would have occupied (failed check included)."""
        self.forwarded.rollback(1)
        self._forward(frame)

    def _forward(self, frame: Frame) -> None:
        if self.failed:
            return
        self.forwarded.increment()
        self.table.lookup(frame.dst).transmit(frame)
