"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    pmnet-repro list                  # show every experiment id
    pmnet-repro run fig18             # regenerate one figure (quick)
    pmnet-repro run fig19 --full      # testbed-scale run (64 clients)
    pmnet-repro run all               # everything, quick sizes
    pmnet-repro run all --jobs 8      # fan sweep points across 8 cores
    pmnet-repro run all --json out.json   # machine-readable results too
    pmnet-repro bench-kernel          # events/sec -> BENCH_kernel.json
    pmnet-repro bench-experiments     # serial-vs-parallel wall clock
                                      #   -> BENCH_experiments.json
    pmnet-repro bench-pipeline        # events/request fold on vs off
                                      #   -> BENCH_pipeline.json
    pmnet-repro bench-e2e             # requests/CPU-sec per scheduler
                                      #   backend -> BENCH_e2e.json
    pmnet-repro profile               # where do the events go? (a
                                      #   per-call-site event report)
    pmnet-repro metrics --experiment fig02
                                      # span-derived per-stage latency
                                      #   breakdown (+ --json/--prometheus)
    pmnet-repro trace --experiment pmnet
                                      # dump the structured trace log
    pmnet-repro chaos --seed 7        # one seeded chaos run, verdict +
                                      #   trace digest
    pmnet-repro chaos --runs 48 --jobs 8 --json chaos.json
                                      # seed sweep; failing seeds are
                                      #   shrunk to minimal repros

``run`` executes every sweep point of every selected experiment as an
independent job (see ``repro.experiments.jobs``): points fan out over
``--jobs`` worker processes and completed points land in an on-disk
cache (``.pmnet-cache/`` by default), so re-running after editing one
experiment only re-simulates that experiment's points.  The formatted
tables are reassembled from the collected points and are byte-identical
to a serial run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from repro.experiments.registry import EXPERIMENTS, get


def _cmd_list() -> int:
    width = max(len(eid) for eid in EXPERIMENTS)
    for eid in sorted(EXPERIMENTS):
        print(f"{eid.ljust(width)}  {EXPERIMENTS[eid].description}")
    return 0


def _cmd_run(experiment_ids: List[str], quick: bool, jobs: Optional[int],
             json_path: Optional[str], use_cache: bool,
             cache_dir: Optional[str]) -> int:
    from repro.experiments.cache import ResultCache
    from repro.experiments.parallel import default_jobs, run_jobs

    if experiment_ids == ["all"]:
        experiment_ids = sorted(EXPERIMENTS)
    # Validate every id up front: a typo at position N must not cost the
    # wall-clock of positions 0..N-1 before failing.
    entries = {}
    for eid in experiment_ids:
        try:
            entries[eid] = get(eid)
        except KeyError as error:
            print(error, file=sys.stderr)
            return 2

    workers = jobs if jobs is not None else default_jobs()
    cache = ResultCache(cache_dir) if use_cache else None
    status = 0
    specs = []
    for eid in experiment_ids:
        try:
            specs.extend(entries[eid].jobs(quick=quick))
        except Exception as error:  # surface, keep going
            print(f"experiment {eid} failed: {error!r}", file=sys.stderr)
            status = 1
            entries.pop(eid)

    total = len(specs)
    done = {"count": 0}

    def progress(result) -> None:
        done["count"] += 1
        suffix = " (cached)" if result.cached else ""
        label = f"{result.spec.experiment}/{result.spec.point}"
        print(f"[job {done['count']}/{total}] {label}: "
              f"{result.elapsed_s:.2f}s{suffix}", file=sys.stderr)

    wall_started = time.time()
    results = run_jobs(specs, jobs=workers, cache=cache, progress=progress)
    wall_seconds = time.time() - wall_started

    report: Dict[str, dict] = {}
    for eid in experiment_ids:
        if eid not in entries:
            continue
        experiment = entries[eid]
        chunk = [r for r in results if r.spec.experiment == eid]
        elapsed = sum(r.elapsed_s for r in chunk)
        record = {
            "description": experiment.description,
            "seconds": round(elapsed, 3),
            "jobs": [{"point": r.spec.point,
                      "elapsed_s": round(r.elapsed_s, 3),
                      "cached": r.cached, "error": r.error}
                     for r in chunk],
        }
        print(f"=== {eid}: {experiment.description} ===")
        errors = [r for r in chunk if r.error is not None]
        if errors:
            for r in errors:
                print(f"experiment {eid} failed at {r.spec.point}: "
                      f"{r.error}", file=sys.stderr)
            status = 1
        else:
            try:
                record["output"] = experiment.assemble(chunk)
                print(record["output"])
            except Exception as error:  # surface, keep going
                print(f"experiment {eid} failed: {error!r}",
                      file=sys.stderr)
                status = 1
        print(f"--- {eid} done in {elapsed:.1f}s\n")
        report[eid] = record

    if cache is not None and (cache.hits or cache.stores):
        print(f"cache: {cache.hits} hit(s), {cache.misses} miss(es), "
              f"{cache.stores} store(s) under {cache.root}",
              file=sys.stderr)
    if json_path:
        payload = {
            "schema": "pmnet-repro-run/1",
            "quick": quick,
            "jobs": workers,
            "wall_seconds": round(wall_seconds, 3),
            "experiments": report,
        }
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {json_path}", file=sys.stderr)
    return status


def _cmd_bench_kernel(num_events: int, repeats: int,
                      shapes: Optional[List[str]],
                      output: Optional[str]) -> int:
    from repro.sim.benchmark import (SHAPES, format_result,
                                     run_kernel_benchmark, write_result)
    for shape in shapes or ():
        if shape not in SHAPES:
            print(f"unknown shape {shape!r}; choose from {' '.join(SHAPES)}",
                  file=sys.stderr)
            return 2
    try:
        result = run_kernel_benchmark(num_events=num_events, repeats=repeats,
                                      shapes=tuple(shapes) if shapes else SHAPES)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    path = write_result(result, output)
    print(format_result(result))
    print(f"wrote {path}")
    return 0


def _cmd_bench_experiments(experiment_ids: Optional[List[str]],
                           jobs: Optional[int],
                           output: Optional[str]) -> int:
    from repro.experiments.benchmark import (ExperimentError, format_result,
                                             run_experiment_benchmark,
                                             write_result)
    if experiment_ids:
        for eid in experiment_ids:
            try:
                get(eid)
            except KeyError as error:
                print(error, file=sys.stderr)
                return 2
    try:
        result = run_experiment_benchmark(experiment_ids=experiment_ids,
                                          jobs=jobs)
    except ExperimentError as error:
        print(error, file=sys.stderr)
        return 1
    path = write_result(result, output)
    print(format_result(result))
    print(f"wrote {path}")
    return 0


def _cmd_bench_pipeline(clients: int, requests: int,
                        output: Optional[str]) -> int:
    from repro.experiments.pipeline_bench import (format_result,
                                                  run_pipeline_benchmark,
                                                  write_result)
    try:
        result = run_pipeline_benchmark(clients=clients,
                                        requests_per_client=requests)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    path = write_result(result, output)
    print(format_result(result))
    print(f"wrote {path}")
    return 0 if result["latencies_identical"] else 1


def _cmd_bench_e2e(repeats: int, seed: int,
                   chaos_seeds: Optional[List[int]],
                   output: Optional[str]) -> int:
    from repro.experiments.e2e_bench import (CHAOS_SEEDS, BackendDivergence,
                                             format_result,
                                             run_e2e_benchmark, write_result)
    try:
        result = run_e2e_benchmark(
            repeats=repeats, seed=seed,
            chaos_seeds=tuple(chaos_seeds) if chaos_seeds else CHAOS_SEEDS)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    except BackendDivergence as error:
        print(f"backend divergence: {error}", file=sys.stderr)
        return 1
    path = write_result(result, output)
    print(format_result(result))
    print(f"wrote {path}")
    return 0


def _cmd_metrics(scenario_id: str, json_path: Optional[str],
                 prometheus_path: Optional[str],
                 seed: Optional[int]) -> int:
    from repro.errors import ExperimentError
    from repro.experiments.instrumented import (SCENARIOS, format_breakdown,
                                                metrics_report,
                                                run_instrumented)
    from repro.obs.export import to_prometheus, validate_metrics
    if scenario_id not in SCENARIOS:
        print(f"unknown scenario {scenario_id!r}; choose from "
              f"{sorted(SCENARIOS)}", file=sys.stderr)
        return 2
    try:
        run = run_instrumented(scenario_id, seed=seed)
        payload = metrics_report(run)
    except ExperimentError as error:
        print(error, file=sys.stderr)
        return 1
    problems = validate_metrics(payload)
    if problems:
        for problem in problems:
            print(f"invalid metrics payload: {problem}", file=sys.stderr)
        return 1
    print(format_breakdown(payload))
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {json_path}", file=sys.stderr)
    if prometheus_path:
        with open(prometheus_path, "w", encoding="utf-8") as handle:
            handle.write(to_prometheus(payload["instruments"]))
        print(f"wrote {prometheus_path}", file=sys.stderr)
    return 0


def _cmd_trace(scenario_id: str, limit: int, component: Optional[str],
               event: Optional[str], seed: Optional[int]) -> int:
    from repro.errors import ExperimentError
    from repro.experiments.instrumented import SCENARIOS, run_instrumented
    if scenario_id not in SCENARIOS:
        print(f"unknown scenario {scenario_id!r}; choose from "
              f"{sorted(SCENARIOS)}", file=sys.stderr)
        return 2
    try:
        run = run_instrumented(scenario_id, trace=True, seed=seed)
    except ExperimentError as error:
        print(error, file=sys.stderr)
        return 1
    tracer = run.obs.tracer
    records = list(tracer.filter(component=component, event=event))
    shown = records[:limit] if limit else records
    for record in shown:
        print(record)
    summary = (f"{len(shown)} of {len(records)} matching record(s), "
               f"{len(tracer.records)} total")
    if tracer.dropped:
        summary += f", {tracer.dropped} dropped"
    print(summary, file=sys.stderr)
    return 0


def _cmd_profile(clients: int, requests: int, fold: str, top: int,
                 json_path: Optional[str] = None) -> int:
    from repro.experiments.pipeline_bench import _run_mode
    from repro.sim.profiler import EventProfiler  # noqa: F401 (re-export)
    try:
        run = _run_mode(fold, clients, requests, seed=0)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    mode = f"fold level {fold!r}"
    print(f"event profile — {mode}, {clients} clients x {requests} requests")
    total = max(1, run["executed_events"])
    sites = sorted(run["top_call_sites"].items(), key=lambda kv: -kv[1])
    print(f"{'events':>10}  {'share':>6}  {'per req':>8}  call site")
    for site, count in sites[:top]:
        print(f"{count:>10}  {count / total:>6.1%}  "
              f"{count / run['requests']:>8.2f}  {site}")
    print(f"{run['executed_events']:>10}  {'100%':>6}  "
          f"{run['events_per_request']:>8.2f}  TOTAL")
    kernel_stats = run.get("kernel_stats")
    if kernel_stats:
        from repro.sim.profiler import format_kernel_stats
        print(format_kernel_stats(kernel_stats))
    if json_path is not None:
        from repro.obs.export import write_bench_report
        payload = {key: value for key, value in run.items()
                   if key != "latency_samples"}
        payload["benchmark"] = "event_profile"
        payload["clients"] = clients
        payload["requests_per_client"] = requests
        written = write_bench_report("profile", payload, json_path,
                                     quick=True)
        print(f"wrote {written}", file=sys.stderr)
    return 0


def _cmd_rebalance(quick: bool, json_path: Optional[str]) -> int:
    """Run the rebalance experiment and check its acceptance envelope."""
    from repro.experiments import rebalance

    result = rebalance.run(quick=quick)
    print(result.format())
    status = 0
    steady_p99 = result.steady_p99_us()
    drain = result.points.get("drain-rack")
    if drain is not None and steady_p99 > 0:
        drained = drain.get("drained") or {}
        untouched = float(drain["untouched_p99_us"])
        within = untouched <= 1.10 * steady_p99
        print(f"drain-rack: untouched p99 {untouched:.2f}us vs steady "
              f"{steady_p99:.2f}us — {'within' if within else 'OUTSIDE'} "
              "the 10% envelope; drained rack "
              f"{'reached zero' if drained.get('drained_ok') else 'STILL HOLDS'}"
              " in-flight work and ring members")
        if not within or not drained.get("drained_ok"):
            status = 1
    if json_path:
        from repro.obs.export import write_bench_report
        payload = {"benchmark": "rebalance", "points": result.points,
                   "steady_p99_us": steady_p99}
        written = write_bench_report("rebalance", payload, json_path,
                                     quick=quick)
        print(f"wrote {written}", file=sys.stderr)
    return status


def _cmd_chaos(start_seed: int, runs: int, jobs: Optional[int],
               json_path: Optional[str], faults_arg: Optional[str],
               shrink_on_failure: bool, corpus_path: Optional[str],
               fabric: bool = False, control: bool = False) -> int:
    from repro.experiments.parallel import default_jobs, run_jobs
    from repro.failure import chaos

    if faults_arg is not None and runs != 1:
        print("--faults replays one schedule; use it with --runs 1",
              file=sys.stderr)
        return 2
    if fabric and control:
        print("--fabric and --control are separate plan families; "
              "pick one", file=sys.stderr)
        return 2

    generate = (chaos.generate_control_plan if control
                else chaos.generate_fabric_plan if fabric
                else chaos.generate_plan)
    values: List[dict]
    if runs == 1 and faults_arg is not None:
        plan = generate(start_seed)
        try:
            indices = chaos.parse_fault_selector(faults_arg,
                                                 len(plan.faults))
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
        values = [chaos.run_plan(plan, indices).to_dict()]
    else:
        specs = chaos.jobs(quick=True, start_seed=start_seed, runs=runs,
                           fabric=fabric, control=control)
        workers = jobs if jobs is not None else default_jobs()

        def progress(result) -> None:
            print(f"[{result.spec.point}] "
                  f"{result.elapsed_s:.2f}s", file=sys.stderr)

        results = run_jobs(specs, jobs=workers, cache=None,
                           progress=progress if runs > 1 else None)
        errored = [r for r in results if r.error is not None]
        for result in errored:
            print(f"chaos {result.spec.point} crashed: {result.error}",
                  file=sys.stderr)
        if errored:
            return 1
        if runs > 1:
            print(chaos.assemble(results))
        values = sorted((r.value for r in results),
                        key=lambda v: v["seed"])

    status = 0
    repros: Dict[int, str] = {}
    for value in values:
        if runs == 1:
            print(value["plan"])
            print(f"verdict: {'clean' if value['ok'] else 'FAIL'} — "
                  f"{value['completions']} completion(s), "
                  f"{value['trace_events']} trace event(s), "
                  f"digest {value['trace_digest']}")
        if value["ok"]:
            continue
        status = 1
        for violation in value["violations"]:
            print(f"seed {value['seed']}: {violation}")
        if shrink_on_failure:
            minimal = chaos.shrink(generate(value["seed"]))
            line = chaos.repro_line(minimal)
            repros[value["seed"]] = line
            print(f"seed {value['seed']}: minimal repro: {line}")
        if corpus_path:
            try:
                if chaos.append_to_corpus(corpus_path, value["seed"],
                                          note=value["violations"][0][:70]):
                    print(f"seed {value['seed']} appended to {corpus_path}",
                          file=sys.stderr)
            except OSError as error:
                print(f"could not update corpus {corpus_path}: {error}",
                      file=sys.stderr)

    if json_path:
        from repro.obs.export import write_bench_report
        payload = {
            "benchmark": "chaos",
            "start_seed": start_seed,
            "runs": runs,
            "fabric": fabric,
            "control": control,
            "clean": sum(1 for v in values if v["ok"]),
            "failing_seeds": [v["seed"] for v in values if not v["ok"]],
            "repros": {str(seed): line for seed, line in repros.items()},
            "results": values,
        }
        written = write_bench_report("chaos", payload, json_path,
                                     quick=True)
        print(f"wrote {written}", file=sys.stderr)
    return status


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="pmnet-repro",
        description="PMNet (ISCA 2021) reproduction harness")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_parser = sub.add_parser("run", help="run experiments by id")
    run_parser.add_argument("experiments", nargs="+",
                            help="experiment ids (or 'all')")
    run_parser.add_argument("--full", action="store_true",
                            help="testbed-scale sizes (64 clients; slow)")
    run_parser.add_argument("--jobs", type=int, default=None, metavar="N",
                            help="worker processes for sweep points "
                                 "(default: all cores; 1 = serial)")
    run_parser.add_argument("--json", default=None, metavar="PATH",
                            dest="json_path",
                            help="also write results as JSON to PATH")
    run_parser.add_argument("--no-cache", action="store_true",
                            help="skip the on-disk result cache")
    run_parser.add_argument("--cache-dir", default=None, metavar="DIR",
                            help="result cache root (default .pmnet-cache, "
                                 "or $PMNET_CACHE_DIR)")
    bench_parser = sub.add_parser(
        "bench-kernel",
        help="measure simulator events/sec per queue shape and scheduler "
             "backend, write BENCH_kernel.json")
    bench_parser.add_argument("--events", type=int, default=100_000,
                              help="events per run (default 100000: long "
                                   "enough to swamp clock granularity, "
                                   "short enough to fit one machine-speed "
                                   "phase)")
    bench_parser.add_argument("--repeats", type=int, default=5,
                              help="adjacent heap/tiered pairs per shape "
                                   "(default 5)")
    bench_parser.add_argument("--shapes", nargs="+", default=None,
                              metavar="SHAPE",
                              help="queue shapes to measure (default: "
                                   "mixed same_instant cancel_heavy)")
    bench_parser.add_argument("--json", "--output", default=None,
                              dest="output", metavar="PATH",
                              help="report path (default BENCH_kernel.json)")
    bench_exp = sub.add_parser(
        "bench-experiments",
        help="time serial vs parallel experiment sweeps, write "
             "BENCH_experiments.json")
    bench_exp.add_argument("--experiments", nargs="+", default=None,
                           metavar="ID",
                           help="experiment ids to benchmark (default: a "
                                "representative subset)")
    bench_exp.add_argument("--jobs", type=int, default=None, metavar="N",
                           help="worker processes for the parallel pass "
                                "(default: all cores)")
    bench_exp.add_argument("--json", "--output", default=None,
                           dest="output", metavar="PATH",
                           help="report path "
                                "(default BENCH_experiments.json)")
    bench_pipe = sub.add_parser(
        "bench-pipeline",
        help="measure events/request with folding on vs off, write "
             "BENCH_pipeline.json")
    bench_pipe.add_argument("--clients", type=int, default=32,
                            help="closed-loop clients (default 32)")
    bench_pipe.add_argument("--requests", type=int, default=20,
                            help="requests per client (default 20)")
    bench_pipe.add_argument("--json", "--output", default=None,
                            dest="output", metavar="PATH",
                            help="report path (default BENCH_pipeline.json)")
    bench_e2e = sub.add_parser(
        "bench-e2e",
        help="measure end-to-end requests/CPU-second on every scheduler "
             "backend (loadgen + chaos legs, digests must match), write "
             "BENCH_e2e.json")
    bench_e2e.add_argument("--repeats", type=int, default=3,
                           help="adjacent heap/tiered/compiled groups "
                                "(default 3)")
    bench_e2e.add_argument("--seed", type=int, default=42,
                           help="loadgen deployment seed (default 42)")
    bench_e2e.add_argument("--chaos-seeds", nargs="+", type=int,
                           default=None, metavar="SEED",
                           help="chaos plan seeds per group (default 1 2)")
    bench_e2e.add_argument("--json", "--output", default=None,
                           dest="output", metavar="PATH",
                           help="report path (default BENCH_e2e.json)")
    profile_parser = sub.add_parser(
        "profile",
        help="attribute executed events to call sites on the stress "
             "workload")
    profile_parser.add_argument("--clients", type=int, default=32,
                                help="closed-loop clients (default 32)")
    profile_parser.add_argument("--requests", type=int, default=20,
                                help="requests per client (default 20)")
    profile_parser.add_argument("--no-fold", action="store_true",
                                help="profile the unfolded paths instead "
                                     "(same as --fold none)")
    profile_parser.add_argument("--fold", default=None,
                                choices=("none", "stage", "whole"),
                                help="fold level to profile "
                                     "(default: whole)")
    profile_parser.add_argument("--top", type=int, default=15,
                                help="call sites to show (default 15)")
    profile_parser.add_argument("--json", "--output", default=None,
                                dest="output", metavar="PATH",
                                help="also write the enveloped profile "
                                     "report as JSON to PATH")
    metrics_parser = sub.add_parser(
        "metrics",
        help="run an instrumented scenario and print the span-derived "
             "per-stage latency breakdown")
    metrics_parser.add_argument("--experiment", default="fig02",
                                metavar="ID", dest="scenario",
                                help="scenario id (default fig02; see "
                                     "docs/observability.md)")
    metrics_parser.add_argument("--json", default=None, metavar="PATH",
                                dest="json_path",
                                help="write the pmnet-repro-metrics/1 "
                                     "payload to PATH")
    metrics_parser.add_argument("--prometheus", default=None, metavar="PATH",
                                help="write Prometheus text format to PATH")
    metrics_parser.add_argument("--seed", type=int, default=None,
                                help="override the scenario seed")
    trace_parser = sub.add_parser(
        "trace",
        help="run an instrumented scenario with tracing on and dump the "
             "structured trace log")
    trace_parser.add_argument("--experiment", default="fig02",
                              metavar="ID", dest="scenario",
                              help="scenario id (default fig02)")
    trace_parser.add_argument("--limit", type=int, default=100,
                              help="records to print (default 100; 0 = all)")
    trace_parser.add_argument("--component", default=None,
                              help="only records from this component")
    trace_parser.add_argument("--event", default=None,
                              help="only records with this event name")
    trace_parser.add_argument("--seed", type=int, default=None,
                              help="override the scenario seed")
    rebalance_parser = sub.add_parser(
        "rebalance",
        help="tail latency under live session migration: steady baseline "
             "vs drain-rack / failover / hot-shard, with the 10% "
             "untouched-shard envelope check")
    rebalance_parser.add_argument("--full", action="store_true",
                                  help="full-scale run (10^5 users)")
    rebalance_parser.add_argument("--json", default=None, metavar="PATH",
                                  dest="json_path",
                                  help="write the pmnet-repro-bench/1 "
                                       "report to PATH")
    chaos_parser = sub.add_parser(
        "chaos",
        help="seeded chaos sweep: random deployments + fault schedules "
             "checked against R1-R6 and the durability oracle")
    chaos_parser.add_argument("--seed", type=int, default=0,
                              help="first chaos seed (default 0)")
    chaos_parser.add_argument("--runs", type=int, default=1,
                              help="consecutive seeds to run (default 1)")
    chaos_parser.add_argument("--jobs", type=int, default=None, metavar="N",
                              help="worker processes for the sweep "
                                   "(default: all cores; 1 = serial)")
    chaos_parser.add_argument("--json", default=None, metavar="PATH",
                              dest="json_path",
                              help="write the pmnet-repro-bench/1 report "
                                   "to PATH")
    chaos_parser.add_argument("--faults", default=None, metavar="SELECTOR",
                              help="replay a subset of the fault schedule: "
                                   "'all', 'none', or comma-separated "
                                   "indices (requires --runs 1)")
    chaos_parser.add_argument("--fabric", action="store_true",
                              help="sweep multi-rack fabric plans "
                              "(rack outages, spine-uplink impairments, "
                              "cross-rack chain-member loss)")
    chaos_parser.add_argument("--control", action="store_true",
                              help="sweep control-plane plans (live "
                              "session migration overlapping outages, "
                              "replay, and flapping membership)")
    chaos_parser.add_argument("--no-shrink", action="store_true",
                              help="report failures without bisecting the "
                                   "fault schedule to a minimal repro")
    chaos_parser.add_argument("--corpus", default="tests/failure/"
                              "chaos_corpus.txt", metavar="PATH",
                              help="regression corpus failing seeds are "
                                   "appended to ('' disables)")
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "bench-kernel":
        return _cmd_bench_kernel(args.events, args.repeats, args.shapes,
                                 args.output)
    if args.command == "bench-experiments":
        return _cmd_bench_experiments(args.experiments, args.jobs,
                                      args.output)
    if args.command == "bench-pipeline":
        return _cmd_bench_pipeline(args.clients, args.requests, args.output)
    if args.command == "bench-e2e":
        return _cmd_bench_e2e(args.repeats, args.seed, args.chaos_seeds,
                              args.output)
    if args.command == "profile":
        fold = args.fold or ("none" if args.no_fold else "whole")
        return _cmd_profile(args.clients, args.requests, fold,
                            args.top, args.output)
    if args.command == "metrics":
        return _cmd_metrics(args.scenario, args.json_path, args.prometheus,
                            args.seed)
    if args.command == "trace":
        return _cmd_trace(args.scenario, args.limit, args.component,
                          args.event, args.seed)
    if args.command == "chaos":
        corpus = args.corpus
        if args.fabric and corpus == "tests/failure/chaos_corpus.txt":
            corpus = "tests/failure/chaos_fabric_corpus.txt"
        if args.control and corpus == "tests/failure/chaos_corpus.txt":
            corpus = "tests/failure/chaos_control_corpus.txt"
        return _cmd_chaos(args.seed, args.runs, args.jobs, args.json_path,
                          args.faults, not args.no_shrink,
                          corpus or None, fabric=args.fabric,
                          control=args.control)
    if args.command == "rebalance":
        return _cmd_rebalance(quick=not args.full, json_path=args.json_path)
    return _cmd_run(args.experiments, quick=not args.full, jobs=args.jobs,
                    json_path=args.json_path, use_cache=not args.no_cache,
                    cache_dir=args.cache_dir)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
