"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    pmnet-repro list                  # show every experiment id
    pmnet-repro run fig18             # regenerate one figure (quick)
    pmnet-repro run fig19 --full      # testbed-scale run (64 clients)
    pmnet-repro run all               # everything, quick sizes
    pmnet-repro bench-kernel          # events/sec -> BENCH_kernel.json
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.registry import EXPERIMENTS, get


def _cmd_list() -> int:
    width = max(len(eid) for eid in EXPERIMENTS)
    for eid in sorted(EXPERIMENTS):
        print(f"{eid.ljust(width)}  {EXPERIMENTS[eid].description}")
    return 0


def _cmd_run(experiment_ids: List[str], quick: bool) -> int:
    if experiment_ids == ["all"]:
        experiment_ids = sorted(EXPERIMENTS)
    status = 0
    for eid in experiment_ids:
        try:
            experiment = get(eid)
        except KeyError as error:
            print(error, file=sys.stderr)
            return 2
        started = time.time()
        print(f"=== {eid}: {experiment.description} ===")
        try:
            print(experiment.run(quick=quick))
        except Exception as error:  # surface, keep going
            print(f"experiment {eid} failed: {error!r}", file=sys.stderr)
            status = 1
        print(f"--- {eid} done in {time.time() - started:.1f}s\n")
    return status


def _cmd_bench_kernel(num_events: int, repeats: int,
                      output: Optional[str]) -> int:
    from repro.sim.benchmark import (format_result, run_kernel_benchmark,
                                     write_result)
    try:
        result = run_kernel_benchmark(num_events=num_events, repeats=repeats)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    path = write_result(result, output)
    print(format_result(result))
    print(f"wrote {path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="pmnet-repro",
        description="PMNet (ISCA 2021) reproduction harness")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_parser = sub.add_parser("run", help="run experiments by id")
    run_parser.add_argument("experiments", nargs="+",
                            help="experiment ids (or 'all')")
    run_parser.add_argument("--full", action="store_true",
                            help="testbed-scale sizes (64 clients; slow)")
    bench_parser = sub.add_parser(
        "bench-kernel",
        help="measure raw simulator events/sec, write BENCH_kernel.json")
    bench_parser.add_argument("--events", type=int, default=300_000,
                              help="events per run (default 300000)")
    bench_parser.add_argument("--repeats", type=int, default=3,
                              help="runs to take the best of (default 3)")
    bench_parser.add_argument("--output", default=None,
                              help="result path (default BENCH_kernel.json)")
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "bench-kernel":
        return _cmd_bench_kernel(args.events, args.repeats, args.output)
    return _cmd_run(args.experiments, quick=not args.full)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
