"""A host machine on the fabric: one NIC port, a stack, one endpoint.

The :class:`HostNode` is the glue between the network substrate and the
application libraries: inbound frames are charged the stack's receive
cost and handed to the bound endpoint; outbound packets are charged the
send cost and transmitted from the single NIC port.  Failing a host
silences it (frames black-hole) until recovery.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Protocol

from repro.errors import NetworkError
from repro.net.device import Node, Port
from repro.net.packet import Frame
from repro.obs.registry import register_with_sim
from repro.sim.monitor import Counter

if TYPE_CHECKING:  # pragma: no cover
    from repro.host.stackmodel import HostStack
    from repro.sim.kernel import Simulator


class Endpoint(Protocol):
    """What a host delivers inbound frames to."""

    def on_frame(self, frame: Frame) -> None:  # pragma: no cover - protocol
        ...


class _ExpressClaim:
    """One pre-drawn receive cost riding an extended arrival chain.

    Created by :meth:`HostNode.arrival_extension`: the host snapshots
    its stack jitter stream, draws the receive cost at reservation time
    instead of wire-arrival time, and hands the cost to the channel as
    an extra chain hop.  The pre-draw is only stream-order-safe while no
    other draw intervenes, so every competing draw site on the host
    (:meth:`HostNode.handle_frame`, :meth:`HostNode.send_frame`,
    :meth:`HostNode.dispatch_cost`) revokes a still-deferred claim
    first, rewinding the stream via the snapshot; once the chain has
    re-sequenced past the wire-arrival slot (``defer_ns`` falsy) the
    draw is committed in correct order and later draws leave it alone.
    The channel releases the claim itself whenever it rewrites the
    record in place (queue conversion, competing send, sender failure).
    """

    __slots__ = ("host", "frame", "epoch", "rng_state", "call", "channel")

    def __init__(self, host: "HostNode", frame: Frame, epoch: int,
                 rng_state) -> None:
        self.host = host
        self.frame = frame
        self.epoch = epoch
        self.rng_state = rng_state
        self.call = None
        self.channel = None

    def attach(self, call, channel) -> None:
        """Called by :meth:`Channel.send_in` once the chain exists."""
        self.call = call
        self.channel = channel

    def release(self) -> None:
        """Channel-side revocation: the record is being rewritten anyway,
        so only the host-side state (claim slot, RNG position) rewinds."""
        host = self.host
        if host._claim is self:
            host._claim = None
        host.stack.restore_jitter_state(self.rng_state)


class HostNode(Node):
    """One machine: NIC + stack + the application endpoint."""

    #: Host extensions pre-draw stack jitter and hold a claim slot per
    #: frame, so channels must query :meth:`arrival_extension` on every
    #: delivery — never cache the plan (see ``Node.arrival_plans_static``).
    arrival_plans_static = False

    def __init__(self, sim: "Simulator", name: str, stack: "HostStack") -> None:
        super().__init__(sim, name)
        self.stack = stack
        self.endpoint: Optional[Endpoint] = None
        self.frames_received = Counter(f"{name}.rx")
        self.frames_sent = Counter(f"{name}.tx")
        #: Generation counter: bumped on every failure so that callbacks
        #: scheduled before a crash do not leak into the recovered life.
        self.epoch = 0
        #: Opt-in: fold the stack send cost into the NIC channel via a
        #: reservation (see :meth:`Channel.send_in`).  A folded send
        #: commits at reservation time; ``Node.fail`` revokes unstarted
        #: reservations so a crash inside the send window still drops
        #: the frame (via :meth:`_unfold_outbound`'s fire-time check).
        #: The remaining unguarded gap is a crash *and* recovery both
        #: landing inside one stack-send window (microseconds, vs the
        #: millisecond outages the failure experiments inject) — so
        #: this stays an opt-in for hosts that never crash mid-run:
        #: client endpoints enable it, server hosts stay unfolded.
        self.fold_outbound = False
        #: Opt-in (client endpoints under whole-request folding): allow
        #: inbound wire chains to extend through this host's stack
        #: receive cost via a pre-drawn :class:`_ExpressClaim`.
        self.express_inbound = False
        #: The single outstanding claim (one at a time keeps the
        #: stream-order argument trivial); ``None`` when free.
        self._claim: Optional[_ExpressClaim] = None
        register_with_sim(sim, self)

    def instruments(self) -> tuple:
        """This host's typed instruments (explicit registration)."""
        return (self.frames_received, self.frames_sent)

    # ------------------------------------------------------------------
    def bind(self, endpoint: Endpoint) -> None:
        if self.endpoint is not None:
            raise NetworkError(f"host {self.name} already has an endpoint")
        self.endpoint = endpoint

    @property
    def nic_port(self) -> Port:
        if not self.ports:
            raise NetworkError(f"host {self.name} is not connected")
        return self.ports[0]

    # ------------------------------------------------------------------
    # Inbound: link -> stack -> endpoint
    # ------------------------------------------------------------------
    def handle_frame(self, frame: Frame, in_port: Port) -> None:
        if self._claim is not None:
            self._revoke_claim()
        cost = self.stack.recv_cost(frame.payload_bytes)
        epoch = self.epoch
        self.sim.schedule(cost, self._deliver, frame, epoch)

    def _deliver(self, frame: Frame, epoch: int) -> None:
        if self.failed or epoch != self.epoch:
            return  # the packet died in the stack when the host crashed
        self.frames_received.increment()
        if self.endpoint is not None:
            self.endpoint.on_frame(frame)

    # ------------------------------------------------------------------
    # Whole-request folding: express arrival claims
    # ------------------------------------------------------------------
    def arrival_extension(self, frame: Frame):
        """Extend an inbound chain through the stack receive cost.

        Only for opted-in hosts (client endpoints), one claim at a time,
        and never while failed: the receive jitter is pre-drawn under a
        revocable claim and the chain ends in :meth:`_express_deliver`
        at exactly the instant the unfolded ``_deliver`` would run.
        """
        if (not self.express_inbound or self.failed
                or self._claim is not None or self.endpoint is None):
            return None
        state = self.stack.jitter_state()
        cost = self.stack.recv_cost(frame.payload_bytes)
        claim = _ExpressClaim(self, frame, self.epoch, state)
        self._claim = claim
        return ((cost,), self._express_deliver, (frame, claim), claim)

    def _express_deliver(self, frame: Frame, claim: _ExpressClaim) -> None:
        """Barrier of an express arrival: the unfolded ``_deliver``
        semantics (liveness check, counters, endpoint dispatch) at the
        same virtual instant and heap slot."""
        if self._claim is claim:
            self._claim = None
        if self.failed or claim.epoch != self.epoch:
            return
        frame.hops += 1  # the Node.receive bookkeeping the chain subsumed
        self.frames_received.increment()
        if self.endpoint is not None:
            self.endpoint.on_frame(frame)

    def _revoke_claim(self) -> None:
        """A competing draw (or arrival) needs the jitter stream: rewind
        a still-deferred claim and strip its chain hop.  A claim whose
        chain already re-sequenced past the wire-arrival slot committed
        its draw in correct stream order — it stays."""
        claim = self._claim
        if claim.call is not None and claim.call.defer_ns:
            self._claim = None
            self.stack.restore_jitter_state(claim.rng_state)
            claim.channel.strip_extension(claim.call, claim.frame)

    def dispatch_cost(self) -> int:
        """The stack dispatch cost, claim-safely: endpoint completion
        paths must draw through here so an outstanding express claim is
        revoked before the jitter stream advances."""
        if self._claim is not None:
            self._revoke_claim()
        return self.stack.dispatch_cost()

    # ------------------------------------------------------------------
    # Outbound: endpoint -> stack -> NIC
    # ------------------------------------------------------------------
    def send_frame(self, dst: str, payload: Any, payload_bytes: int,
                   udp_port: int) -> None:
        """Send one application packet; charges the stack send cost."""
        if self.failed:
            return
        if self._claim is not None:
            self._revoke_claim()
        frame = Frame(src=self.name, dst=dst, payload=payload,
                      payload_bytes=payload_bytes, udp_port=udp_port)
        # The jitter draw happens here in both modes, so the stack RNG
        # stream advances at identical instants with folding on or off.
        cost = self.stack.send_cost(payload_bytes)
        if self.fold_outbound and self.ports:
            channel = self.ports[0].channel
            if channel is not None and channel.send_in(cost, frame,
                                                       self._unfold_outbound):
                self.frames_sent.increment()
                return
        epoch = self.epoch
        self.sim.schedule(cost, self._transmit, frame, epoch)

    def _unfold_outbound(self, frame: Frame) -> None:
        """The NIC reservation was revoked: roll back the fold-time
        ``frames_sent`` increment and re-run the unfolded ``_transmit``
        at its slot.  The current epoch stands in for the fold-time one
        — equivalent unless the host crashed *and* recovered inside the
        send window, which :attr:`fold_outbound`'s contract excludes."""
        self.frames_sent.rollback(1)
        self._transmit(frame, self.epoch)

    def _transmit(self, frame: Frame, epoch: int) -> None:
        if self.failed or epoch != self.epoch:
            return
        self.frames_sent.increment()
        self.nic_port.transmit(frame)

    # ------------------------------------------------------------------
    def fail(self) -> None:
        super().fail()
        self.epoch += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "FAILED" if self.failed else "up"
        return f"<HostNode {self.name} {state}>"
