"""An asynchronous (windowed) client — the road not taken.

The paper's motivation (Sec II-A): asynchronous RPCs hide the RTT but
are hard to program against; synchronous RPCs are what people actually
write, so PMNet attacks the RTT instead.  To make that argument
measurable, this module provides the asynchronous alternative: a client
that keeps up to ``window`` requests outstanding and completes them
out of band.

The motivation experiment then shows the paper's pitch quantitatively:
*synchronous-over-PMNet reaches the throughput of asynchronous-over-
baseline* — you get the easy programming model and keep the speed.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional

from repro.core.replication import ReplicationPolicy, SINGLE_LOG
from repro.host.client import PMNetClient
from repro.host.node import HostNode
from repro.protocol.session import SessionAllocator
from repro.sim.event import SimEvent
from repro.sim.monitor import Counter, LatencyRecorder, ThroughputMeter
from repro.sim.trace import Tracer
from repro.workloads.kv import Operation

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import SystemConfig
    from repro.sim.kernel import Simulator


class AsyncPMNetClient(PMNetClient):
    """A client with a bounded window of in-flight requests.

    ``submit`` enqueues an operation and returns immediately unless the
    window is full, in which case it returns an event to wait on (back
    pressure).  ``drain`` returns an event that fires when everything
    submitted has completed.
    """

    def __init__(self, sim: "Simulator", host: HostNode,
                 config: "SystemConfig", server: str,
                 allocator: SessionAllocator,
                 policy: ReplicationPolicy = SINGLE_LOG,
                 window: int = 16,
                 tracer: Optional[Tracer] = None) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        super().__init__(sim, host, config, server, allocator,
                         policy=policy, tracer=tracer)
        self.window = window
        self._in_flight = 0
        self._backlog: Deque[tuple] = deque()
        self._window_waiters: Deque[SimEvent] = deque()
        self._drain_waiters: list[SimEvent] = []
        self.async_completions = Counter(f"{host.name}.async_completions")
        self.latencies = LatencyRecorder(f"{host.name}.async_latency")
        self.throughput = ThroughputMeter(f"{host.name}.async_throughput")

    # ------------------------------------------------------------------
    def submit(self, op: Operation,
               payload_bytes: Optional[int] = None) -> Optional[SimEvent]:
        """Fire-and-track one operation.

        Returns ``None`` when the request was issued (or buffered) with
        window room to spare, or a back-pressure event to ``yield`` on
        when the window is full.
        """
        self._backlog.append((op, payload_bytes, self.sim.now))
        self._pump()
        if self._in_flight + len(self._backlog) <= self.window:
            return None
        gate = self.sim.event("window")
        self._window_waiters.append(gate)
        return gate

    def drain(self) -> SimEvent:
        """An event that fires once all submitted work has completed."""
        done = self.sim.event("drain")
        if self._in_flight == 0 and not self._backlog:
            done.succeed()
        else:
            self._drain_waiters.append(done)
        return done

    # ------------------------------------------------------------------
    def _pump(self) -> None:
        while self._backlog and self._in_flight < self.window:
            op, payload_bytes, submitted_at = self._backlog.popleft()
            self._in_flight += 1
            if op.is_update:
                completion = self.send_update(op, payload_bytes)
            else:
                completion = self.bypass(op, payload_bytes)
            completion.add_callback(self._on_done, submitted_at)

    def _on_done(self, event: SimEvent, submitted_at: int) -> None:
        self._in_flight -= 1
        self.async_completions.increment()
        self.latencies.record(self.sim.now - submitted_at)
        self.throughput.record(self.sim.now)
        self._pump()
        while (self._window_waiters
               and self._in_flight + len(self._backlog) <= self.window):
            gate = self._window_waiters.popleft()
            if not gate.triggered:
                gate.succeed()
        if self._in_flight == 0 and not self._backlog:
            waiters, self._drain_waiters = self._drain_waiters, []
            for waiter in waiters:
                if not waiter.triggered:
                    waiter.succeed()
