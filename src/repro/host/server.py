"""The server-side PMNet library and application (Table I: server side).

:class:`PMNetServer` implements ``PMNet_recv``/``PMNet_ack`` semantics:

* restores per-session ordering with a reorder buffer and requests
  retransmissions for persistent gaps (Fig 7);
* reassembles MTU-fragmented requests;
* dispatches complete requests to a pool of worker processes (the
  Table II server has 20 cores) which run the workload handler;
* sends a ``server-ACK`` per update fragment (invalidating PMNet logs on
  the way to the client) and a ``SERVER_RESP`` for reads;
* persists the per-session applied SeqNum with each operation so that a
  crash can be recovered exactly once, and drives the recovery poll of
  Sec IV-E1 after a restart.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional

from repro.config import whole_request_folding_enabled
from repro.host.handler import HandlerOutcome, LockTable, RequestHandler
from repro.host.node import HostNode
from repro.net.packet import Frame, RawPayload
from repro.protocol.fragment import Reassembler
from repro.protocol.header import PMNetHeader
from repro.protocol.ordering import ReorderBuffer
from repro.protocol.packet import (
    PMNetPacket,
    RecoveryPoll,
    RetransRequest,
    next_request_id,
)
from repro.protocol.types import PacketType, is_update
from repro.obs import spans
from repro.obs.registry import register_with_sim
from repro.sim.clock import microseconds
from repro.sim.event import SimEvent
from repro.sim.monitor import Counter
from repro.sim.process import Interrupted, Process
from repro.sim.trace import Tracer
from repro.workloads.kv import OpKind, Operation, Result, estimate_result_bytes

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import SystemConfig
    from repro.sim.kernel import Simulator

#: How long a sequence gap may persist before the server asks for
#: retransmission (a handful of one-way delays).
DEFAULT_GAP_TIMEOUT_NS = microseconds(40)

#: Cost of a lock-table operation on the server (in-memory, tiny).
LOCK_OP_COST_NS = microseconds(1.0)


class PMNetServer:
    """The server application endpoint."""

    def __init__(self, sim: "Simulator", host: HostNode,
                 handler: RequestHandler, config: "SystemConfig",
                 gap_timeout_ns: int = DEFAULT_GAP_TIMEOUT_NS,
                 tracer: Optional[Tracer] = None) -> None:
        self.sim = sim
        self.host = host
        self.handler = handler
        self.config = config
        self.gap_timeout_ns = gap_timeout_ns
        self.tracer = tracer if tracer is not None else sim.tracer
        self._spans = spans.spans_for(sim)
        host.bind(self)
        self.reorder = ReorderBuffer()
        self.reassembler = Reassembler()
        self.locks = LockTable()
        self._ready: Deque[List[PMNetPacket]] = deque()
        self._idle_workers: List[SimEvent] = []
        self._workers: List[Process] = []
        self._gap_timers: Dict[int, object] = {}
        self._dispatch_horizon: Dict[int, int] = {}
        #: SessionID -> next SeqNum to apply; lives in PM, updated
        #: atomically with each applied operation (survives crashes).
        self.persistent_applied: Dict[int, int] = {}
        self.processed = Counter(f"{host.name}.processed")
        self.makeup_acks = Counter(f"{host.name}.makeup_acks")
        self.retrans_sent = Counter(f"{host.name}.retrans_sent")
        #: Succeeds when a recovery finishes draining the PMNet logs; a
        #: fresh event is installed by :meth:`recover`.
        self.recovered_event: Optional[SimEvent] = None
        self._recovery_started_ns = 0
        self._awaiting_resends: set = set()
        self._repoll_armed = False
        self.recovery_repolls = Counter(f"{host.name}.recovery_repolls")
        #: False between a crash and the end of application recovery:
        #: the machine may answer pings (it has rebooted) but the
        #: application drops PMNet traffic until its PM pools are open.
        self._app_ready = True
        if whole_request_folding_enabled():
            # Whole-request folding: fold the stack send cost into the
            # NIC reservation on the server too.  The contract's gap is
            # a crash *and* recovery both inside one microsecond-scale
            # send window; server recovery costs at least the handler's
            # app-recovery time (milliseconds), so a revoked reservation
            # always fires while the host is still down and drops the
            # frame exactly as the unfolded epoch check would.
            host.fold_outbound = True
        self._spawn_workers()
        register_with_sim(sim, self)

    def instruments(self) -> tuple:
        """This server's typed instruments (explicit registration)."""
        return (self.processed, self.makeup_acks, self.retrans_sent,
                self.recovery_repolls)

    # ------------------------------------------------------------------
    def _spawn_workers(self) -> None:
        self._workers = [
            self.sim.spawn(self._worker_loop(), f"{self.host.name}.worker{i}")
            for i in range(self.config.server.worker_cores)]

    # ------------------------------------------------------------------
    # Frame entry point
    # ------------------------------------------------------------------
    def on_frame(self, frame: Frame) -> None:
        payload = frame.payload
        if isinstance(payload, RawPayload):
            self._handle_raw(frame, payload)
            return
        if not isinstance(payload, PMNetPacket):
            return
        if not self._app_ready:
            return  # machine is up but the application is still recovering
        packet = payload
        if packet.packet_type in (PacketType.UPDATE_REQ,
                                  PacketType.BYPASS_REQ,
                                  PacketType.CHAIN_UPDATE):
            self._handle_request(packet)
        # Other types (stray ACKs etc.) are ignored by the server.

    def _handle_raw(self, frame: Frame, payload: RawPayload) -> None:
        """Heartbeat pings are echoed; resend-done control messages feed
        the recovery completion tracking."""
        data = payload.data
        if isinstance(data, tuple) and len(data) == 2 and data[0] == "ping":
            self.host.send_frame(frame.src,
                                 RawPayload(("pong", data[1]), 8), 8,
                                 frame.udp_port)
        elif isinstance(data, tuple) and len(data) == 2 and data[0] == "resend_done":
            self._on_resend_done(data[1])

    # ------------------------------------------------------------------
    # Request path: ordering, dedup, reassembly
    # ------------------------------------------------------------------
    def _handle_request(self, packet: PMNetPacket) -> None:
        if packet.packet_type is PacketType.BYPASS_REQ:
            # Reads/synchronization are idempotent and unordered; they
            # use their own SeqNum stream (a cache-served read must not
            # leave a gap in the update ordering).
            fragments = self.reassembler.push(packet)
            if fragments is not None:
                self._dispatch(fragments)
            return
        sid = packet.session_id
        expected = self.reorder.expected_seq(sid)
        if packet.seq_num < expected:
            # Below the applied horizon (Sec IV-E1 case 3): already
            # committed — send a make-up server-ACK so stale log entries
            # get invalidated.
            self.makeup_acks.increment()
            self._send_ack(packet)
            return
        deliverable = self.reorder.push(packet)
        for ready in deliverable:
            fragments = self.reassembler.push(ready)
            if fragments is not None:
                self._dispatch(fragments)
        if self.reorder.has_gap(sid):
            self._arm_gap_timer(sid, packet)
        elif sid in self._gap_timers:
            del self._gap_timers[sid]

    def _dispatch(self, fragments: List[PMNetPacket]) -> None:
        """Charge the application wakeup, then queue for a worker.

        Wakeup jitter must never reorder requests *within* a session —
        the applied-SeqNum horizon assumes same-session requests reach
        the workers in order — so each session's dispatch completion
        time is kept monotonic.
        """
        sid = fragments[0].session_id
        cost = self.host.stack.dispatch_cost()
        ready_at = max(self.sim.now + cost,
                       self._dispatch_horizon.get(sid, 0))
        self._dispatch_horizon[sid] = ready_at
        epoch = self.host.epoch
        self.sim.schedule_at(ready_at, self._enqueue_ready, fragments, epoch)

    def _enqueue_ready(self, fragments: List[PMNetPacket], epoch: int) -> None:
        if self.host.failed or epoch != self.host.epoch:
            return
        self._ready.append(fragments)
        if self._idle_workers:
            self._idle_workers.pop().succeed()

    # ------------------------------------------------------------------
    # Gap handling: request retransmission (Fig 7b)
    # ------------------------------------------------------------------
    def _arm_gap_timer(self, sid: int, sample: PMNetPacket) -> None:
        if sid in self._gap_timers:
            return
        token = object()
        self._gap_timers[sid] = token
        self.sim.schedule(self.gap_timeout_ns, self._check_gap, sid,
                          sample, token)

    def _check_gap(self, sid: int, sample: PMNetPacket, token: object) -> None:
        if self._gap_timers.get(sid) is not token or self.host.failed:
            return
        del self._gap_timers[sid]
        missing = self.reorder.missing(sid)
        if not missing:
            return
        hashes = tuple(
            PMNetHeader(PacketType.UPDATE_REQ, sid, seq).compute_hash()
            for seq in missing)
        request = RetransRequest(sid, tuple(missing), hashes)
        header = PMNetHeader(PacketType.RETRANS, sid, missing[0])
        packet = PMNetPacket(header=header, payload=request,
                             payload_bytes=8 + 8 * len(missing),
                             request_id=next_request_id(),
                             client=sample.client, server=self.host.name)
        self.retrans_sent.increment()
        self.tracer.emit(self.sim.now, self.host.name, "retrans_request",
                         session=sid, missing=len(missing))
        self.host.send_frame(sample.client, packet, packet.wire_bytes,
                             51000 + sid % 1000)
        self._arm_gap_timer(sid, sample)

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _worker_loop(self):
        try:
            while True:
                if not self._ready:
                    idle = self.sim.event("server-idle")
                    self._idle_workers.append(idle)
                    yield idle
                    continue
                fragments = self._ready.popleft()
                outcome = self._apply(fragments)
                if outcome.cost_ns > 0:
                    yield outcome.cost_ns
                if self.host.failed:
                    return
                self._respond(fragments, outcome)
        except Interrupted:
            return

    def _apply(self, fragments: List[PMNetPacket]) -> HandlerOutcome:
        """Execute the operation and persist the applied horizon — one
        atomic step (the PM transaction's commit point).

        The worker's processing-time yield happens *after* this point:
        it models the rest of the handler's occupancy (undo-log
        bookkeeping, index maintenance, response marshalling), so a
        crash mid-request either shows the whole operation or none of
        it, and never loses the op/horizon pairing.
        """
        first = fragments[0]
        sid = first.session_id
        outcome = self._execute(first.payload, sid)
        if is_update(first.packet_type):
            # Only updates advance the horizon (reads have their own
            # seq stream).
            self.persistent_applied[sid] = max(
                self.persistent_applied.get(sid, 0),
                fragments[-1].seq_num + 1)
        self.processed.increment()
        if self._spans is not None:
            self._spans.record(first.request_id, spans.SERVER_HANDLER,
                               self.sim.now)
        self.tracer.emit(self.sim.now, self.host.name, "processed",
                         req=first.request_id, session=sid,
                         seq=first.seq_num,
                         update=is_update(first.packet_type))
        return outcome

    def _execute(self, op: object, session_id: int) -> HandlerOutcome:
        if isinstance(op, Operation) and op.kind is OpKind.LOCK:
            ok = self.locks.acquire(op.key, session_id)
            return HandlerOutcome(Result(ok=ok,
                                         error=None if ok else "lock_held"),
                                  LOCK_OP_COST_NS, 16)
        if isinstance(op, Operation) and op.kind is OpKind.UNLOCK:
            ok = self.locks.release(op.key, session_id)
            return HandlerOutcome(Result(ok=ok), LOCK_OP_COST_NS, 16)
        if isinstance(op, Operation):
            return self.handler.process(op)
        return HandlerOutcome(Result(ok=False, error="bad_request"),
                              LOCK_OP_COST_NS, 16)

    def _respond(self, fragments: List[PMNetPacket],
                 outcome: HandlerOutcome) -> None:
        """Acknowledge the (already committed) operation."""
        first = fragments[0]
        sid = first.session_id
        if is_update(first.packet_type):
            for fragment in fragments:
                self._send_ack(fragment)
        else:
            response = first.make_response(
                outcome.result,
                max(outcome.response_bytes,
                    estimate_result_bytes(outcome.result)))
            if self._spans is not None:
                self._spans.record(first.request_id, spans.SERVER_RESPONSE,
                                   self.sim.now)
            self.host.send_frame(first.client, response,
                                 response.wire_bytes,
                                 51000 + sid % 1000)

    def _send_ack(self, packet: PMNetPacket) -> None:
        if self._spans is not None:
            self._spans.record(packet.request_id, spans.SERVER_ACK,
                               self.sim.now)
        self.tracer.emit(self.sim.now, self.host.name, "server_ack",
                         req=packet.request_id, session=packet.session_id,
                         seq=packet.seq_num)
        ack = packet.make_ack(PacketType.SERVER_ACK,
                              origin_device=self.host.name)
        self.host.send_frame(packet.client, ack, ack.wire_bytes,
                             51000 + packet.session_id % 1000)

    @property
    def app_ready(self) -> bool:
        """Whether the application is serving (False between a crash and
        the end of application recovery — the window where the machine
        answers pings but drops PMNet traffic)."""
        return self._app_ready

    # ------------------------------------------------------------------
    # Failure and recovery (Sec IV-E)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Power-fail the server: volatile state vanishes, PM survives."""
        self.host.fail()
        for worker in self._workers:
            worker.interrupt("server crash")
        self._ready.clear()
        self._idle_workers = []
        self._gap_timers.clear()
        self._dispatch_horizon.clear()
        self.reorder = ReorderBuffer()
        self.reassembler = Reassembler()
        self.locks.release_all()
        self.handler.crash()
        self._app_ready = False
        self.tracer.emit(self.sim.now, self.host.name, "crash")

    def machine_boot(self) -> None:
        """Bring the *machine* back without the application.

        After a power cycle the host answers pings (heartbeat monitors
        see it) while the application is still down; a subsequent
        :meth:`recover` call runs application recovery and log replay.
        """
        self.host.recover()

    def recover(self, pmnet_devices: List[str]) -> SimEvent:
        """Restart the server and poll PMNet devices for redo logs.

        Returns an event that succeeds (with the recovery duration in ns)
        once every polled device has drained its resend queue — detected
        by the devices' logs going empty for this server's traffic, which
        experiments assert through :meth:`recovery_complete`.
        """
        self.recovered_event = self.sim.event(f"{self.host.name}.recovered")
        self._recovery_started_ns = self.sim.now
        self._awaiting_resends = set(pmnet_devices)
        app_recovery = self.handler.recovery_cost_ns()
        # The host stays dark until the application has reopened its PM
        # pools — packets arriving during app recovery are lost exactly
        # like during the outage itself.
        self.sim.schedule(app_recovery, self._come_online, pmnet_devices)
        self.tracer.emit(self.sim.now, self.host.name, "recover",
                         app_recovery_ns=app_recovery)
        return self.recovered_event

    def _come_online(self, pmnet_devices: List[str]) -> None:
        self.host.recover()
        self._app_ready = True
        # Rebuild the ordering horizon from the persistent applied table.
        self.reorder = ReorderBuffer()
        for sid, next_seq in self.persistent_applied.items():
            self.reorder.restore_session(sid, next_seq)
        self.reassembler = Reassembler()
        self._spawn_workers()
        if not pmnet_devices:
            self._finish_recovery()
        else:
            self._send_recovery_polls(pmnet_devices)

    def _send_recovery_polls(self, pmnet_devices: List[str]) -> None:
        poll_payload = RecoveryPoll(dict(self.persistent_applied))
        self._arm_repoll()
        for device in pmnet_devices:
            header = PMNetHeader(PacketType.RECOVERY_POLL, 0, 0)
            packet = PMNetPacket(header=header, payload=poll_payload,
                                 payload_bytes=16 + 8 * len(
                                     poll_payload.expected_seq),
                                 request_id=next_request_id(),
                                 client=self.host.name, server=self.host.name)
            self.host.send_frame(device, packet, packet.wire_bytes, 51000)

    def _arm_repoll(self) -> None:
        """Re-poll devices that stay silent past the redo timeout.

        The recovery conversation crosses a lossy network in both
        directions: the poll, every replayed request, and the final
        ``resend_done`` control message can each be dropped, and none
        of them carries its own retransmission.  The server owns the
        recovery end to end, so it is the one to retry — a device whose
        replay already drained answers a duplicate poll with an
        immediate ``resend_done``.
        """
        if self._repoll_armed:
            return
        self._repoll_armed = True
        self.sim.schedule(self.config.log.redo_timeout_ns, self._repoll_tick)

    def _repoll_tick(self) -> None:
        self._repoll_armed = False
        if not self._app_ready or not self._awaiting_resends:
            return
        if self.recovered_event is not None and self.recovered_event.triggered:
            return
        self.recovery_repolls.increment()
        self._send_recovery_polls(sorted(self._awaiting_resends))

    def _on_resend_done(self, device: str) -> None:
        self._awaiting_resends.discard(device)
        if not self._awaiting_resends:
            self._finish_recovery()

    def _finish_recovery(self) -> None:
        if self.recovered_event is not None and not self.recovered_event.triggered:
            duration = self.sim.now - self._recovery_started_ns
            self.recovered_event.succeed(duration)
            self.tracer.emit(self.sim.now, self.host.name,
                             "recovery_complete", duration_ns=duration)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<PMNetServer {self.host.name} handler={self.handler.name} "
                f"queued={len(self._ready)}>")
