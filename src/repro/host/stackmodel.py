"""Host network-stack latency model.

Wraps a :class:`~repro.config.StackProfile` with the random machinery
that produces realistic latency *distributions*: mean-preserving
lognormal jitter on every crossing, plus rare long hiccups on the
application dispatch path (scheduler preemption) that create the tail
the paper's Fig 20 CDFs measure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import TCP_EXTRA_PER_SIDE_NS, StackProfile
from repro.sim.rand import LatencyJitter

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

#: Transports a host stack can speak.
UDP = "udp"
TCP = "tcp"


class HostStack:
    """Charges stack traversal costs for one host."""

    def __init__(self, sim: "Simulator", name: str, profile: StackProfile,
                 transport: str = UDP) -> None:
        if transport not in (UDP, TCP):
            raise ValueError(f"unknown transport {transport!r}")
        self.sim = sim
        self.name = name
        self.profile = profile
        self.transport = transport
        self._jitter = LatencyJitter(sim.random.stream(f"stack:{name}"),
                                     profile.jitter_sigma)
        self._hiccup_rng = sim.random.stream(f"hiccup:{name}")

    # ------------------------------------------------------------------
    # Whole-request folding: a host may pre-draw one receive cost at
    # reservation time (an express arrival claim).  The snapshot/restore
    # pair rewinds the jitter stream to its unfolded position when the
    # claim is revoked — valid because every competing draw site revokes
    # the claim *before* drawing, so at restore time the claim's draw is
    # still the stream's most recent.  ``send_cost``/``recv_cost`` draw
    # only from the jitter stream (the hiccup stream is dispatch-only),
    # so the jitter state alone captures what a claim consumed.
    # ------------------------------------------------------------------
    def jitter_state(self):
        """Opaque snapshot of the jitter stream's RNG state."""
        return self._jitter.getstate()

    def restore_jitter_state(self, state) -> None:
        """Rewind the jitter stream to a :meth:`jitter_state` snapshot."""
        self._jitter.setstate(state)

    # ------------------------------------------------------------------
    def _tcp_extra(self) -> int:
        return TCP_EXTRA_PER_SIDE_NS if self.transport == TCP else 0

    def send_cost(self, payload_bytes: int) -> int:
        """Cost of pushing one packet down the stack onto the NIC."""
        base = (self.profile.send_ns
                + round(payload_bytes * self.profile.copy_ns_per_byte)
                + self._tcp_extra())
        return self._jitter.sample(base)

    def recv_cost(self, payload_bytes: int) -> int:
        """Cost of raising one packet from the NIC into the stack."""
        base = (self.profile.recv_ns
                + round(payload_bytes * self.profile.copy_ns_per_byte)
                + self._tcp_extra())
        return self._jitter.sample(base)

    def dispatch_cost(self) -> int:
        """Cost of waking the application thread for one request.

        This is where the latency tail lives: with probability
        ``hiccup_probability`` the wakeup is delayed by ``hiccup_ns``.
        """
        base = self._jitter.sample(self.profile.dispatch_ns)
        if (self.profile.hiccup_probability > 0.0
                and self._hiccup_rng.random() < self.profile.hiccup_probability):
            base += self.profile.hiccup_ns
        return base

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HostStack {self.name} {self.profile.name}/{self.transport}>"
