"""Sharded access to multiple PM servers (the paper's Sec I framing).

Datacenter storage spans many servers; a client talks to the shard that
owns each key.  :class:`ShardedClient` wraps one per-server
:class:`~repro.host.client.PMNetClient` (each with its own session and
ordered update stream) behind the same ``send_update``/``bypass``
surface, routing by key hash.  Incoming frames are demultiplexed to the
owning sub-client by SessionID.

Ordering note: per-session ordering is per *shard* — exactly the
guarantee a sharded store gives (cross-shard operations would need the
application-level locks of Sec III-C, same as cross-client ones).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

from repro.control.placement import PlacementView
from repro.core.hashring import HashRing
from repro.core.replication import ReplicationPolicy, SINGLE_LOG
from repro.protocol.crc import crc32
from repro.errors import SessionError
from repro.host.client import PMNetClient
from repro.host.node import HostNode
from repro.net.packet import Frame
from repro.protocol.packet import PMNetPacket
from repro.protocol.session import SessionAllocator
from repro.sim.event import SimEvent
from repro.sim.trace import Tracer
from repro.workloads.kv import Operation

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import SystemConfig
    from repro.sim.kernel import Simulator


class ShardedClient:
    """One application client spanning several storage shards."""

    def __init__(self, sim: "Simulator", host: HostNode,
                 config: "SystemConfig", servers: List[str],
                 allocator: SessionAllocator,
                 policy: ReplicationPolicy = SINGLE_LOG,
                 tracer: Optional[Tracer] = None) -> None:
        if not servers:
            raise SessionError("a sharded client needs at least one server")
        self.sim = sim
        self.host = host
        self.servers = list(servers)
        host.bind(self)
        self._subclients: List[PMNetClient] = [
            PMNetClient(sim, host, config, server, allocator,
                        policy=policy, tracer=tracer, bind=False,
                        instrument_scope=f"{host.name}:{server}")
            for server in self.servers]
        self._by_session: Dict[int, PMNetClient] = {}

    # ------------------------------------------------------------------
    # Table I surface
    # ------------------------------------------------------------------
    def start_session(self) -> None:
        """Open one session per shard."""
        for subclient in self._subclients:
            session = subclient.start_session()
            self._by_session[session.session_id] = subclient

    def end_session(self) -> None:
        for subclient in self._subclients:
            subclient.end_session()
        self._by_session.clear()

    def send_update(self, op: Operation,
                    payload_bytes: Optional[int] = None) -> SimEvent:
        return self.shard_for(op.key).send_update(op, payload_bytes)

    def bypass(self, op: Operation,
               payload_bytes: Optional[int] = None) -> SimEvent:
        return self.shard_for(op.key).bypass(op, payload_bytes)

    # ------------------------------------------------------------------
    def shard_index(self, key: object) -> int:
        """Stable key-to-shard placement.

        Uses CRC-32 of the key's repr, not Python's builtin ``hash`` —
        the builtin is salted per process for strings, which would move
        keys between shards across runs and break reproducibility.
        """
        return crc32(repr(key).encode()) % len(self.servers)

    def shard_for(self, key: object) -> PMNetClient:
        return self._subclients[self.shard_index(key)]

    @property
    def retransmissions(self):  # driver-facing counter aggregation
        total = sum(int(c.retransmissions) for c in self._subclients)
        return total

    @property
    def outstanding(self) -> int:
        return sum(c.outstanding for c in self._subclients)

    # ------------------------------------------------------------------
    def on_frame(self, frame: Frame) -> None:
        """Demultiplex to the owning sub-client by SessionID."""
        packet = frame.payload
        if not isinstance(packet, PMNetPacket):
            return
        subclient = self._by_session.get(packet.session_id)
        if subclient is not None:
            subclient.on_frame(frame)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ShardedClient {self.host.name} "
                f"shards={len(self.servers)}>")


class RingClient(ShardedClient):
    """A sharded client whose placement comes from a consistent-hash
    ring, with per-shard replication chains.

    The fabric hands every client the same :class:`HashRing` over the
    shard-server names plus a ``chains`` map (server -> device chain,
    head first, tail last), so all clients agree on placement and each
    sub-client sends its updates down the owning shard's chain.

    Routing goes through a shared
    :class:`~repro.control.placement.PlacementView` (the ring plus live
    migration overrides); with no overrides it resolves exactly like
    the bare ring.  The control plane can :meth:`freeze` traffic to one
    server during a migration — frozen operations park behind proxy
    events in FIFO order and are re-routed on :meth:`thaw`, so callers
    never observe a dropped or reordered operation.
    """

    def __init__(self, sim: "Simulator", host: HostNode,
                 config: "SystemConfig", ring: HashRing,
                 chains: Mapping[str, Tuple[str, ...]],
                 allocator: SessionAllocator,
                 policy: ReplicationPolicy = SINGLE_LOG,
                 tracer: Optional[Tracer] = None,
                 placement: Optional[PlacementView] = None) -> None:
        if not isinstance(ring, HashRing):
            raise SessionError("RingClient needs a HashRing")
        if placement is not None and placement.ring is not ring:
            raise SessionError("placement view built over a different ring")
        self.sim = sim
        self.host = host
        self.ring = ring
        self.placement = placement if placement is not None \
            else PlacementView(ring)
        self.servers = list(ring.members)
        self.chains = {server: tuple(chain)
                       for server, chain in chains.items()}
        host.bind(self)
        self._subclients = [
            PMNetClient(sim, host, config, server, allocator,
                        policy=policy, tracer=tracer, bind=False,
                        chain=self.chains.get(server, ()),
                        instrument_scope=f"{host.name}:{server}")
            for server in self.servers]
        self._by_server = dict(zip(self.servers, self._subclients))
        # The member list is immutable, so the index of each server is
        # too — even across migrations, which only change which *keys*
        # resolve to a server, never the member list itself.  (The old
        # ``servers.index(...)`` linear scan made every routed request
        # O(members).)
        self._index_by_server = {server: index
                                 for index, server in enumerate(self.servers)}
        self._by_session: Dict[int, PMNetClient] = {}
        #: Per-frozen-server FIFO of parked operations:
        #: (op, payload_bytes, is_update, proxy event).
        self._frozen: Dict[str, List[Tuple[Operation, Optional[int],
                                           bool, SimEvent]]] = {}
        #: Instant from which each freeze takes effect.  Park decisions
        #: compare sim.now against this timestamp instead of depending
        #: on whether the freeze callback ran before or after the op
        #: within the same instant (same-instant callback order varies
        #: with the fold level, so it must never influence routing).
        self._freeze_at: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def send_update(self, op: Operation,
                    payload_bytes: Optional[int] = None) -> SimEvent:
        return self._route(op, payload_bytes, True)

    def bypass(self, op: Operation,
               payload_bytes: Optional[int] = None) -> SimEvent:
        return self._route(op, payload_bytes, False)

    def _route(self, op: Operation, payload_bytes: Optional[int],
               is_update: bool) -> SimEvent:
        server = self.placement.lookup(op.key)
        parked = self._frozen.get(server)
        if parked is not None and \
                self.sim.now >= self._freeze_at.get(server, 0):
            proxy = self.sim.event(f"{self.host.name}.frozen-op")
            parked.append((op, payload_bytes, is_update, proxy))
            return proxy
        subclient = self._by_server[server]
        if is_update:
            return subclient.send_update(op, payload_bytes)
        return subclient.bypass(op, payload_bytes)

    def shard_index(self, key: object) -> int:
        return self._index_by_server[self.placement.lookup(key)]

    def shard_for(self, key: object) -> PMNetClient:
        return self._by_server[self.placement.lookup(key)]

    # ------------------------------------------------------------------
    # Control-plane surface (used by SessionMigrator)
    # ------------------------------------------------------------------
    def freeze(self, server: str, at_ns: Optional[int] = None) -> None:
        """Park new operations destined for ``server`` until thawed.

        ``at_ns`` defers activation: operations issued at instants
        strictly before it keep routing directly.  Controllers freeze
        at ``sim.now + 1`` so ops sharing the freeze instant behave
        identically whether they execute before or after this call.
        """
        self._frozen.setdefault(server, [])
        self._freeze_at[server] = self.sim.now if at_ns is None else at_ns

    def thaw(self, server: str) -> None:
        """Release parked operations, re-routing through the (possibly
        updated) placement in their original FIFO order."""
        self._freeze_at.pop(server, None)
        for op, payload_bytes, is_update, proxy in \
                self._frozen.pop(server, []):
            real = self._route(op, payload_bytes, is_update)
            real.add_callback(self._complete_thawed, proxy)

    @staticmethod
    def _complete_thawed(event: SimEvent, proxy: SimEvent) -> None:
        if event.exception is not None:
            proxy.fail(event.exception)
        else:
            proxy.succeed(event.value)

    def outstanding_for(self, server: str) -> int:
        """In-flight requests on the wire toward ``server`` (parked
        frozen operations are not on the wire and do not count)."""
        return self._by_server[server].outstanding

    def frozen_count(self, server: str) -> int:
        parked = self._frozen.get(server)
        return len(parked) if parked is not None else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RingClient {self.host.name} "
                f"shards={len(self.servers)}>")
