"""Heartbeat-based failure detection (Sec IV-E: "systems typically
monitor servers' status using heartbeats").

A :class:`HeartbeatMonitor` runs on any host: it pings a target on a
fixed period and declares the target failed after ``miss_threshold``
consecutive unanswered pings, invoking a callback (experiments use it to
start recovery without consulting simulator-omniscient state).  When the
target answers again after a failure, a recovery callback fires.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.host.node import HostNode
from repro.net.packet import Frame, RawPayload
from repro.sim.clock import microseconds

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class HeartbeatMonitor:
    """Pings a target host and tracks its liveness."""

    def __init__(self, sim: "Simulator", host: HostNode, target: str,
                 period_ns: int = microseconds(200),
                 miss_threshold: int = 3,
                 on_failure: Optional[Callable[[], None]] = None,
                 on_recovery: Optional[Callable[[], None]] = None) -> None:
        if miss_threshold <= 0:
            raise ValueError("miss threshold must be positive")
        self.sim = sim
        self.host = host
        self.target = target
        self.period_ns = period_ns
        self.miss_threshold = miss_threshold
        self.on_failure = on_failure
        self.on_recovery = on_recovery
        self.target_alive = True
        self.failures_detected = 0
        self._seq = 0
        #: Highest ping seq answered so far.  Seqs start at 1, so 0 means
        #: "no pong yet": a target dead from the start accumulates
        #: exactly ``seq`` misses.  (Starting from -1 inflated the count
        #: by one and fired the failure callback a full period early.)
        self._last_answered = 0
        self._running = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._tick()

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self._seq += 1
        ping = RawPayload(("ping", self._seq), 8)
        self.host.send_frame(self.target, ping, 8, udp_port=9100)
        self.sim.schedule(self.period_ns, self._check, self._seq)
        self.sim.schedule(self.period_ns, self._tick)

    def _check(self, seq: int) -> None:
        misses = seq - self._last_answered
        if self.target_alive and misses >= self.miss_threshold:
            self.target_alive = False
            self.failures_detected += 1
            if self.on_failure is not None:
                self.on_failure()

    # ------------------------------------------------------------------
    def on_pong(self, seq: int) -> None:
        """Called by the owner endpoint when a pong arrives."""
        self._last_answered = max(self._last_answered, seq)
        if not self.target_alive:
            self.target_alive = True
            if self.on_recovery is not None:
                self.on_recovery()

    def handles(self, frame: Frame) -> bool:
        """Offer a frame; returns True if it was this monitor's pong."""
        payload = frame.payload
        if (isinstance(payload, RawPayload)
                and isinstance(payload.data, tuple)
                and len(payload.data) == 2 and payload.data[0] == "pong"
                and frame.src == self.target):
            self.on_pong(payload.data[1])
            return True
        return False


class MonitorEndpoint:
    """A host endpoint that exists only to feed one or more monitors."""

    def __init__(self, host: HostNode) -> None:
        self.monitors: list[HeartbeatMonitor] = []
        host.bind(self)

    def attach(self, monitor: HeartbeatMonitor) -> HeartbeatMonitor:
        self.monitors.append(monitor)
        return monitor

    def on_frame(self, frame: Frame) -> None:
        for monitor in self.monitors:
            if monitor.handles(frame):
                return
