"""Host software: the PMNet client/server libraries of Table I."""

from repro.host.async_client import AsyncPMNetClient
from repro.host.client import Completion, PMNetClient
from repro.host.handler import (
    HandlerOutcome,
    IdealHandler,
    LockTable,
    RequestHandler,
)
from repro.host.heartbeat import HeartbeatMonitor, MonitorEndpoint
from repro.host.node import HostNode
from repro.host.server import PMNetServer
from repro.host.sharded import ShardedClient
from repro.host.stackmodel import TCP, UDP, HostStack

__all__ = [
    "HostNode", "HostStack", "UDP", "TCP",
    "PMNetClient", "AsyncPMNetClient", "Completion",
    "PMNetServer", "ShardedClient",
    "RequestHandler", "IdealHandler", "HandlerOutcome", "LockTable",
    "HeartbeatMonitor", "MonitorEndpoint",
]
