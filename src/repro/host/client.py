"""The client-side PMNet library (Table I: client side).

:class:`PMNetClient` exposes the paper's four-call interface —
``start_session`` / ``end_session`` / ``send_update`` / ``bypass`` —
over the simulated fabric.  ``send_update`` returns an event that
succeeds once the request is *persistent*: either every fragment holds
PMNet-ACKs from the required number of distinct devices (the replication
policy), or the server itself acknowledged.  ``bypass`` completes on the
server's (or in-network cache's) response.

The library also implements the reliability half of the protocol: it
retransmits unacknowledged fragments after a timeout and answers the
server's Retrans requests for packets PMNet could not serve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.config import whole_request_folding_enabled
from repro.core.replication import ReplicationPolicy, SINGLE_LOG
from repro.errors import SessionError
from repro.host.node import HostNode
from repro.net.packet import Frame
from repro.obs import spans
from repro.obs.registry import register_with_sim
from repro.protocol.fragment import fragment_request, max_fragment_payload
from repro.protocol.packet import PMNetPacket, RetransRequest
from repro.protocol.session import Session, SessionAllocator
from repro.protocol.types import PacketType, UPDATE_TYPES
from repro.sim.event import SimEvent
from repro.sim.monitor import Counter
from repro.sim.trace import Tracer
from repro.workloads.kv import Operation, Result

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import SystemConfig
    from repro.sim.kernel import Simulator


@dataclass
class Completion:
    """What a finished request hands back to the application."""

    result: Result
    #: "pmnet" (early ACK), "server" (server ACK/response), or "cache".
    via: str
    retransmissions: int = 0


@dataclass
class _PendingRequest:
    """Client-side state of one in-flight request."""

    packets: List[PMNetPacket]
    completion: SimEvent
    is_update: bool
    #: Per-fragment set of distinct PMNet device names that ACKed.
    pmnet_origins: List[Set[str]] = field(default_factory=list)
    server_acked: List[bool] = field(default_factory=list)
    retransmissions: int = 0
    timer_token: object = None
    #: The armed timeout's heap record (whole-request folding cancels it
    #: on completion instead of letting it fire as a no-op).
    timer_call: object = None

    def __post_init__(self) -> None:
        if not self.pmnet_origins:
            self.pmnet_origins = [set() for _ in self.packets]
        if not self.server_acked:
            self.server_acked = [False] * len(self.packets)


class PMNetClient:
    """One client instance bound to a host."""

    def __init__(self, sim: "Simulator", host: HostNode,
                 config: "SystemConfig", server: str,
                 allocator: SessionAllocator,
                 policy: ReplicationPolicy = SINGLE_LOG,
                 max_retries: Optional[int] = None,
                 tracer: Optional[Tracer] = None,
                 bind: bool = True,
                 chain: Tuple[str, ...] = (),
                 instrument_scope: Optional[str] = None) -> None:
        self.sim = sim
        self.host = host
        self.config = config
        self.server = server
        self.allocator = allocator
        self.policy = policy
        self.max_retries = max_retries
        #: Replication chain for updates (device names, head first, tail
        #: last).  When set, updates go out as CHAIN_UPDATEs addressed to
        #: the head; the tail's PMNET_ACK completes them.
        self.chain: Tuple[str, ...] = tuple(chain)
        self.tracer = tracer if tracer is not None else sim.tracer
        self._spans = spans.spans_for(sim)
        if bind:
            # A sharded wrapper owns the host endpoint and demultiplexes
            # frames to per-server sub-clients instead.
            host.bind(self)
        self.session: Optional[Session] = None
        self._pending: Dict[int, _PendingRequest] = {}
        self._by_seq: Dict[Tuple[int, int], Tuple[_PendingRequest, int]] = {}
        #: Latest-expiring no-op timeout of a completed request, kept
        #: armed so the end-of-run clock matches the unfolded timeline.
        self._stale_timer = None
        self._mtu_payload = max_fragment_payload(
            config.network.mtu_bytes, config.network.header_overhead_bytes)
        # Sub-clients of a sharded wrapper share one host; the wrapper
        # scopes their instrument names per shard to keep them unique.
        scope = instrument_scope if instrument_scope else host.name
        self.completed_pmnet = Counter(f"{scope}.completed_pmnet")
        self.completed_server = Counter(f"{scope}.completed_server")
        self.completed_cache = Counter(f"{scope}.completed_cache")
        self.retransmissions = Counter(f"{scope}.retransmissions")
        # Client hosts may crash (client_failure_mid_run) but are never
        # *recovered* mid-run, which is all HostNode.fold_outbound's
        # contract requires: Node.fail revokes unstarted reservations,
        # so a folded send dies with the host exactly as an unfolded
        # one would.  Fold the stack send cost into the NIC channel.
        host.fold_outbound = True
        self._whole = whole_request_folding_enabled()
        if self._whole:
            # Whole-request folding: inbound ACK chains may extend
            # through the stack receive cost (revocable pre-draw), the
            # completion timeout is cancelled instead of firing as a
            # no-op, and the application wakeup dispatches inline at its
            # unfolded heap slot.
            host.express_inbound = True
        register_with_sim(sim, self)

    def instruments(self) -> tuple:
        """This client's typed instruments (explicit registration)."""
        return (self.completed_pmnet, self.completed_server,
                self.completed_cache, self.retransmissions)

    # ------------------------------------------------------------------
    # Table I interface
    # ------------------------------------------------------------------
    def start_session(self) -> Session:
        """``PMNet_start_session()``: open a session to the server."""
        if self.session is not None and not self.session.closed:
            raise SessionError(f"client {self.host.name} already in a session")
        self.session = self.allocator.open(self.host.name, self.server)
        return self.session

    def end_session(self) -> None:
        """``PMNet_end_session()``: close the current session."""
        if self.session is None:
            raise SessionError(f"client {self.host.name} has no session")
        self.allocator.close(self.session)

    def send_update(self, op: Operation,
                    payload_bytes: Optional[int] = None) -> SimEvent:
        """``PMNet_send_update()``: an update-req that PMNet may log."""
        packet_type = (PacketType.CHAIN_UPDATE if self.chain
                       else PacketType.UPDATE_REQ)
        return self._send(packet_type, op, payload_bytes)

    def bypass(self, op: Operation,
               payload_bytes: Optional[int] = None) -> SimEvent:
        """``PMNet_bypass()``: a read/synchronization request that must
        reach the server (no early acknowledgement)."""
        return self._send(PacketType.BYPASS_REQ, op, payload_bytes)

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------
    def _send(self, packet_type: PacketType, op: Operation,
              payload_bytes: Optional[int]) -> SimEvent:
        if self.session is None or self.session.closed:
            raise SessionError(
                f"client {self.host.name}: start_session() first")
        size = payload_bytes if payload_bytes is not None \
            else self.config.payload_bytes
        packets = fragment_request(self.session, packet_type, op, size,
                                   self._mtu_payload)
        if packet_type is PacketType.CHAIN_UPDATE:
            for packet in packets:
                packet.chain = self.chain
        is_update = packet_type in UPDATE_TYPES
        state = _PendingRequest(
            packets=packets,
            completion=self.sim.event(f"req{packets[0].request_id}"),
            is_update=is_update)
        self._pending[packets[0].request_id] = state
        if self._spans is not None:
            self._spans.record(packets[0].request_id, spans.CLIENT_SEND,
                               self.sim.now)
        self.tracer.emit(self.sim.now, self.host.name, "request_sent",
                         req=packets[0].request_id,
                         session=packets[0].session_id,
                         seq=packets[0].seq_num, update=is_update,
                         fragments=len(packets))
        for index, packet in enumerate(packets):
            # Updates and reads draw from separate SeqNum streams
            # (session.py), so the stream is part of the key.
            key = (packet.session_id, packet.seq_num, is_update)
            self._by_seq[key] = (state, index)
            self._transmit(packet)
        self._arm_timeout(state)
        return state.completion

    def _transmit(self, packet: PMNetPacket) -> None:
        # Chain updates enter at the head device; everything else —
        # including timeout retransmissions of chain packets, which
        # re-walk the chain so missing members regain their copies —
        # goes straight at the server.
        destination = (packet.chain[0]
                       if packet.packet_type is PacketType.CHAIN_UPDATE
                       and packet.chain else self.server)
        self.host.send_frame(destination, packet, packet.wire_bytes,
                             51000 + packet.session_id % 1000)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def on_frame(self, frame: Frame) -> None:
        packet = frame.payload
        if not isinstance(packet, PMNetPacket):
            return
        kind = packet.packet_type
        if kind is PacketType.RETRANS:
            self._handle_retrans(packet)
            return
        is_update_ack = kind in (PacketType.PMNET_ACK,
                                 PacketType.SERVER_ACK)
        lookup = self._by_seq.get(
            (packet.session_id, packet.seq_num, is_update_ack))
        if lookup is None:
            return  # late ACK for an already-completed request
        state, index = lookup
        if kind is PacketType.PMNET_ACK:
            state.pmnet_origins[index].add(packet.origin_device or "pmnet")
            self._check_update_completion(state, via="pmnet")
        elif kind is PacketType.SERVER_ACK:
            state.server_acked[index] = True
            self._check_update_completion(state, via="server")
        elif kind in (PacketType.SERVER_RESP, PacketType.CACHE_RESP):
            result = packet.payload if isinstance(packet.payload, Result) \
                else Result(ok=True)
            via = "cache" if kind is PacketType.CACHE_RESP else "server"
            self._complete(state, result, via)

    def _fragment_persistent(self, state: _PendingRequest, index: int) -> bool:
        if state.server_acked[index]:
            return True
        return (self.policy.uses_pmnet
                and self.policy.satisfied_by(len(state.pmnet_origins[index])))

    def _check_update_completion(self, state: _PendingRequest,
                                 via: str) -> None:
        if not state.is_update or state.completion.triggered:
            return
        if all(self._fragment_persistent(state, i)
               for i in range(len(state.packets))):
            self._complete(state, Result(ok=True), via)

    def _complete(self, state: _PendingRequest, result: Result,
                  via: str) -> None:
        if state.completion.triggered:
            return
        for packet in state.packets:
            self._by_seq.pop(
                (packet.session_id, packet.seq_num, state.is_update), None)
        self._pending.pop(state.packets[0].request_id, None)
        state.timer_token = None
        if self._whole and state.timer_call is not None:
            # The pending timeout would fire as a pure no-op (its token
            # is cleared and the completion is triggered below, both
            # checked first thing), so it can be cancelled — except that
            # a run's *final* no-op timeout still advances the drained
            # queue's end-of-run clock, which fold identity preserves.
            # Keeping the latest-expiring stale timer armed (and only
            # cancelling ones dominated by it) pins that tail event in
            # place: one surviving no-op per client instead of one per
            # request.
            call = state.timer_call
            state.timer_call = None
            stale = self._stale_timer
            if stale is None:
                self._stale_timer = call
            elif stale.time <= call.time:
                stale.cancel()
                self._stale_timer = call
            else:
                call.cancel()
        counter = {"pmnet": self.completed_pmnet,
                   "server": self.completed_server,
                   "cache": self.completed_cache}[via]
        counter.increment()
        first = state.packets[0]
        if self._spans is not None:
            self._spans.record(first.request_id, spans.CLIENT_COMPLETE,
                               self.sim.now)
        self.tracer.emit(self.sim.now, self.host.name, "completed",
                         req=first.request_id, session=first.session_id,
                         seq=first.seq_num, via=via,
                         update=state.is_update, ok=result.ok)
        # The application wakeup (epoll + scheduler) is charged here.
        # The draw goes through the host so an outstanding express-claim
        # pre-draw is revoked before the jitter stream advances.
        completion = Completion(result=result, via=via,
                                retransmissions=state.retransmissions)
        cost = self.host.dispatch_cost()
        if self._whole and state.completion.waiter_count == 1:
            # Single waiter (the driver): run it inline at the wakeup
            # instant.  The one-hop ``(0,)`` defer re-sequences the
            # record at ``now + cost``, allocating the fresh seq exactly
            # where the unfolded ``_succeed`` event would sit, so any
            # same-instant tie-breaking is unchanged — but the waiter's
            # resumption piggybacks on this event instead of costing its
            # own.  Zero- or multi-waiter completions keep the plain
            # path: their callback scheduling order is observable.
            self.sim.schedule_deferred(cost, (0,), self._succeed_inline,
                                       state.completion, completion,
                                       first.request_id)
        else:
            self.sim.schedule(cost, self._succeed, state.completion,
                              completion, first.request_id)

    def _succeed(self, event: SimEvent, value: Completion,
                 request_id: int) -> None:
        if not event.triggered:
            if self._spans is not None:
                # The instant the application wakes up — the driver's
                # measured completion time, so span end-to-end equals the
                # experiment's latency sample exactly.
                self._spans.record(request_id, spans.COMPLETED, self.sim.now)
            event.succeed(value)

    def _succeed_inline(self, event: SimEvent, value: Completion,
                        request_id: int) -> None:
        """Whole-request folding's :meth:`_succeed`: same guards and span,
        but the single waiter resumes synchronously inside this event."""
        if not event.triggered:
            if self._spans is not None:
                self._spans.record(request_id, spans.COMPLETED, self.sim.now)
            event.succeed_inline(value)

    # ------------------------------------------------------------------
    # Reliability: timeout retransmission and server Retrans requests
    # ------------------------------------------------------------------
    def _arm_timeout(self, state: _PendingRequest) -> None:
        token = object()
        state.timer_token = token
        state.timer_call = self.sim.schedule(self.config.client.timeout_ns,
                                             self._on_timeout, state, token)

    def _on_timeout(self, state: _PendingRequest, token: object) -> None:
        if state.timer_token is not token or state.completion.triggered:
            return
        if self.host.failed:
            # The machine is dead: its timers die with it.  (A rebooted
            # client restarts its application and sessions from scratch;
            # stale pre-crash request state is never resumed.)
            return
        if (self.max_retries is not None
                and state.retransmissions >= self.max_retries):
            self._complete(state, Result(ok=False, error="timeout"), "server")
            return
        state.retransmissions += 1
        self.retransmissions.increment()
        for index, packet in enumerate(state.packets):
            if not self._fragment_persistent(state, index):
                self._transmit(packet)
        self.tracer.emit(self.sim.now, self.host.name, "timeout_retransmit",
                         req=state.packets[0].request_id,
                         attempt=state.retransmissions)
        self._arm_timeout(state)

    def _handle_retrans(self, packet: PMNetPacket) -> None:
        """The server asked for packets neither it nor PMNet has."""
        request = packet.payload
        if not isinstance(request, RetransRequest):
            return
        for seq in request.missing_seq_nums:
            # The server only tracks gaps in the update stream.
            lookup = self._by_seq.get((request.session_id, seq, True))
            if lookup is not None:
                state, index = lookup
                self.retransmissions.increment()
                self._transmit(state.packets[index])

    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        return len(self._pending)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PMNetClient {self.host.name} -> {self.server}>"
