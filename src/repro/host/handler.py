"""Request-handler abstraction: what the server application does per op.

A handler receives one :class:`~repro.workloads.kv.Operation`, mutates
its (persistent) state, and reports both the application result and the
simulated processing cost.  Workload handlers in :mod:`repro.workloads`
execute real data structures and derive the cost from the PM operations
they perform; :class:`IdealHandler` is the paper's microbenchmark server
that "acknowledges the client upon reception, without processing it"
(Sec VI-B1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sim.clock import microseconds
from repro.workloads.kv import Operation, Result


@dataclass
class HandlerOutcome:
    """One processed operation: the reply plus its simulated cost."""

    result: Result
    cost_ns: int
    response_bytes: int = 32


class RequestHandler:
    """Base class for server request handlers."""

    name = "handler"

    def process(self, op: Operation) -> HandlerOutcome:
        """Apply one operation; must be implemented by subclasses."""
        raise NotImplementedError

    # -- failure hooks --------------------------------------------------
    def crash(self) -> None:
        """Lose volatile state.  PM-backed stores keep committed data."""

    def recovery_cost_ns(self) -> int:
        """Application-level recovery time after a crash (pool reopen,
        consistency scan) charged before the server accepts traffic."""
        return microseconds(100)


class IdealHandler(RequestHandler):
    """The ideal request handler of the latency microbenchmarks."""

    name = "ideal"

    def __init__(self, cost_ns: int = microseconds(2.4)) -> None:
        self.cost_ns = cost_ns
        self.processed = 0

    def process(self, op: Operation) -> HandlerOutcome:
        self.processed += 1
        return HandlerOutcome(result=Result(ok=True), cost_ns=self.cost_ns,
                              response_bytes=16)

    def recovery_cost_ns(self) -> int:
        return microseconds(10)


class LockTable:
    """Server-side synchronization primitives (Sec III-C).

    Lock requests always bypass PMNet; the server enforces mutual
    exclusion here, failing acquisitions of held locks so clients retry.
    """

    def __init__(self) -> None:
        self._holders: Dict[object, int] = {}
        self.acquisitions = 0
        self.conflicts = 0

    def acquire(self, lock_name: object, session_id: int) -> bool:
        holder = self._holders.get(lock_name)
        if holder is not None and holder != session_id:
            self.conflicts += 1
            return False
        self._holders[lock_name] = session_id
        self.acquisitions += 1
        return True

    def release(self, lock_name: object, session_id: int) -> bool:
        if self._holders.get(lock_name) != session_id:
            return False
        del self._holders[lock_name]
        return True

    def holder(self, lock_name: object) -> object:
        return self._holders.get(lock_name)

    def release_all(self) -> None:
        """Drop every lock (crash recovery: lock state is volatile)."""
        self._holders.clear()
