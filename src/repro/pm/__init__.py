"""Persistent-memory substrate: device timing, log queues, request log."""

from repro.pm.device import PMDevice
from repro.pm.log import LogEntry, LogRegion
from repro.pm.queues import LogQueue

__all__ = ["PMDevice", "LogQueue", "LogRegion", "LogEntry"]
