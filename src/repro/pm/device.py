"""Persistent-memory device timing model.

A :class:`PMDevice` serializes accesses through one media port (the
paper's FPGA DMA engine): each access costs the device's fixed latency
plus size/bandwidth, and accesses queue behind each other.  Durability is
explicit: a write's data is persistent only when its completion fires.
On a crash, in-flight accesses are discarded — exactly the volatile
window the paper's log queues create (Sec V-A).

The submit path runs once per logged packet, so it is allocation-lean:
completions are dispatched through one bound method carrying its state
as scheduled-call arguments (no closure per access), and crash discard
is an epoch bump rather than a token list scan.

**One executed event per access** is a deliberate contract: the DMA
chain (queue hand-off, media transfer, fixed latency) is deterministic
once the access is submitted, so the initiation pacing and the
completion wait are summed arithmetically into a single ``_complete``
event at ``start + latency + transfer`` — there is no intermediate
"transfer done" hop (``tests/pm/test_device.py`` guards this).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Tuple

from repro.errors import CrashedDeviceError
from repro.sim.monitor import Counter

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import PMProfile
    from repro.sim.kernel import Simulator


class PMDevice:
    """One PM media port with latency/bandwidth and crash semantics."""

    def __init__(self, sim: "Simulator", name: str,
                 profile: "PMProfile") -> None:
        self.sim = sim
        self.name = name
        self.profile = profile
        self._busy_until = 0
        self._inflight = 0
        #: Bumped on every crash; completions from an older epoch were
        #: in flight when the power failed and are silently discarded.
        self._epoch = 0
        self.crashed = False
        self.writes_completed = Counter(f"{name}.writes")
        self.reads_completed = Counter(f"{name}.reads")
        self.bytes_written = Counter(f"{name}.bytes_written")

    # ------------------------------------------------------------------
    def _media_time(self, nbytes: int) -> int:
        return round(nbytes / self.profile.bandwidth_bytes_per_s * 1e9)

    def _submit(self, latency_ns: int, is_write: bool, nbytes: int,
                on_complete: Callable[..., None],
                args: Tuple[Any, ...]) -> int:
        """Pipelined access model: the DMA engine initiates accesses at
        the media bandwidth (back-to-back accesses are spaced by their
        transfer time), while each access's *completion* additionally
        waits the fixed media latency.  A lone access costs
        latency + transfer; a stream is bandwidth-bound."""
        if self.crashed:
            raise CrashedDeviceError(f"PM device {self.name} has crashed")
        start = max(self.sim.now, self._busy_until)
        media = self._media_time(nbytes)
        self._busy_until = start + media
        finish = start + latency_ns + media
        self._inflight += 1
        self.sim.schedule_at(finish, self._complete, self._epoch, is_write,
                             nbytes, on_complete, args)
        return finish

    def _complete(self, epoch: int, is_write: bool, nbytes: int,
                  on_complete: Callable[..., None],
                  args: Tuple[Any, ...]) -> None:
        if epoch != self._epoch:
            return  # discarded by a crash
        self._inflight -= 1
        if is_write:
            self.writes_completed.increment()
            self.bytes_written.increment(nbytes)
        else:
            self.reads_completed.increment()
        on_complete(*args)

    def submit_write(self, nbytes: int, on_persisted: Callable[..., None],
                     *args: Any) -> int:
        """Start persisting ``nbytes``; returns the completion time.

        ``on_persisted(*args)`` fires when the data is durable.  If the
        device crashes first, the callback never fires (the write is lost).
        """
        return self._submit(self.profile.write_latency_ns, True, nbytes,
                            on_persisted, args)

    def submit_read(self, nbytes: int, on_complete: Callable[..., None],
                    *args: Any) -> int:
        """Start reading ``nbytes``; returns the completion time."""
        return self._submit(self.profile.read_latency_ns, False, nbytes,
                            on_complete, args)

    # ------------------------------------------------------------------
    @property
    def pending_accesses(self) -> int:
        return self._inflight

    def busy_for(self) -> int:
        """Nanoseconds until the media port goes idle (0 if idle now)."""
        return max(0, self._busy_until - self.sim.now)

    def crash(self) -> Tuple[int, int]:
        """Power-fail the device: drop in-flight accesses.

        Returns ``(discarded_accesses, completed_writes)`` for assertions.
        """
        discarded = self._inflight
        self._inflight = 0
        self._epoch += 1
        self.crashed = True
        return discarded, int(self.writes_completed)

    def recover(self) -> None:
        """Bring the device back (durable data handling is the log's job)."""
        self.crashed = False
        self._busy_until = self.sim.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self.crashed else "ok"
        return f"<PMDevice {self.name} {state} inflight={self.pending_accesses}>"
