"""The in-network request log: hash-indexed entries in device PM.

The log is the heart of PMNet (Sec IV-B): an array of fixed-size entries
indexed by the request's ``HashVal``.  An entry becomes *durable* only
when its PM write completes; a crash discards non-durable entries (they
were still in the volatile log queue / media pipe).  Collisions and a
full log are not errors — the MAT pipeline simply bypasses logging for
that packet (Sec IV-B1), which the counters here make observable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.obs.registry import register_with_sim
from repro.protocol.packet import PMNetPacket
from repro.sim.monitor import Counter

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import LogConfig
    from repro.pm.device import PMDevice
    from repro.pm.queues import LogQueue
    from repro.sim.kernel import Simulator


@dataclass
class LogEntry:
    """One logged request packet and its persistence state."""

    packet: PMNetPacket
    inserted_at_ns: int
    insert_order: int
    durable: bool = False


class LogRegion:
    """Hash-indexed request log with explicit durability."""

    def __init__(self, sim: "Simulator", name: str, config: "LogConfig",
                 device: "PMDevice", write_queue: "LogQueue",
                 read_queue: "LogQueue") -> None:
        self.sim = sim
        self.name = name
        self.config = config
        self.device = device
        self.write_queue = write_queue
        self.read_queue = read_queue
        self._entries: Dict[int, LogEntry] = {}
        self._insert_counter = 0
        self.logged = Counter(f"{name}.logged")
        self.invalidated = Counter(f"{name}.invalidated")
        self.bypassed_full = Counter(f"{name}.bypassed_full")
        self.bypassed_collision = Counter(f"{name}.bypassed_collision")
        self.bypassed_queue_busy = Counter(f"{name}.bypassed_queue_busy")
        self.lost_in_crash = Counter(f"{name}.lost_in_crash")
        register_with_sim(sim, self)

    def instruments(self) -> tuple:
        """This log region's typed instruments (explicit registration)."""
        return (self.logged, self.invalidated, self.bypassed_full,
                self.bypassed_collision, self.bypassed_queue_busy,
                self.lost_in_crash)

    # ------------------------------------------------------------------
    # Logging path (MAT PM-access stage)
    # ------------------------------------------------------------------
    def try_log(self, packet: PMNetPacket,
                on_persisted: Callable[[LogEntry], None]) -> bool:
        """Attempt to log a packet.

        Returns ``True`` if the packet was accepted (the callback fires
        when it becomes durable), ``False`` if the pipeline must bypass:
        log full, HashVal collision, or write queue busy (Sec IV-B1).
        """
        hash_val = packet.hash_val
        if hash_val in self._entries:
            self.bypassed_collision.increment()
            return False
        if len(self._entries) >= self.config.num_entries:
            self.bypassed_full.increment()
            return False
        entry = LogEntry(packet=packet, inserted_at_ns=self.sim.now,
                         insert_order=self._insert_counter)
        nbytes = min(packet.wire_bytes, self.config.entry_bytes)
        if not self.write_queue.try_enqueue(nbytes, self._persisted,
                                            hash_val, entry, on_persisted):
            self.bypassed_queue_busy.increment()
            return False
        self._insert_counter += 1
        self._entries[hash_val] = entry
        return True

    def _persisted(self, hash_val: int, entry: LogEntry,
                   on_persisted: Callable[[LogEntry], None]) -> None:
        # The crash path removes the entry; only mark it durable if it
        # is still the one we inserted.
        current = self._entries.get(hash_val)
        if current is entry:
            entry.durable = True
            self.logged.increment()
            on_persisted(entry)

    def invalidate(self, hash_val: int) -> bool:
        """Remove the entry for a committed request (server-ACK path)."""
        entry = self._entries.pop(hash_val, None)
        if entry is None:
            return False
        self.invalidated.increment()
        return True

    def lookup(self, hash_val: int) -> Optional[LogEntry]:
        return self._entries.get(hash_val)

    # ------------------------------------------------------------------
    # Recovery path
    # ------------------------------------------------------------------
    def durable_entries_in_order(self) -> List[LogEntry]:
        """Durable entries in original insertion order (redo order)."""
        durable = [e for e in self._entries.values() if e.durable]
        durable.sort(key=lambda entry: entry.insert_order)
        return durable

    def read_entry(self, entry: LogEntry, on_complete: Callable[..., None],
                   *args: object) -> None:
        """Charge the PM read of one entry during recovery resend.

        ``on_complete(*args)`` fires when the read finishes.
        """
        nbytes = min(entry.packet.wire_bytes, self.config.entry_bytes)
        if not self.read_queue.try_enqueue(nbytes, on_complete, *args):
            # Recovery is not latency critical: retry when the queue has
            # drained a bit rather than dropping the read.
            self.sim.schedule(self.device.profile.read_latency_ns,
                              self.read_entry, entry, on_complete, *args)

    # ------------------------------------------------------------------
    # Failure semantics
    # ------------------------------------------------------------------
    def crash(self) -> int:
        """Power failure: drop entries that never became durable.

        Durable entries survive (they are in PM).  Returns the number of
        lost (non-durable) entries.
        """
        volatile = [h for h, e in self._entries.items() if not e.durable]
        for hash_val in volatile:
            del self._entries[hash_val]
        self.lost_in_crash.increment(len(volatile))
        self.write_queue.crash()
        self.read_queue.crash()
        return len(volatile)

    def wipe(self) -> int:
        """Erase everything, durable entries included.

        This models *replacing* a permanently failed device with a blank
        unit (Sec IV-E2): the data on the dead board is gone; only other
        replicas can recover it.  Returns the number of erased entries.
        """
        erased = len(self._entries)
        self._entries.clear()
        return erased

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def durable_count(self) -> int:
        return sum(1 for entry in self._entries.values() if entry.durable)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<LogRegion {self.name} {self.occupancy}"
                f"/{self.config.num_entries} entries>")
