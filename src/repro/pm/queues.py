"""Log queues: the SRAM buffers between the MAT pipeline and the PM.

The PM is slower than line rate, so PMNet buffers PM accesses in small
read/write queues (Sec V-A sizes them at 4 KB by the bandwidth-delay
product of the PM latency).  A queue entry occupies SRAM from the
moment the pipeline hands it over until its PM access *completes* —
which is exactly why Eq 2 sizes the queue as ``PM latency x line rate``:
that is the number of bytes in flight when the DMA engine streams at
full bandwidth.

The pipeline *never blocks*: if the queue cannot take a packet, the
packet is forwarded without logging — the paper's line-rate guarantee —
and the rejection count is what the log-queue-sizing ablation measures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Tuple

from repro.obs.registry import register_with_sim
from repro.sim.monitor import Counter

if TYPE_CHECKING:  # pragma: no cover
    from repro.pm.device import PMDevice
    from repro.sim.kernel import Simulator


class LogQueue:
    """A byte-budgeted staging buffer for one direction of PM access.

    Accesses are submitted to the device immediately (the device's DMA
    engine paces initiation at media bandwidth); their bytes stay
    charged against the SRAM budget until the access completes.
    """

    def __init__(self, sim: "Simulator", name: str, capacity_bytes: int,
                 device: "PMDevice", is_write: bool) -> None:
        if capacity_bytes <= 0:
            raise ValueError("log queue capacity must be positive")
        self.sim = sim
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.device = device
        self.is_write = is_write
        self._occupied_bytes = 0
        self._epoch = 0
        #: Bound once: the submit direction never changes, so the
        #: per-enqueue attribute walk is not worth repeating.
        self._submit = device.submit_write if is_write else device.submit_read
        self.accepted = Counter(f"{name}.accepted")
        self.rejected = Counter(f"{name}.rejected")
        self.high_water_bytes = 0
        register_with_sim(sim, self)

    def instruments(self) -> tuple:
        """This queue's typed instruments (explicit registration).

        ``high_water_bytes`` stays a plain int (it is compared and
        assigned numerically on the enqueue path) and is therefore not an
        instrument; the experiment summary reads it directly.
        """
        return (self.accepted, self.rejected)

    # ------------------------------------------------------------------
    def try_enqueue(self, nbytes: int, on_complete: Callable[..., None],
                    *args: Any) -> bool:
        """Offer an access; returns False (rejected) when SRAM is short.

        ``on_complete(*args)`` fires when the PM access finishes.  The
        completion plumbing runs through one bound method with its state
        passed as arguments — per-packet path, so no closure per access.
        """
        if nbytes <= 0:
            raise ValueError("access size must be positive")
        if self.device.crashed:
            self.rejected.increment()
            return False
        if self._occupied_bytes + nbytes > self.capacity_bytes:
            self.rejected.increment()
            return False
        self._occupied_bytes += nbytes
        if self._occupied_bytes > self.high_water_bytes:
            self.high_water_bytes = self._occupied_bytes
        self.accepted.increment()
        self._submit(nbytes, self._finished, nbytes, self._epoch,
                     on_complete, args)
        return True

    def _finished(self, nbytes: int, epoch: int,
                  on_complete: Callable[..., None],
                  args: Tuple[Any, ...]) -> None:
        if epoch == self._epoch:
            self._occupied_bytes -= nbytes
        on_complete(*args)

    # ------------------------------------------------------------------
    @property
    def occupancy_bytes(self) -> int:
        return self._occupied_bytes

    def crash(self) -> int:
        """Discard everything buffered (it was volatile SRAM).

        Returns the number of bytes lost.  The device's own crash drops
        the in-flight accesses, so their completions never fire; bumping
        the epoch keeps any straggler from double-freeing.
        """
        lost = self._occupied_bytes
        self._occupied_bytes = 0
        self._epoch += 1
        return lost

    def recover(self) -> None:
        self._occupied_bytes = 0
        self._epoch += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "write" if self.is_write else "read"
        return (f"<LogQueue {self.name} {kind} "
                f"{self._occupied_bytes}/{self.capacity_bytes}B>")
