"""The load balancer: periodic metric polling + pluggable policies.

Every ``period_ns`` the balancer snapshots a :class:`ControlView` from
the deployment's live instruments — per-server processed throughput,
per-device log-queue highwater and cache hit rate, client in-flight
counts, heartbeat liveness when monitors are attached — and hands it to
each policy in order.  Policies return :class:`MigrateAction` requests,
which the balancer forwards to the (serializing)
:class:`~repro.control.migrator.SessionMigrator`.

Result-neutrality: a *started but idle* balancer (no policies firing,
no monitors) only schedules its own tick callbacks.  Ticks send no
frames, consume no simulation randomness, and emit no trace records,
so every other event keeps its relative ``(time, seq)`` order and the
run's observable results — traces, latency samples, store digests —
are byte-identical to a run without a control plane (the control
identity suite pins this).  Heartbeat monitors, by contrast, put real
frames on shared channels and are therefore strictly opt-in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Callable, Dict, Iterable, List, Mapping,
                    Optional, Sequence, Tuple)

from repro.control.migrator import SessionMigrator
from repro.control.placement import PlacementView
from repro.host.heartbeat import HeartbeatMonitor, MonitorEndpoint
from repro.host.node import HostNode
from repro.host.stackmodel import UDP, HostStack
from repro.obs.registry import register_with_sim
from repro.sim.clock import microseconds
from repro.sim.monitor import Counter

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pmnet_device import PMNetDevice
    from repro.experiments.deploy import Deployment
    from repro.host.server import PMNetServer
    from repro.host.sharded import RingClient
    from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class MigrateAction:
    """One policy decision: move shards from ``source`` to ``target``."""

    source: str
    target: str
    reason: str
    members: Optional[Tuple[str, ...]] = None


@dataclass
class ControlView:
    """One control-period snapshot of the deployment's health."""

    now_ns: int
    tick: int
    #: server -> requests processed since the previous tick.
    throughput: Dict[str, int]
    #: server -> requests processed since the start of the run.
    processed_total: Dict[str, int]
    #: server -> in-flight requests summed over all clients.
    outstanding: Dict[str, int]
    #: device -> write-log queue highwater (bytes).
    queue_high_water: Dict[str, int]
    #: device -> read-cache hit rate (devices without a cache omitted).
    cache_hit_rate: Dict[str, float]
    #: server -> heartbeat liveness (True everywhere without monitors).
    alive: Dict[str, bool]
    #: server -> ring members currently resolving to it.
    owners: Dict[str, List[str]]

    def live_targets(self, exclude: Iterable[str] = ()) -> List[str]:
        """Alive servers, least-loaded first (deterministic tie-break
        by name), excluding the given ones."""
        banned = set(exclude)
        candidates = [server for server, ok in self.alive.items()
                      if ok and server not in banned]
        return sorted(candidates,
                      key=lambda server: (self.processed_total[server],
                                          server))


class Policy:
    """Base class: inspect a view, propose migrations."""

    name = "policy"

    def decide(self, view: ControlView) -> List[MigrateAction]:
        raise NotImplementedError


class DrainRackPolicy(Policy):
    """Drain every server of one rack (planned upgrade): once past
    ``after_ns``, migrate each drained server's shards to the
    least-loaded live server outside the rack.  Fires once."""

    name = "drain-rack"

    def __init__(self, servers: Sequence[str], after_ns: int) -> None:
        self.servers = list(servers)
        self.after_ns = after_ns
        self.fired = False

    def decide(self, view: ControlView) -> List[MigrateAction]:
        if self.fired or view.now_ns < self.after_ns:
            return []
        self.fired = True
        actions = []
        targets = view.live_targets(exclude=self.servers)
        if not targets:
            return []
        for index, server in enumerate(self.servers):
            if not view.owners.get(server):
                continue  # already empty
            target = targets[index % len(targets)]
            actions.append(MigrateAction(server, target,
                                         reason=f"drain:{self.name}"))
        return actions


class HotShardPolicy(Policy):
    """Absorb load skew: when one server's per-tick throughput exceeds
    ``skew_ratio`` times the mean of the others (and clears a noise
    floor), spill half of its ring members to the coldest live server.
    A server that holds a single member cannot be split, so it is
    relocated wholesale to the coldest peer instead.  A cooldown stops
    migration thrash while the spill takes effect."""

    name = "hot-shard"

    def __init__(self, skew_ratio: float = 2.0, min_requests: int = 64,
                 cooldown_ns: int = microseconds(2000)) -> None:
        if skew_ratio <= 1.0:
            raise ValueError("skew_ratio must exceed 1.0")
        self.skew_ratio = skew_ratio
        self.min_requests = min_requests
        self.cooldown_ns = cooldown_ns
        self._last_fired_ns: Optional[int] = None

    def decide(self, view: ControlView) -> List[MigrateAction]:
        if (self._last_fired_ns is not None
                and view.now_ns - self._last_fired_ns < self.cooldown_ns):
            return []
        loads = sorted(view.throughput.items(),
                       key=lambda item: (-item[1], item[0]))
        if len(loads) < 2:
            return []
        hot_server, hot_load = loads[0]
        if hot_load < self.min_requests or not view.alive.get(hot_server):
            return []
        rest = [load for _, load in loads[1:]]
        mean_rest = sum(rest) / len(rest)
        if hot_load < self.skew_ratio * max(mean_rest, 1.0):
            return []
        owned = view.owners.get(hot_server, [])
        if not owned:
            return []
        targets = view.live_targets(exclude=(hot_server,))
        if not targets:
            return []
        if len(owned) >= 2:
            spill: Optional[tuple] = tuple(sorted(owned)[:len(owned) // 2])
        else:
            spill = None  # single member: relocate the whole server
        self._last_fired_ns = view.now_ns
        return [MigrateAction(hot_server, targets[0], reason="hot-shard",
                              members=spill)]


class FailoverPolicy(Policy):
    """Move a dead server's shards to live ones.  Needs heartbeat
    monitors (without them every server always reads alive).  Each
    outage triggers at most one failover; ownership is not moved back
    automatically on recovery."""

    name = "failover"

    def __init__(self) -> None:
        self._failed_over: Dict[str, bool] = {}

    def decide(self, view: ControlView) -> List[MigrateAction]:
        actions = []
        for server, ok in sorted(view.alive.items()):
            if ok:
                self._failed_over.pop(server, None)
                continue
            if self._failed_over.get(server):
                continue
            if not view.owners.get(server):
                continue
            targets = view.live_targets(exclude=(server,))
            if not targets:
                continue
            self._failed_over[server] = True
            actions.append(MigrateAction(server, targets[0],
                                         reason="failover"))
        return actions


class LoadBalancer:
    """Polls metrics on a control period and applies policies."""

    def __init__(self, sim: "Simulator", placement: PlacementView,
                 migrator: SessionMigrator,
                 clients: Sequence["RingClient"],
                 servers: Mapping[str, "PMNetServer"],
                 devices: Sequence["PMNetDevice"],
                 period_ns: int = microseconds(100),
                 policies: Sequence[Policy] = (),
                 monitors: Optional[Mapping[str, HeartbeatMonitor]] = None,
                 max_ticks: Optional[int] = None,
                 stop_when: Optional[Callable[[], bool]] = None) -> None:
        if period_ns <= 0:
            raise ValueError("control period must be positive")
        self.sim = sim
        self.placement = placement
        self.migrator = migrator
        self.clients = list(clients)
        self.servers = dict(servers)
        self.devices = list(devices)
        self.period_ns = period_ns
        self.policies = list(policies)
        self.monitors = dict(monitors) if monitors else {}
        self.max_ticks = max_ticks
        self.stop_when = stop_when
        self.ticks = Counter("control.ticks")
        self.migrations_requested = Counter("control.migrations_requested")
        self.actions: List[Tuple[int, MigrateAction]] = []
        self.views: List[ControlView] = []
        self.keep_views = False
        self._tick_count = 0
        self._last_processed: Dict[str, int] = {}
        self._running = False
        register_with_sim(sim, self)

    def instruments(self):
        return (self.ticks, self.migrations_requested)

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        for monitor in self.monitors.values():
            monitor.start()
        self.sim.schedule(self.period_ns, self._tick)

    def stop(self) -> None:
        self._running = False
        for monitor in self.monitors.values():
            monitor.stop()

    # ------------------------------------------------------------------
    def snapshot(self) -> ControlView:
        throughput = {}
        processed_total = {}
        for name, server in self.servers.items():
            total = int(server.processed)
            processed_total[name] = total
            throughput[name] = total - self._last_processed.get(name, 0)
            self._last_processed[name] = total
        outstanding = {name: 0 for name in self.servers}
        for client in self.clients:
            for name in self.servers:
                outstanding[name] += client.outstanding_for(name)
        queue_high_water = {}
        cache_hit_rate = {}
        for device in self.devices:
            queue_high_water[device.name] = \
                device.log.write_queue.high_water_bytes
            if device.cache is not None:
                cache_hit_rate[device.name] = device.cache.hit_rate()
        alive = {}
        for name in self.servers:
            monitor = self.monitors.get(name)
            alive[name] = monitor.target_alive if monitor is not None \
                else True
        owners = {name: self.placement.owners_resolving_to(name)
                  for name in self.servers}
        return ControlView(now_ns=self.sim.now, tick=self._tick_count,
                           throughput=throughput,
                           processed_total=processed_total,
                           outstanding=outstanding,
                           queue_high_water=queue_high_water,
                           cache_hit_rate=cache_hit_rate,
                           alive=alive, owners=owners)

    def _tick(self) -> None:
        if not self._running:
            return
        if self.stop_when is not None and self.stop_when():
            self.stop()
            return
        self._tick_count += 1
        self.ticks.increment()
        view = self.snapshot()
        if self.keep_views:
            self.views.append(view)
        for policy in self.policies:
            for action in policy.decide(view):
                if action.source == action.target:
                    continue
                self.actions.append((self.sim.now, action))
                self.migrations_requested.increment()
                self.migrator.migrate(action.source, action.target,
                                      members=action.members)
        if self.max_ticks is not None and self._tick_count >= self.max_ticks:
            self.stop()
            return
        self.sim.schedule(self.period_ns, self._tick)


@dataclass
class ControlPlane:
    """Everything :func:`attach_control_plane` wired together."""

    placement: PlacementView
    migrator: SessionMigrator
    balancer: LoadBalancer
    monitors: Dict[str, HeartbeatMonitor] = field(default_factory=dict)

    def start(self) -> None:
        self.balancer.start()

    def stop(self) -> None:
        self.balancer.stop()


def attach_control_plane(deployment: "Deployment",
                         period_ns: int = microseconds(100),
                         policies: Sequence[Policy] = (),
                         heartbeats: bool = False,
                         heartbeat_period_ns: int = microseconds(150),
                         miss_threshold: int = 3,
                         max_ticks: Optional[int] = None,
                         stop_when: Optional[Callable[[], bool]] = None
                         ) -> ControlPlane:
    """Wire a control plane onto a fabric deployment.

    Must run before the simulation starts.  ``heartbeats=True`` adds a
    ``control-monitor`` host with one :class:`HeartbeatMonitor` per
    shard server (real frames on the fabric — opt-in because it breaks
    byte-identity with control-free runs); without it, failover policies
    see every server as alive.  The plane is returned *unstarted*; call
    :meth:`ControlPlane.start` (scripted chaos drives the migrator
    directly and never starts the balancer).
    """
    fabric = deployment.fabric
    if fabric is None or getattr(fabric, "placement", None) is None:
        raise ValueError("the control plane needs a fabric deployment "
                         "with a shared placement view")
    sim = deployment.sim
    servers = {server.host.name: server for server in deployment.servers}
    monitors: Dict[str, HeartbeatMonitor] = {}
    if heartbeats:
        stack = HostStack(sim, "control-monitor",
                          deployment.config.client_stack, UDP)
        host = HostNode(sim, "control-monitor", stack)
        deployment.topology.add(host)
        attach_point = (deployment.switches[0] if deployment.switches
                        else deployment.devices[0])
        deployment.topology.connect(host, attach_point)
        deployment.topology.compute_routes()
        endpoint = MonitorEndpoint(host)
        for name in sorted(servers):
            monitors[name] = endpoint.attach(HeartbeatMonitor(
                sim, host, name, period_ns=heartbeat_period_ns,
                miss_threshold=miss_threshold))
    migrator = SessionMigrator(sim, fabric.placement, deployment.clients,
                               servers, tracer=deployment.tracer)
    balancer = LoadBalancer(sim, fabric.placement, migrator,
                            deployment.clients, servers,
                            deployment.devices, period_ns=period_ns,
                            policies=policies, monitors=monitors,
                            max_ticks=max_ticks, stop_when=stop_when)
    plane = ControlPlane(placement=fabric.placement, migrator=migrator,
                        balancer=balancer, monitors=monitors)
    deployment.control = plane
    return plane
