"""The load-balancing control plane (ROADMAP: live session migration).

Three cooperating pieces, analogous to a P4 load balancer's controller:

* :class:`~repro.control.placement.PlacementView` — the shared routing
  table: the consistent-hash ring plus live placement overrides.  Every
  client of a fabric deployment routes through one shared view, so a
  single mutation re-rings all of them atomically.
* :class:`~repro.control.migrator.SessionMigrator` — live-migrates a
  shard's sessions between servers with a quiesce -> drain -> transfer
  -> re-ring -> resume protocol that preserves per-session SeqNum
  ordering and the R1-R6 persistence rules.
* :class:`~repro.control.balancer.LoadBalancer` — polls the metrics
  registry (queue-depth highwater, per-server throughput, cache hit
  rate, heartbeat liveness) on a control period and decides rebalance
  actions through pluggable policies.

See ``docs/controlplane.md`` for the protocol and its invariants.
"""

from repro.control.placement import PlacementView
from repro.control.migrator import MigrationStats, SessionMigrator
from repro.control.balancer import (
    ControlPlane,
    ControlView,
    DrainRackPolicy,
    FailoverPolicy,
    HotShardPolicy,
    LoadBalancer,
    MigrateAction,
    attach_control_plane,
)

__all__ = [
    "ControlPlane",
    "ControlView",
    "DrainRackPolicy",
    "FailoverPolicy",
    "HotShardPolicy",
    "LoadBalancer",
    "MigrateAction",
    "MigrationStats",
    "PlacementView",
    "SessionMigrator",
    "attach_control_plane",
]
