"""Live session migration between shard servers.

Moves every shard currently owned by a *source* server to a *target*
server while the workload keeps running, without violating the paper's
persistence rules or per-session ordering:

1. **Freeze** — every client parks new operations destined for the
   source behind proxy events (FIFO per client, so per-key program
   order is preserved end to end).
2. **Drain** — wait until no client has an in-flight request toward the
   source.  Together with the freeze this quiesces the source's
   sessions at a clean boundary: everything sent has been acknowledged,
   nothing new is on the wire.
3. **Transfer** — copy the source store's committed entries for the
   moving shards into the target store, charged at the stores' real
   metered insert cost plus a per-item wire cost.  Entries still
   sitting in PMNet device redo logs are *not* copied: on recovery they
   replay to the original server, whose store remains part of the
   durable union the oracle checks.
4. **Re-ring** — one :meth:`PlacementView.assign` call re-points the
   moving ring members at the target for every client atomically.
5. **Thaw** — parked operations flush in FIFO order through the updated
   placement.  They enter the *target's existing* per-client sessions,
   so SeqNum streams stay per-session-continuous and the server-side
   reorder buffers never see a discontinuity.

Migrations are serialized: a second request queues until the active one
commits, so at most one server is frozen at a time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, List, Mapping, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.clock import microseconds
from repro.sim.event import SimEvent
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.control.placement import PlacementView
    from repro.host.server import PMNetServer
    from repro.host.sharded import RingClient
    from repro.sim.kernel import Simulator


@dataclass
class MigrationStats:
    """One completed (or in-flight) migration, with its timeline."""

    source: str
    target: str
    requested_at_ns: int
    started_at_ns: int
    drained_at_ns: Optional[int] = None
    completed_at_ns: Optional[int] = None
    moved_members: Tuple[str, ...] = ()
    requested_members: Optional[Tuple[str, ...]] = None
    items_copied: int = 0
    parked_released: int = 0
    transfer_cost_ns: int = 0

    def describe(self) -> str:
        return (f"migrate {self.source}->{self.target}: "
                f"{len(self.moved_members)} shards, "
                f"{self.items_copied} items, "
                f"{self.parked_released} parked ops")


class SessionMigrator:
    """Serialized live migration over a deployment's shared placement."""

    def __init__(self, sim: "Simulator", placement: "PlacementView",
                 clients: List["RingClient"],
                 servers: Mapping[str, "PMNetServer"],
                 tracer: Optional[Tracer] = None,
                 poll_ns: int = microseconds(5),
                 transfer_base_ns: int = microseconds(50),
                 per_item_wire_ns: int = microseconds(1)) -> None:
        self.sim = sim
        self.placement = placement
        self.clients = list(clients)
        self.servers = dict(servers)
        self.tracer = tracer
        self.poll_ns = poll_ns
        self.transfer_base_ns = transfer_base_ns
        self.per_item_wire_ns = per_item_wire_ns
        self.completed: List[MigrationStats] = []
        self._pending: Deque[Tuple[str, str, Optional[Tuple[str, ...]],
                                   SimEvent, int]] = deque()
        self._active: Optional[MigrationStats] = None

    @property
    def busy(self) -> bool:
        return self._active is not None or bool(self._pending)

    # ------------------------------------------------------------------
    def migrate(self, source: str, target: str,
                members: Optional[Tuple[str, ...]] = None) -> SimEvent:
        """Request a migration; returns an event succeeding with the
        :class:`MigrationStats` once the move commits.

        ``members`` restricts the move to a subset of the source's ring
        members (hot-shard spill); ``None`` moves everything the source
        currently owns.
        """
        for name in (source, target):
            if name not in self.servers:
                raise SimulationError(f"unknown migration server {name!r}")
        done = self.sim.event(f"migrate:{source}->{target}")
        self._pending.append((source, target, members, done, self.sim.now))
        if self._active is None:
            self._start_next()
        return done

    # ------------------------------------------------------------------
    def _start_next(self) -> None:
        if not self._pending:
            return
        source, target, members, done, requested_at = self._pending.popleft()
        stats = MigrationStats(source=source, target=target,
                               requested_at_ns=requested_at,
                               started_at_ns=self.sim.now,
                               requested_members=members)
        self._active = stats
        # Activate the freeze one instant ahead: ops issued at this
        # exact instant race this callback in the same-instant lane,
        # and that order shifts with the fold level.  A timestamped
        # gate keeps the park/no-park decision order-independent.
        freeze_from = self.sim.now + 1
        for client in self.clients:
            client.freeze(source, at_ns=freeze_from)
        self._trace("migration_freeze", source=source, target=target)
        # First drain check at the freeze-activation instant, after
        # every op issued at the freeze instant has hit the wire (and
        # is therefore counted by outstanding_for).  The +1 ns also
        # pushes the drain/commit schedule off the microsecond event
        # grid, so poll and thaw instants stop colliding with
        # data-plane arrivals.
        self.sim.schedule(1, self._poll_drain, stats, done)

    def _poll_drain(self, stats: MigrationStats, done: SimEvent) -> None:
        for client in self.clients:
            if client.outstanding_for(stats.source):
                self.sim.schedule(self.poll_ns, self._poll_drain, stats, done)
                return
        stats.drained_at_ns = self.sim.now
        self._trace("migration_drained", source=stats.source,
                    target=stats.target)
        self._transfer(stats, done)

    def _transfer(self, stats: MigrationStats, done: SimEvent) -> None:
        placement = self.placement
        owned = placement.owners_resolving_to(stats.source)
        if stats.requested_members is None:
            stats.moved_members = tuple(owned)
        else:
            # A requested member that no longer resolves to the source
            # (racing policies) is silently dropped, not re-stolen.
            stats.moved_members = tuple(
                member for member in stats.requested_members
                if member in owned)
        moving = set(stats.moved_members)
        cost = self.transfer_base_ns
        copied = 0
        source_store = getattr(self.servers[stats.source].handler,
                               "structure", None)
        target_store = getattr(self.servers[stats.target].handler,
                               "structure", None)
        if (stats.source != stats.target and moving
                and source_store is not None and target_store is not None):
            ring = placement.ring
            for key, value in list(source_store.items()):
                # Only entries whose shard is moving travel; stale
                # copies left by an earlier migration away from this
                # server resolve elsewhere and are skipped.
                if ring.lookup(key) not in moving:
                    continue
                cost += target_store.set(key, value) + self.per_item_wire_ns
                copied += 1
        stats.items_copied = copied
        stats.transfer_cost_ns = cost
        self.sim.schedule(cost, self._commit, stats, done)

    def _commit(self, stats: MigrationStats, done: SimEvent) -> None:
        self.placement.assign_members(stats.moved_members, stats.target)
        released = 0
        # Thaw one client per nanosecond.  Released batches serialize
        # on each client's uplink at the frame period, so two clients
        # thawed at the *same* instant produce identical downstream
        # arrival lattices — frames from different racks then tie at
        # shared devices and the tie-break order is a same-instant
        # scheduling artifact.  A 1 ns phase offset per client keeps
        # every lattice disjoint (offsets stay far below one frame
        # serialization time, so no latency is meaningfully charged).
        for idx, client in enumerate(self.clients):
            released += client.frozen_count(stats.source)
            if idx == 0:
                client.thaw(stats.source)
            else:
                self.sim.schedule(idx, client.thaw, stats.source)
        stats.parked_released = released
        stats.completed_at_ns = self.sim.now
        self._trace("migration_commit", source=stats.source,
                    target=stats.target, shards=len(stats.moved_members),
                    items=stats.items_copied, parked=released)
        self.completed.append(stats)
        self._active = None
        done.succeed(stats)
        self._start_next()

    def _trace(self, event: str, **details) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.sim.now, "control", event, **details)
