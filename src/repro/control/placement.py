"""Shared shard placement: the hash ring plus live overrides.

The consistent-hash ring fixes the *static* shard map at build time.
Live migration needs to re-point shards without rebuilding every
client, so routing goes through a :class:`PlacementView` shared by all
clients of a deployment: ``lookup(key)`` resolves the ring owner, then
applies at most one level of override (ring owner -> current owner).
A single :meth:`assign` call therefore re-rings every client
atomically, and an empty override table is byte-identical to routing
straight off the ring.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.hashring import HashRing


class PlacementView:
    """A mutable view of shard ownership over an immutable ring.

    Invariant: overrides are single-level.  ``_overrides[member]`` maps
    a *ring* member directly to the server currently owning its shards;
    chains (a -> b -> c) never form because :meth:`assign` re-points
    every member *resolving* to the source, not just the source itself.
    """

    def __init__(self, ring: HashRing) -> None:
        self.ring = ring
        self._overrides: Dict[str, str] = {}
        #: Bumped on every effective placement change; clients may use
        #: it to invalidate caches.
        self.version = 0

    # ------------------------------------------------------------------
    def lookup(self, key: object) -> str:
        """Current owner of ``key`` (ring owner, then override)."""
        owner = self.ring.lookup(key)
        return self._overrides.get(owner, owner)

    def ring_owner(self, key: object) -> str:
        """The static ring owner of ``key``, ignoring overrides."""
        return self.ring.lookup(key)

    def resolve(self, member: str) -> str:
        """Current owner of ring member ``member``'s shards."""
        return self._overrides.get(member, member)

    def owners_resolving_to(self, server: str) -> List[str]:
        """Ring members whose shards currently live on ``server``."""
        return [member for member in self.ring.members
                if self.resolve(member) == server]

    @property
    def overrides(self) -> Dict[str, str]:
        """A copy of the live override table (ring member -> owner)."""
        return dict(self._overrides)

    # ------------------------------------------------------------------
    def assign(self, source: str, target: str) -> Tuple[str, ...]:
        """Move every shard currently owned by ``source`` to ``target``.

        Returns the ring members whose shards moved (empty when
        ``source`` owned nothing).  Overrides stay single-level: a
        member moving back to its own ring position drops its entry
        instead of recording an identity mapping.
        """
        if target not in self.ring.members:
            raise ValueError(f"unknown placement target {target!r}")
        if source == target:
            return ()
        moved = []
        for member in self.ring.members:
            if self.resolve(member) != source:
                continue
            if member == target:
                self._overrides.pop(member, None)
            else:
                self._overrides[member] = target
            moved.append(member)
        if moved:
            self.version += 1
        return tuple(moved)

    def assign_members(self, members: Tuple[str, ...],
                       target: str) -> Tuple[str, ...]:
        """Move the listed ring members' shards to ``target`` (the
        member-granular form :meth:`assign` reduces to).  Returns the
        members whose owner actually changed."""
        if target not in self.ring.members:
            raise ValueError(f"unknown placement target {target!r}")
        moved = []
        for member in members:
            if member not in self.ring.members:
                raise ValueError(f"unknown ring member {member!r}")
            if self.resolve(member) == target:
                continue
            if member == target:
                self._overrides.pop(member, None)
            else:
                self._overrides[member] = target
            moved.append(member)
        if moved:
            self.version += 1
        return tuple(moved)

    def describe(self) -> str:
        if not self._overrides:
            return "placement: ring (no overrides)"
        parts = ", ".join(f"{member}->{owner}"
                          for member, owner in sorted(self._overrides.items()))
        return f"placement v{self.version}: {parts}"
