"""PMNet: In-Network Data Persistence (ISCA 2021) — a full reproduction.

The public API re-exports the pieces a downstream user needs:

* :class:`~repro.config.SystemConfig` — every calibration constant;
* the declarative :class:`~repro.experiments.deploy.DeploymentSpec`
  and its :func:`~repro.experiments.deploy.build` entry point
  (baseline, PMNet switch/NIC, sharded, multi-rack fabric);
* the Table I client/server libraries;
* workloads (PMDK stores, PM-Redis, Twitter, TPC-C, YCSB);
* the failure injector and recovery scenarios;
* the experiment registry regenerating every figure/table.

Quickstart::

    from repro import DeploymentSpec, SystemConfig, build
    from repro.workloads import YCSBConfig, make_op_maker

    spec = DeploymentSpec(placement="switch")
    deployment = build(spec, SystemConfig().with_clients(4))
    stats = run_closed_loop(deployment,
                            make_op_maker(YCSBConfig(update_ratio=1.0)),
                            requests_per_client=100)
    print(stats.mean_latency_us(), "us mean update latency")
"""

from repro.config import (
    DEFAULT_CONFIG,
    SystemConfig,
    baseline_rtt_estimate,
    pmnet_rtt_estimate,
)
from repro.core import (
    NO_PMNET,
    SINGLE_LOG,
    PMNetDevice,
    ReadCache,
    ReplicationPolicy,
)
from repro.errors import ReproError
from repro.experiments import (
    Deployment,
    DeploymentSpec,
    build,
    build_client_server,
    build_pmnet_nic,
    build_pmnet_switch,
    run_closed_loop,
    run_sessions,
)
from repro.host import IdealHandler, PMNetClient, PMNetServer, RequestHandler
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SystemConfig", "DEFAULT_CONFIG",
    "baseline_rtt_estimate", "pmnet_rtt_estimate",
    "Simulator",
    "PMNetDevice", "ReadCache", "ReplicationPolicy", "SINGLE_LOG",
    "NO_PMNET",
    "PMNetClient", "PMNetServer", "RequestHandler", "IdealHandler",
    "Deployment", "DeploymentSpec", "build",
    "build_client_server", "build_pmnet_switch", "build_pmnet_nic",
    "run_closed_loop", "run_sessions",
    "ReproError",
]
