"""The ``compiled`` scheduler backend: an exec-specialized drain loop.

``PMNET_KERNEL=compiled`` resolves to this module (the hook point the
kernel reserved when the tiered scheduler landed).  The container this
repository targets has no Cython/mypyc toolchain and a single core, so
the backend is the *pure-Python* half of the ROADMAP's compiled-hot-path
item: instead of compiling to C, it compiles to *specialized Python* —
``run_loop`` generates (``exec``) a drain loop tailored to the exact
Simulator configuration and caches it for the life of the process.

What generation buys over the hand-written tiered loop
------------------------------------------------------

* **Config-dead branches are eliminated at generation time.**  The
  tiered loop tests ``check_until``, the event budget, and the profiler
  on every event even when the run has none of them; the generated loop
  simply omits those tests.  (The loadgen/chaos drive — ``run()`` with
  no bound, no budget, no profiler — gets the leanest variant.)
* **The horizon is constant-folded.**  Tier routing for re-sequenced
  deferred records compares against a literal, not an attribute load.
* **Cancelled-check and deferred-hop walks are inlined.**  The tiered
  loop calls ``q._drop_cancelled()`` / ``q.resequence()`` per skipped
  record; the generated loop performs the counter arithmetic and the
  hop re-insertion inline on already-hoisted locals.
* **The ``until`` check is hoisted to instant boundaries.**  Within one
  drain instant the queue clock cannot move, so the bound is checked
  when the instant is entered, not per event.  (The live-count guard on
  the ``self._now = until`` pin is preserved exactly — see
  ``Simulator._run_tiered`` for why it exists.)
* **Tier cursors and lengths live in locals.**  The claimed bucket is
  append-frozen (same-instant pushes join the lane), so its length is
  hoisted once per claim; per-tier pop counters are derived from cursor
  deltas at instant boundaries instead of incremented per event.
* **``stop()`` is polled only after user code runs.**  Only a callback
  can set the flag, so non-executing iterations skip the test.

Contract and regeneration
-------------------------

:class:`CompiledEventQueue` subclasses :class:`TieredEventQueue`
unchanged: pushes, cancellation, compaction, ``step()``/``peek_time``
and ``tier_stats()`` are shared code, so everything outside ``run()``
is trivially identical to ``tiered`` and ``kernel_stats()`` reports
real tier numbers.  A loop variant is generated once per
``(until?, budget?, profiler?, horizon)`` key and cached at module
level; attaching a profiler or changing ``PMNET_KERNEL_HORIZON``
therefore regenerates (once), and every Simulator with the same shape
reuses the cached function.  Ordering, tie-breaking, counter
writebacks, and the final value of ``sim.now`` are bit-for-bit those of
the tiered loop — guarded by the differential programs in
``tests/sim/test_scheduler_equivalence.py`` and the identity suites in
``tests/integration/test_kernel_backend_identity.py``.

An ahead-of-time C extension (mypyc/Cython) remains an optional drop-in
behind the same module contract: export ``make_event_queue()`` and
``run_loop(sim, until, max_events)`` and the kernel will use it.
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.sim.event import (QUEUE_BACKENDS, ScheduledCall,
                             TieredEventQueue)

__all__ = ["CompiledEventQueue", "make_event_queue", "run_loop",
           "bind_scheduling", "generated_variants"]


class CompiledEventQueue(TieredEventQueue):
    """Tiered queue driven by a generated drain loop.

    The structural contract (lane / calendar / far tier, cursors,
    counters) is inherited unchanged — specialization lives entirely in
    the generated ``run_loop`` and push closures, which hoist these
    structures as locals exactly like ``Simulator._run_tiered`` does.
    """

    backend = "compiled"
    __slots__ = ()


# Let the generic factory build it too (`make_event_queue("compiled")`)
# once this module has been imported by the kernel.
QUEUE_BACKENDS.setdefault("compiled", CompiledEventQueue)


def make_event_queue(initial=None, horizon: Optional[int] = None) -> CompiledEventQueue:
    """Build the queue the kernel pairs with :func:`run_loop`."""
    return CompiledEventQueue(initial, horizon=horizon)


# ---------------------------------------------------------------------------
# Loop generation
# ---------------------------------------------------------------------------

#: Generated drain loops, keyed by
#: ``(check_until, has_budget, has_profiler, horizon)``.
_LOOPS: dict = {}

# The specialization fragments.  Indentation matters: each fragment is
# pre-indented for its splice point in the template below.
_ENTRY_UNTIL = """\
    if qnow > until:
        # The queue clock already sits past the bound (a previous run
        # went further).  Everything pending is at or beyond qnow, so
        # pin and stop exactly as the per-branch checks would.
        if q._size > 0:
            sim._now = until
        return
"""

_ADV_UNTIL = """\
                if time > until:
                    if q._size - executed > 0:
                        sim._now = until
                    break
"""

_BUDGET = """\
                if executed == budget:
                    break
"""

_PROFILE = """\
            profiler.record(call.callback)
"""

# The template mirrors Simulator._run_tiered statement for statement;
# every divergence is a generation-time specialization argued in the
# module docstring.  {entry_until}/{adv_until}/{budget}/{profile} are
# spliced per variant; {horizon} is the constant-folded routing bound.
_LOOP_TEMPLATE = """\
def _drain(sim, q, until, budget, profiler,
           heappop=heappop, heappush=heappush):
    lane = q._lane
    buckets = q._buckets
    times = q._times
    far = q._far
    cur = q._cur
    cur_pos = q._cur_pos
    cur_len = len(cur)
    lane_pos = q._lane_pos
    qnow = q._qnow
{entry_until}\
    executed = 0
    far_pops = reseqs = 0
    # Lane/near pops are derived from cursor travel: seeded with the
    # entry offsets, adjusted at instant boundaries, settled from the
    # final cursor positions in the writeback.
    lane_pops = -lane_pos
    near_pops = -cur_pos
    lane_checked = False
    try:
        while True:
            if cur_pos < cur_len:
{budget}\
                call = cur[cur_pos]
                cur_pos += 1
            elif lane_pos < len(lane):
{budget}\
                if lane_checked:
                    call = lane[lane_pos]
                    lane_pos += 1
                elif far and far[0][0] == qnow:
                    call = heappop(far)[2]
                    far_pops += 1
                elif times and times[0] == qnow:
                    heappop(times)
                    bucket = buckets.pop(qnow)
                    if type(bucket) is list:
                        near_pops += cur_pos
                        cur = q._cur = bucket
                        cur_pos = 1
                        cur_len = len(bucket)
                        call = bucket[0]
                    else:
                        near_pops += 1
                        call = bucket
                else:
                    lane_checked = True
                    call = lane[lane_pos]
                    lane_pos += 1
            else:
                if lane:
                    lane_pops += lane_pos
                    del lane[:]
                    lane_pos = 0
                lane_checked = False
                from_far = False
                if times:
                    time = times[0]
                    if far and far[0][0] <= time:
                        time = far[0][0]
                        from_far = True
                elif far:
                    time = far[0][0]
                    from_far = True
                else:
                    break
{adv_until}\
{budget}\
                if from_far:
                    call = heappop(far)[2]
                    far_pops += 1
                else:
                    heappop(times)
                    bucket = buckets.pop(time)
                    if type(bucket) is list:
                        near_pops += cur_pos
                        cur = q._cur = bucket
                        cur_pos = 1
                        cur_len = len(bucket)
                        call = bucket[0]
                    else:
                        near_pops += 1
                        call = bucket
                qnow = q._qnow = time
            if call.cancelled:
                if q._cancelled > 0:
                    q._cancelled -= 1
                continue
            defer = call.defer_ns
            if defer:
                seq = q._seq
                q._seq = seq + 1
                if type(defer) is tuple:
                    delay = defer[0]
                    call.defer_ns = defer[1] if len(defer) == 2 else defer[1:]
                else:
                    delay = defer
                    call.defer_ns = 0
                rtime = call.time + delay
                call.time = rtime
                call.seq = seq
                delta = rtime - qnow
                if delta == 0:
                    lane.append(call)
                elif delta < {horizon}:
                    bucket = buckets.get(rtime)
                    if bucket is None:
                        buckets[rtime] = call
                        heappush(times, rtime)
                    elif type(bucket) is list:
                        bucket.append(call)
                    else:
                        buckets[rtime] = [bucket, call]
                else:
                    heappush(far, (rtime, seq, call))
                reseqs += 1
                continue
            call.owner = None
            sim._now = qnow
            executed += 1
{profile}\
            call.callback(*call.args)
            if sim._stopped:
                break
    finally:
        q._cur_pos = cur_pos
        q._lane_pos = lane_pos
        q._size -= executed
        q.lane_pops += lane_pops + lane_pos
        q.near_pops += near_pops + cur_pos
        q.far_pops += far_pops
        q.resequences += reseqs
        sim.executed_events += executed
"""


def _generate_loop(check_until: bool, has_budget: bool,
                   has_profiler: bool, horizon: int):
    """Exec one drain-loop variant with config-dead branches omitted."""
    source = _LOOP_TEMPLATE.format(
        entry_until=_ENTRY_UNTIL if check_until else "",
        adv_until=_ADV_UNTIL if check_until else "",
        budget=_BUDGET if has_budget else "",
        profile=_PROFILE if has_profiler else "",
        horizon=horizon,
    )
    namespace = {"heappop": heapq.heappop, "heappush": heapq.heappush}
    exec(compile(source, f"<compiled kernel loop "
                         f"until={check_until} budget={has_budget} "
                         f"profiler={has_profiler} horizon={horizon}>",
                 "exec"), namespace)
    return namespace["_drain"]


def run_loop(sim, until: Optional[int], max_events: Optional[int]) -> None:
    """Drain ``sim``'s queue with the variant matching this run's shape.

    Called by :meth:`Simulator.run`; reentrancy/``_stopped`` reset and
    the final ``now`` return stay in the kernel.
    """
    q = sim._queue
    profiler = sim._profiler
    key = (until is not None, max_events is not None, profiler is not None,
           q._horizon)
    fn = _LOOPS.get(key)
    if fn is None:
        fn = _LOOPS[key] = _generate_loop(*key)
    fn(sim, q, until, -1 if max_events is None else max_events, profiler)


def generated_variants() -> tuple:
    """Keys of the loop variants generated so far (test/debug hook)."""
    return tuple(sorted(_LOOPS))


# ---------------------------------------------------------------------------
# Push-side specialization
# ---------------------------------------------------------------------------

#: Generated ``(schedule, call_soon)`` factories, keyed by horizon.
_BINDERS: dict = {}

# Mirrors Simulator._bind_fast_scheduling's tiered closures with the
# horizon constant-folded into the routing comparison.  Semantics are
# identical to TieredEventQueue.push; any change there must be repeated
# here (and in the kernel's closures).
_BIND_TEMPLATE = """\
def _make(sim, q, new, record_cls, heappush, SimulationError):
    lane = q._lane
    buckets = q._buckets
    times = q._times
    far = q._far

    def schedule(delay, callback, *args):
        if delay < 0:
            raise SimulationError(
                f"cannot schedule {{delay}}ns into the past")
        time = sim._now + delay
        seq = q._seq
        q._seq = seq + 1
        call = new(record_cls)
        call.time = time
        call.seq = seq
        call.callback = callback
        call.args = args
        call.cancelled = False
        call.defer_ns = 0
        call.owner = q
        q._size += 1
        delta = time - q._qnow
        if delta == 0:
            lane.append(call)
        elif delta < {horizon}:
            bucket = buckets.get(time)
            if bucket is None:
                buckets[time] = call
                heappush(times, time)
            elif type(bucket) is list:
                bucket.append(call)
            else:
                buckets[time] = [bucket, call]
        else:
            heappush(far, (time, seq, call))
        return call

    def call_soon(callback, *args):
        time = sim._now
        seq = q._seq
        q._seq = seq + 1
        call = new(record_cls)
        call.time = time
        call.seq = seq
        call.callback = callback
        call.args = args
        call.cancelled = False
        call.defer_ns = 0
        call.owner = q
        q._size += 1
        if time == q._qnow:
            # The overwhelmingly common case: a wakeup at the instant
            # being drained goes straight to the lane.
            lane.append(call)
        else:
            # Between runs the sim clock can sit past the queue clock
            # (after run(until=...)); route generically.
            delta = time - q._qnow
            if delta < {horizon}:
                bucket = buckets.get(time)
                if bucket is None:
                    buckets[time] = call
                    heappush(times, time)
                elif type(bucket) is list:
                    bucket.append(call)
                else:
                    buckets[time] = [bucket, call]
            else:
                heappush(far, (time, seq, call))
        return call

    return schedule, call_soon
"""


def bind_scheduling(sim) -> None:
    """Install horizon-specialized ``schedule``/``call_soon`` closures.

    The kernel calls this for the compiled backend in place of
    ``_bind_fast_scheduling``; the causality guard, returned handle,
    and routing are exactly those of ``TieredEventQueue.push``.
    """
    from repro.errors import SimulationError

    q = sim._queue
    horizon = q._horizon
    factory = _BINDERS.get(horizon)
    if factory is None:
        namespace: dict = {}
        exec(compile(_BIND_TEMPLATE.format(horizon=horizon),
                     f"<compiled kernel push horizon={horizon}>", "exec"),
             namespace)
        factory = _BINDERS[horizon] = namespace["_make"]
    sim.schedule, sim.call_soon = factory(
        sim, q, ScheduledCall.__new__, ScheduledCall, heapq.heappush,
        SimulationError)
