"""Coroutine processes on top of the event kernel.

A *process* is a Python generator that models a sequential activity in
simulated time (a client issuing requests, a server draining a queue).  The
generator yields things it wants to wait for:

* ``int`` — sleep that many nanoseconds;
* :class:`~repro.sim.event.SimEvent` — wait until the event triggers; the
  ``yield`` expression evaluates to the event's value (or raises its
  exception inside the generator, where it can be caught);
* :class:`AllOf` / :class:`AnyOf` — composite waits.

A process is itself waitable: other processes may ``yield proc.completion``
to join it.  ``interrupt()`` raises :class:`Interrupted` inside the process
at its current wait point — used by the failure injector to kill hosts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, Optional, Sequence

from repro.errors import ProcessError
from repro.sim.event import SimEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class Interrupted(Exception):
    """Raised inside a process that has been interrupted.

    The ``cause`` attribute carries whatever the interrupter supplied
    (e.g. a failure description).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class AllOf:
    """Composite wait: resumes when *all* given events have triggered.

    The yield expression evaluates to a list of the events' values in the
    order given.  If any event fails, the first failure propagates.
    """

    __slots__ = ("events",)

    def __init__(self, events: Sequence[SimEvent]) -> None:
        self.events = list(events)


class AnyOf:
    """Composite wait: resumes when *any* given event triggers.

    The yield expression evaluates to ``(index, value)`` of the first event
    to trigger.  A failure of the first-triggering event propagates.
    """

    __slots__ = ("events",)

    def __init__(self, events: Sequence[SimEvent]) -> None:
        self.events = list(events)


class Process:
    """A running coroutine bound to a simulator.

    Created via :meth:`repro.sim.kernel.Simulator.spawn`.
    """

    def __init__(self, sim: "Simulator", generator: Iterator[Any],
                 name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise ProcessError(
                f"spawn() needs a generator, got {type(generator).__name__}; "
                "did you call the process function without arguments?")
        self._sim = sim
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: Triggers when the process returns (value) or raises (exception).
        self.completion = SimEvent(sim, f"completion:{self.name}")
        self._waiting_on: Optional[SimEvent] = None
        self._sleep_handle = None
        self._interrupt_pending: Optional[Interrupted] = None
        # First resume happens "now" so spawn order controls run order.
        sim.call_soon(self._resume, None, None)

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether the process is still executing."""
        return not self.completion.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupted` inside the process at its wait point."""
        if not self.alive:
            return
        exc = Interrupted(cause)
        if self._sleep_handle is not None:
            # Sleeping on a plain delay: cancel the wakeup and resume with
            # the interrupt instead.
            self._sleep_handle.cancel()
            self._sleep_handle = None
            self._sim.call_soon(self._resume, None, exc)
        elif self._waiting_on is not None:
            waited, self._waiting_on = self._waiting_on, None
            # Detach by resuming with the interrupt instead of the event.
            self._sim.call_soon(self._resume, None, exc)
        else:
            # Not yet waiting (e.g. interrupt before first resume): remember.
            self._interrupt_pending = exc

    # ------------------------------------------------------------------
    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if self.completion.triggered:
            return
        if self._interrupt_pending is not None and exc is None:
            exc, self._interrupt_pending = self._interrupt_pending, None
        try:
            if exc is not None:
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.completion.succeed(stop.value)
            return
        except Interrupted as interrupted:
            # An uncaught interrupt terminates the process quietly: it is
            # the normal way the failure injector kills host processes.
            self.completion.succeed(interrupted)
            return
        except Exception as error:
            self.completion.fail(ProcessError(
                f"process {self.name!r} raised {error!r}").with_traceback(
                    error.__traceback__))
            raise
        self._wait_for(target)

    def _wait_for(self, target: Any) -> None:
        if isinstance(target, int):
            # Plain delay: schedule the resume directly instead of minting
            # a timeout SimEvent (saves an event and two allocations on
            # the most common wait in the system).
            self._sleep_handle = self._sim.schedule(target, self._end_sleep)
            return
        if isinstance(target, Process):
            target = target.completion
        if isinstance(target, AllOf):
            target = _all_of(self._sim, target.events)
        elif isinstance(target, AnyOf):
            target = _any_of(self._sim, target.events)
        if not isinstance(target, SimEvent):
            self._resume(None, ProcessError(
                f"process {self.name!r} yielded unwaitable {target!r}"))
            return
        self._waiting_on = target
        target.add_callback(self._on_event)

    def _end_sleep(self) -> None:
        self._sleep_handle = None
        self._resume(None, None)

    def _on_event(self, event: SimEvent) -> None:
        if self._waiting_on is not event:
            return  # stale wakeup after an interrupt detached us
        self._waiting_on = None
        if event.exception is not None:
            self._resume(None, event.exception)
        else:
            self._resume(event.value, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "done"
        return f"<Process {self.name!r} {state}>"


def _all_of(sim: "Simulator", events: Sequence[SimEvent]) -> SimEvent:
    """Combine events into one that succeeds when all succeed."""
    combined = SimEvent(sim, "all_of")
    if not events:
        combined.succeed([])
        return combined
    remaining = {"count": len(events)}

    def on_done(_event: SimEvent) -> None:
        if combined.triggered:
            return
        failed = next((e for e in events
                       if e.triggered and e.exception is not None), None)
        if failed is not None:
            combined.fail(failed.exception)  # type: ignore[arg-type]
            return
        remaining["count"] -= 1
        if remaining["count"] == 0:
            combined.succeed([e.value for e in events])

    for event in events:
        event.add_callback(on_done)
    return combined


def _any_of(sim: "Simulator", events: Sequence[SimEvent]) -> SimEvent:
    """Combine events into one that succeeds when the first succeeds."""
    combined = SimEvent(sim, "any_of")
    if not events:
        raise ProcessError("AnyOf requires at least one event")

    def on_done(event: SimEvent) -> None:
        if combined.triggered:
            return
        if event.exception is not None:
            combined.fail(event.exception)
        else:
            combined.succeed((events.index(event), event.value))

    for event in events:
        event.add_callback(on_done)
    return combined
