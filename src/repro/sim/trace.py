"""Structured trace log for debugging simulated runs.

A :class:`Tracer` collects ``(time, component, event, details)`` records.
It is off by default (zero overhead beyond an ``if``); experiments and
tests enable it to assert on causal sequences, and the CLI can dump it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.sim.clock import format_time


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence inside the simulation."""

    time_ns: int
    component: str
    event: str
    details: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        detail = " ".join(f"{k}={v}" for k, v in self.details.items())
        return f"[{format_time(self.time_ns)}] {self.component}: {self.event} {detail}".rstrip()


class Tracer:
    """Collects :class:`TraceRecord` entries when enabled."""

    def __init__(self, enabled: bool = False, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self.records: List[TraceRecord] = []
        self.dropped = 0

    def emit(self, time_ns: int, component: str, event: str, **details: Any) -> None:
        """Record one occurrence (no-op when disabled)."""
        if not self.enabled:
            return
        if self.capacity is not None and len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(TraceRecord(time_ns, component, event, details))

    def filter(self, component: Optional[str] = None,
               event: Optional[str] = None) -> Iterator[TraceRecord]:
        """Iterate records matching the given component and/or event name."""
        for record in self.records:
            if component is not None and record.component != component:
                continue
            if event is not None and record.event != event:
                continue
            yield record

    def count(self, component: Optional[str] = None,
              event: Optional[str] = None) -> int:
        return sum(1 for _record in self.filter(component, event))

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    def dump(self) -> str:
        """All records as one newline-joined string."""
        return "\n".join(str(record) for record in self.records)


#: Deprecated process-wide fallback tracer, kept importable for one
#: release.  Components now inherit their simulator's injected tracer
#: (``Simulator(obs=Observability(trace=True))``) instead of mutating a
#: module global; accessing ``GLOBAL_TRACER`` warns and returns this
#: always-disabled instance.
_DEPRECATED_GLOBAL_TRACER = Tracer(enabled=False)


def __getattr__(name: str):  # pragma: no cover - exercised via import
    if name == "GLOBAL_TRACER":
        import warnings

        warnings.warn(
            "GLOBAL_TRACER is deprecated: inject a Tracer via "
            "Simulator(obs=Observability(trace=True)) or a component's "
            "tracer= argument instead",
            DeprecationWarning, stacklevel=2)
        return _DEPRECATED_GLOBAL_TRACER
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
