"""Events and the pending-event queue of the discrete-event kernel.

Two kinds of "event" exist and are deliberately distinct:

* :class:`ScheduledCall` — an internal queue record: *at time T, invoke this
  callback*.  Users normally never touch these directly.
* :class:`SimEvent` — a one-shot synchronization object (in the style of
  simpy events or asyncio futures): processes wait on it; someone succeeds
  or fails it exactly once, waking all waiters with a value or an error.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SimulationError


class ScheduledCall:
    """A callback registered to run at a fixed simulated time.

    Instances are ordered by ``(time, seq)`` so that simultaneous events
    run in scheduling order, which keeps runs deterministic.
    """

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running when its time arrives."""
        self.cancelled = True

    def __lt__(self, other: "ScheduledCall") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledCall t={self.time} seq={self.seq} {state}>"


class EventQueue:
    """Min-heap of :class:`ScheduledCall` records ordered by time."""

    def __init__(self) -> None:
        self._heap: list[ScheduledCall] = []
        self._seq = 0

    def push(self, time: int, callback: Callable[[], None]) -> ScheduledCall:
        """Enqueue ``callback`` to run at ``time``; returns a cancellable handle."""
        call = ScheduledCall(time, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, call)
        return call

    def pop(self) -> ScheduledCall:
        """Remove and return the earliest non-cancelled call.

        Raises :class:`IndexError` if the queue is empty (after dropping
        cancelled entries).
        """
        while self._heap:
            call = heapq.heappop(self._heap)
            if not call.cancelled:
                return call
        raise IndexError("pop from empty EventQueue")

    def peek_time(self) -> Optional[int]:
        """Time of the earliest pending call, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for call in self._heap if not call.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None


class SimEvent:
    """A one-shot, waitable occurrence carrying a value or an exception.

    Lifecycle: *pending* → (``succeed`` | ``fail``) → *triggered*.
    Triggering twice is an error: it almost always indicates two components
    believe they own the same completion.
    """

    __slots__ = ("_sim", "_callbacks", "_triggered", "_value", "_exception", "name")

    def __init__(self, sim: Any, name: str = "") -> None:
        self._sim = sim
        self._callbacks: list[Callable[["SimEvent"], None]] = []
        self._triggered = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self.name = name

    @property
    def triggered(self) -> bool:
        """Whether the event has been succeeded or failed."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """Whether the event was triggered successfully."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The success value; raises if the event failed or is pending."""
        if not self._triggered:
            raise SimulationError(f"event {self.name!r} has not been triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, or ``None``."""
        return self._exception

    def succeed(self, value: Any = None) -> "SimEvent":
        """Trigger the event successfully, waking waiters with ``value``."""
        self._trigger(value, None)
        return self

    def fail(self, exception: BaseException) -> "SimEvent":
        """Trigger the event with an error, raising it in each waiter."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() requires an exception, got {exception!r}")
        self._trigger(None, exception)
        return self

    def _trigger(self, value: Any, exception: Optional[BaseException]) -> None:
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        self._exception = exception
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            # Callbacks run through the kernel "now" so that waiter wakeups
            # interleave with other same-time events deterministically.
            self._sim.call_soon(callback, self)

    def add_callback(self, callback: Callable[["SimEvent"], None]) -> None:
        """Run ``callback(event)`` once triggered (immediately if already)."""
        if self._triggered:
            self._sim.call_soon(callback, self)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self._triggered:
            state = "failed" if self._exception is not None else "ok"
        return f"<SimEvent {self.name!r} {state}>"
