"""Events and the pending-event queues of the discrete-event kernel.

Two kinds of "event" exist and are deliberately distinct:

* :class:`ScheduledCall` — an internal queue record: *at time T, invoke this
  callback with these args*.  Users normally never touch these directly.
* :class:`SimEvent` — a one-shot synchronization object (in the style of
  simpy events or asyncio futures): processes wait on it; someone succeeds
  or fails it exactly once, waking all waiters with a value or an error.

The queue is the hottest data structure in the simulator, so two
interchangeable backends exist behind one contract (select with
``PMNET_KERNEL``; see :func:`repro.config.kernel_backend`):

* :class:`HeapEventQueue` — a single binary heap of ``(time, seq, call)``
  tuples.  Every sift comparison is a C-level tuple compare; ``seq`` is
  unique, so the ``call`` field never participates in a comparison and
  FIFO order among same-time events is preserved.  This is the reference
  implementation the differential suites compare against.
* :class:`TieredEventQueue` — the default: a FIFO *now lane* for
  same-instant events (``call_soon`` wakeups, span hooks, inline
  dispatch), a *calendar* of per-nanosecond buckets for timers within a
  near horizon (link propagation, serialization, pipeline stages), and
  the binary heap as the *far tier* (retransmission timers, think time,
  chaos fault windows).  Lane and calendar inserts are plain list
  appends — no sifting, no wrapper-tuple allocation.

**The ordering contract** (shared by both backends, and what every
fold-identity and determinism suite ultimately rests on):

1. every push allocates a monotonically increasing ``seq``, so the
   execution order is the exact total order by ``(time, seq)``;
2. records are mutated in place but never physically moved by
   revocation (``net/link.py`` rewrites a folded record's callback at
   its existing queue slot) — both backends keep a record's slot
   identity stable between push and pop;
3. cancelled records never execute and never count;
4. a *deferred* record re-sequences (fresh seq at its surfacing
   instant) instead of executing — see :meth:`ScheduledCall` below.

Why the tiered order matches the heap order without any cross-tier seq
comparison: let ``Q`` be the time of the most recently popped record
(monotone).  A push at time ``T`` routes by its distance ``T - Q`` —
``== 0`` to the lane, ``< horizon`` to the calendar, else to the far
tier.  Since ``Q`` only grows, for a fixed ``T`` all far-tier pushes
(distance >= horizon) happen strictly before all calendar pushes
(distance in (0, horizon)), which happen strictly before all lane
pushes (distance 0); seqs are allocated chronologically, so at equal
time the drain priority is far tier, then calendar bucket, then lane —
by construction, with no seq inspected.  Within a bucket and within the
lane, appends happen in seq order, so plain FIFO consumption is exact.
The tiered backend therefore requires pushes not to precede ``Q``
(scheduling into the past); the kernel's causality guards enforce this
for all simulator-mediated scheduling.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional, Tuple

from repro.errors import SimulationError

#: Compaction trigger (the cancelled-entry purge): compact when more
#: cancelled records than live ones linger in the structures *and* the
#: absolute count is worth the rebuild.  Mirrors asyncio's cancelled
#: timer-handle purge; retransmission-heavy chaos runs otherwise drag
#: thousands of dead records through every sift.
COMPACT_MIN_CANCELLED = 64


class ScheduledCall:
    """A callback (plus positional args) registered to run at a fixed time.

    Instances are ordered by ``(time, seq)`` so that simultaneous events
    run in scheduling order, which keeps runs deterministic.

    ``defer_ns`` marks a *deferred* (latency-folded) record: it first
    surfaces at ``time`` — ordered by the seq allocated when it was
    scheduled, exactly like the intermediate callback it replaces — and
    the kernel then re-sequences it ``defer_ns`` later with a freshly
    allocated seq, never invoking a callback at the intermediate hop.
    Because both seq allocations happen at the same virtual instants as
    the unfolded two-event chain, same-nanosecond tie-breaking against
    unrelated events is preserved bit for bit; only the intermediate
    callback execution (and its record allocation) disappears.

    ``defer_ns`` may also be a *tuple* of delays — a chain of deferred
    hops.  Each re-sequencing consumes one element, allocating one seq
    per hop at the hop's virtual instant, so an n-delay fixed-latency
    pipeline collapses to a single executed event while remaining
    order-identical to the n-event original.

    ``owner`` is the queue currently holding the record (``None`` once
    popped): :meth:`cancel` notifies it so the live-entry counter stays
    O(1)-exact and cancel-heavy schedules trigger compaction.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "defer_ns",
                 "owner")

    def __init__(self, time: int, seq: int, callback: Callable[..., None],
                 args: Tuple[Any, ...] = (), defer_ns: int = 0,
                 owner: Optional["HeapEventQueue"] = None) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.defer_ns = defer_ns
        self.owner = owner

    def cancel(self) -> None:
        """Prevent the callback from running when its time arrives."""
        if not self.cancelled:
            self.cancelled = True
            owner = self.owner
            if owner is not None:
                owner._note_cancel()

    def __lt__(self, other: "ScheduledCall") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledCall t={self.time} seq={self.seq} {state}>"


class HeapEventQueue:
    """Min-heap of :class:`ScheduledCall` records ordered by time.

    The reference scheduler backend (``PMNET_KERNEL=heap``): one binary
    heap of ``(time, seq, call)`` tuples.
    """

    backend = "heap"

    __slots__ = ("_heap", "_seq", "_size", "_cancelled", "compactions",
                 "lane_pops", "near_pops", "far_pops", "resequences")

    def __init__(self, initial: Optional[Iterable[Tuple[int, Callable[..., None],
                                                        Tuple[Any, ...]]]] = None
                 ) -> None:
        self._heap: list[Tuple[int, int, ScheduledCall]] = []
        self._seq = 0
        #: Live (non-cancelled) records currently queued — kept exact on
        #: every push/pop/cancel so ``len()`` is O(1).
        self._size = 0
        #: Cancelled records still physically present (purged by
        #: :meth:`compact`).
        self._cancelled = 0
        self.compactions = 0
        # Pop-site accounting, written back by the kernel's run loop
        # (the heap backend pops everything from the far tier).
        self.lane_pops = 0
        self.near_pops = 0
        self.far_pops = 0
        self.resequences = 0
        if initial:
            # Bulk load: one O(n) heapify instead of n O(log n) pushes.
            for time, callback, args in initial:
                call = ScheduledCall(time, self._seq, callback, args, 0, self)
                self._heap.append((time, self._seq, call))
                self._seq += 1
                self._size += 1
            heapq.heapify(self._heap)

    def push(self, time: int, callback: Callable[..., None],
             args: Tuple[Any, ...] = ()) -> ScheduledCall:
        """Enqueue ``callback(*args)`` to run at ``time``; returns a
        cancellable handle."""
        seq = self._seq
        self._seq = seq + 1
        # Hot path: build the record with direct slot stores — skipping
        # the __init__ frame is worth ~40% of construction cost, and one
        # record is built per event.
        call = ScheduledCall.__new__(ScheduledCall)
        call.time = time
        call.seq = seq
        call.callback = callback
        call.args = args
        call.cancelled = False
        call.defer_ns = 0
        call.owner = self
        heapq.heappush(self._heap, (time, seq, call))
        self._size += 1
        return call

    def push_deferred(self, time: int, defer_ns,
                      callback: Callable[..., None],
                      args: Tuple[Any, ...] = ()) -> ScheduledCall:
        """Enqueue a latency-folded call: surfaces at ``time``, runs
        after the ``defer_ns`` hop (or chain of hops, when a tuple) —
        see :class:`ScheduledCall`."""
        seq = self._seq
        self._seq = seq + 1
        call = ScheduledCall(time, seq, callback, args, defer_ns, self)
        heapq.heappush(self._heap, (time, seq, call))
        self._size += 1
        return call

    def resequence(self, call: ScheduledCall) -> None:
        """Move a just-popped deferred call one hop along its chain.

        Allocates a fresh seq *now* — the same instant the unfolded
        intermediate callback would have scheduled the next one — so
        FIFO tie-breaking at each hop time is unchanged by folding.
        """
        seq = self._seq
        self._seq = seq + 1
        defer = call.defer_ns
        if type(defer) is tuple:
            delay = defer[0]
            call.defer_ns = defer[1] if len(defer) == 2 else defer[1:]
        else:
            delay = defer
            call.defer_ns = 0
        time = call.time + delay
        call.time = time
        call.seq = seq
        heapq.heappush(self._heap, (time, seq, call))

    # ------------------------------------------------------------------
    # Cancellation bookkeeping and compaction
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """A queued record was cancelled: keep ``len()`` exact and purge
        when dead records dominate.

        The dominance test compares against the *physical* heap length,
        not ``_size``: the run loop batches its ``_size`` writeback, so
        mid-run ``_size`` is inflated by the events executed so far,
        while ``len(heap)`` shrinks with every pop.  Physical length is
        also the honest amortisation base — a sweep costs ``O(len)``.
        """
        self._size -= 1
        cancelled = self._cancelled + 1
        self._cancelled = cancelled
        if cancelled > COMPACT_MIN_CANCELLED and cancelled * 2 > len(self._heap):
            self.compact()

    def _drop_cancelled(self) -> None:
        """One cancelled record left the structures by being popped."""
        if self._cancelled > 0:
            self._cancelled -= 1

    def compact(self) -> None:
        """Purge cancelled records (in place, so the kernel's hoisted
        aliases stay valid).  Removes only records that would never have
        executed; the surviving ``(time, seq)`` order is untouched."""
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self._cancelled = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------
    def _pop_any(self) -> Optional[ScheduledCall]:
        """Remove and return the earliest record of any state, or
        ``None`` when empty (backend-internal; no counter updates)."""
        heap = self._heap
        if heap:
            return heapq.heappop(heap)[2]
        return None

    def _pop_live(self) -> Optional[ScheduledCall]:
        """Remove and return the earliest runnable call, or ``None``.

        Skips cancelled records and re-sequences deferred ones exactly
        as the kernel's run loop does, so stepping and running drain
        identically.
        """
        heap = self._heap
        while heap:
            call = heapq.heappop(heap)[2]
            if call.cancelled:
                self._drop_cancelled()
                continue
            if call.defer_ns:
                self.resequence(call)
                continue
            call.owner = None
            self._size -= 1
            return call
        return None

    def pop(self) -> ScheduledCall:
        """Remove and return the earliest non-cancelled call.

        Raises :class:`IndexError` if the queue is empty (after dropping
        cancelled entries).
        """
        call = self._pop_live()
        if call is None:
            raise IndexError("pop from empty EventQueue")
        return call

    def peek_time(self) -> Optional[int]:
        """Time of the earliest pending call, or ``None`` if empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._drop_cancelled()
        return heap[0][0] if heap else None

    def tier_stats(self) -> dict:
        """Scheduler-internal accounting (see :meth:`Simulator.kernel_stats`)."""
        return {
            "backend": self.backend,
            "pending": self._size,
            "cancelled_pending": self._cancelled,
            "compactions": self.compactions,
            "lane_pops": self.lane_pops,
            "near_pops": self.near_pops,
            "far_pops": self.far_pops,
            "resequences": self.resequences,
        }

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0


class TieredEventQueue:
    """The tiered scheduler backend (``PMNET_KERNEL=tiered``, the default).

    Three tiers, drained in exact ``(time, seq)`` order (see the module
    docstring for why no cross-tier seq comparison is needed):

    * **now lane** — a plain list of records whose time equals the
      current drain instant ``_qnow``; appends are already in seq
      order, consumption is an index bump.  ``call_soon`` wakeups land
      here and never touch a heap.
    * **calendar** — ``{absolute time -> record | [records]}`` plus a
      small heap of the distinct times, for timers within ``horizon``
      ns.  A lone record at a time is stored *unboxed* (most calendar
      instants hold exactly one timer, and this skips a list allocation
      per event); a second record at the same time promotes the value
      to a list.  Insert into an existing bucket is a dict hit +
      append; only the *first* record at a new time pays a (time-only,
      int) heap push.
    * **far tier** — the classic ``(time, seq, call)`` binary heap for
      anything at or beyond the horizon, so sparse long timers never
      bloat the calendar.

    The bucket currently being drained is *claimed* (removed from the
    calendar) the moment ``_qnow`` reaches its time; from then on no new
    record can enter it (same-instant pushes go to the lane), so the
    kernel may hoist it into locals safely.  :meth:`compact` therefore
    only rebuilds the unclaimed calendar and the far tier, always in
    place.
    """

    backend = "tiered"

    __slots__ = ("_seq", "_qnow", "_lane", "_lane_pos", "_buckets", "_times",
                 "_cur", "_cur_pos", "_far", "_horizon", "_size", "_cancelled",
                 "compactions", "lane_pops", "near_pops", "far_pops",
                 "resequences")

    def __init__(self, initial: Optional[Iterable[Tuple[int, Callable[..., None],
                                                        Tuple[Any, ...]]]] = None,
                 horizon: Optional[int] = None) -> None:
        if horizon is None:
            from repro.config import kernel_horizon_ns
            horizon = kernel_horizon_ns()
        if horizon <= 0:
            raise SimulationError(f"horizon must be positive, got {horizon}")
        self._seq = 0
        #: Time of the most recently popped record: the drain instant.
        #: Lane records live exactly at this time.
        self._qnow = 0
        self._lane: list[ScheduledCall] = []
        self._lane_pos = 0
        #: Calendar: time -> a lone unboxed record, or a list of records.
        self._buckets: dict[int, Any] = {}
        self._times: list[int] = []
        #: The claimed bucket being drained (frozen: no appends can
        #: reach it) and the consumption cursor into it.
        self._cur: list[ScheduledCall] = []
        self._cur_pos = 0
        self._far: list[Tuple[int, int, ScheduledCall]] = []
        self._horizon = horizon
        self._size = 0
        self._cancelled = 0
        self.compactions = 0
        self.lane_pops = 0
        self.near_pops = 0
        self.far_pops = 0
        self.resequences = 0
        if initial:
            for time, callback, args in initial:
                self.push(time, callback, args)

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def _insert(self, call: ScheduledCall, time: int, seq: int) -> None:
        """Route a fresh record to its tier by distance from ``_qnow``."""
        delta = time - self._qnow
        if delta == 0:
            self._lane.append(call)
        elif delta < self._horizon:
            buckets = self._buckets
            bucket = buckets.get(time)
            if bucket is None:
                buckets[time] = call
                heapq.heappush(self._times, time)
            elif type(bucket) is list:
                bucket.append(call)
            else:
                buckets[time] = [bucket, call]
        else:
            heapq.heappush(self._far, (time, seq, call))

    def push(self, time: int, callback: Callable[..., None],
             args: Tuple[Any, ...] = ()) -> ScheduledCall:
        """Enqueue ``callback(*args)`` to run at ``time``; returns a
        cancellable handle."""
        seq = self._seq
        self._seq = seq + 1
        # Hot path: direct slot stores, as in HeapEventQueue.push.
        call = ScheduledCall.__new__(ScheduledCall)
        call.time = time
        call.seq = seq
        call.callback = callback
        call.args = args
        call.cancelled = False
        call.defer_ns = 0
        call.owner = self
        self._size += 1
        delta = time - self._qnow
        if delta == 0:
            self._lane.append(call)
        elif delta < self._horizon:
            buckets = self._buckets
            bucket = buckets.get(time)
            if bucket is None:
                buckets[time] = call
                heapq.heappush(self._times, time)
            elif type(bucket) is list:
                bucket.append(call)
            else:
                buckets[time] = [bucket, call]
        else:
            heapq.heappush(self._far, (time, seq, call))
        return call

    def push_deferred(self, time: int, defer_ns,
                      callback: Callable[..., None],
                      args: Tuple[Any, ...] = ()) -> ScheduledCall:
        """Enqueue a latency-folded call: surfaces at ``time``, runs
        after the ``defer_ns`` hop (or chain of hops, when a tuple) —
        see :class:`ScheduledCall`."""
        seq = self._seq
        self._seq = seq + 1
        call = ScheduledCall(time, seq, callback, args, defer_ns, self)
        self._size += 1
        self._insert(call, time, seq)
        return call

    def resequence(self, call: ScheduledCall) -> None:
        """Move a just-popped deferred call one hop along its chain.

        Allocates a fresh seq *now* — the same instant the unfolded
        intermediate callback would have scheduled the next one — so
        FIFO tie-breaking at each hop time is unchanged by folding.  A
        zero-length hop re-enters at the surfacing instant and routes
        to the now lane, exactly where a fresh same-instant push would
        land.
        """
        seq = self._seq
        self._seq = seq + 1
        defer = call.defer_ns
        if type(defer) is tuple:
            delay = defer[0]
            call.defer_ns = defer[1] if len(defer) == 2 else defer[1:]
        else:
            delay = defer
            call.defer_ns = 0
        time = call.time + delay
        call.time = time
        call.seq = seq
        self._insert(call, time, seq)

    # ------------------------------------------------------------------
    # Cancellation bookkeeping and compaction
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """A queued record was cancelled: keep ``len()`` exact and purge
        when dead records dominate.

        The dominance test compares against physical structure sizes,
        not ``_size``: the run loop batches its ``_size`` writeback, so
        mid-run ``_size`` is inflated by the events executed so far,
        while the far tier and the calendar shrink with every pop.
        ``len(_times)`` counts buckets rather than records, which only
        errs towards sweeping sooner; a sweep costs ``O(physical)``, so
        this is also the honest amortisation base.
        """
        self._size -= 1
        cancelled = self._cancelled + 1
        self._cancelled = cancelled
        if (cancelled > COMPACT_MIN_CANCELLED
                and cancelled * 2 > len(self._far) + len(self._times)):
            self.compact()

    def _drop_cancelled(self) -> None:
        """One cancelled record left the structures by being popped."""
        # Clamped: compaction resets the count to zero without touching
        # the (small, short-lived) lane and claimed bucket, so a few
        # cancelled stragglers may still drain afterwards.
        if self._cancelled > 0:
            self._cancelled -= 1

    def compact(self) -> None:
        """Purge cancelled records from the far tier and the unclaimed
        calendar (in place, so the kernel's hoisted aliases stay valid).

        The now lane and the claimed bucket are left alone — both are
        consumed within the current drain instant, so nothing lingers
        there.  Only records that would never have executed are removed;
        the surviving ``(time, seq)`` order is untouched.
        """
        far = self._far
        far[:] = [entry for entry in far if not entry[2].cancelled]
        heapq.heapify(far)
        buckets = self._buckets
        dead = []
        for time, bucket in buckets.items():
            if type(bucket) is list:
                bucket[:] = [call for call in bucket if not call.cancelled]
                if not bucket:
                    dead.append(time)
            elif bucket.cancelled:
                dead.append(time)
        for time in dead:
            del buckets[time]
        times = self._times
        times[:] = list(buckets)
        heapq.heapify(times)
        self._cancelled = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------
    def _claim(self, time: int) -> ScheduledCall:
        """Take ownership of the calendar bucket at ``time`` and return
        its first record.  From this instant on, pushes at ``time`` are
        same-instant and go to the lane, so the bucket is append-frozen
        and safe to drain by index.  An unboxed lone record is consumed
        whole — the claimed-bucket cursor is not touched."""
        heapq.heappop(self._times)
        bucket = self._buckets.pop(time)
        self._qnow = time
        if type(bucket) is list:
            self._cur = bucket
            self._cur_pos = 1
            return bucket[0]
        return bucket

    def _pop_any(self) -> Optional[ScheduledCall]:
        """Remove and return the earliest record of any state, or
        ``None`` when empty (backend-internal; no counter updates).

        Drain priority at equal head time is far tier, then calendar
        bucket, then lane — by the routing chronology argument in the
        module docstring, never by comparing seqs.
        """
        cur = self._cur
        pos = self._cur_pos
        if pos < len(cur):
            # No far-tier check needed: a bucket is only claimed once the
            # far tier holds nothing at its time, and far-tier pushes land
            # at least a horizon beyond the drain instant, so no far
            # record at this time can appear while the bucket drains.
            self._cur_pos = pos + 1
            return cur[pos]
        far = self._far
        lane = self._lane
        pos = self._lane_pos
        if pos < len(lane):
            qnow = self._qnow
            if far and far[0][0] == qnow:
                return heapq.heappop(far)[2]
            times = self._times
            if times and times[0] == qnow:
                # The drain instant was reached through the far tier
                # before this bucket's first record surfaced; the
                # bucket's records precede the lane's.
                return self._claim(qnow)
            self._lane_pos = pos + 1
            return lane[pos]
        if lane:
            # The instant is fully consumed; reset in place (the kernel
            # holds an alias).
            del lane[:]
            self._lane_pos = 0
        times = self._times
        if times:
            near_time = times[0]
            if far and far[0][0] <= near_time:
                entry = heapq.heappop(far)
                self._qnow = entry[0]
                return entry[2]
            return self._claim(near_time)
        if far:
            entry = heapq.heappop(far)
            self._qnow = entry[0]
            return entry[2]
        return None

    def _pop_live(self) -> Optional[ScheduledCall]:
        """Remove and return the earliest runnable call, or ``None``.

        Skips cancelled records and re-sequences deferred ones exactly
        as the kernel's run loop does, so stepping and running drain
        identically.
        """
        while True:
            call = self._pop_any()
            if call is None:
                return None
            if call.cancelled:
                self._drop_cancelled()
                continue
            if call.defer_ns:
                self.resequence(call)
                continue
            call.owner = None
            self._size -= 1
            return call

    def pop(self) -> ScheduledCall:
        """Remove and return the earliest non-cancelled call.

        Raises :class:`IndexError` if the queue is empty (after dropping
        cancelled entries).
        """
        call = self._pop_live()
        if call is None:
            raise IndexError("pop from empty EventQueue")
        return call

    def peek_time(self) -> Optional[int]:
        """Time of the earliest pending call, or ``None`` if empty."""
        # Prune cancelled heads per tier, then take the minimum head
        # time.  Mutating (cancelled records are discarded) but
        # order-neutral, mirroring the heap backend's behaviour.
        cur, pos = self._cur, self._cur_pos
        while pos < len(cur) and cur[pos].cancelled:
            pos += 1
            self._drop_cancelled()
        self._cur_pos = pos
        lane, lpos = self._lane, self._lane_pos
        while lpos < len(lane) and lane[lpos].cancelled:
            lpos += 1
            self._drop_cancelled()
        self._lane_pos = lpos
        far = self._far
        while far and far[0][2].cancelled:
            heapq.heappop(far)
            self._drop_cancelled()
        times = self._times
        while times:
            bucket = self._buckets[times[0]]
            if type(bucket) is not list:
                if not bucket.cancelled:
                    break
                self._drop_cancelled()
                del self._buckets[times[0]]
                heapq.heappop(times)
                continue
            live = [call for call in bucket if not call.cancelled]
            if live:
                if len(live) != len(bucket):
                    for _ in range(len(bucket) - len(live)):
                        self._drop_cancelled()
                    bucket[:] = live
                break
            for _ in bucket:
                self._drop_cancelled()
            del self._buckets[times[0]]
            heapq.heappop(times)
        candidates = []
        if pos < len(cur) or lpos < len(lane):
            candidates.append(self._qnow)
        if times:
            candidates.append(times[0])
        if far:
            candidates.append(far[0][0])
        return min(candidates) if candidates else None

    def tier_stats(self) -> dict:
        """Scheduler-internal accounting (see :meth:`Simulator.kernel_stats`)."""
        return {
            "backend": self.backend,
            "pending": self._size,
            "cancelled_pending": self._cancelled,
            "compactions": self.compactions,
            "lane_pops": self.lane_pops,
            "near_pops": self.near_pops,
            "far_pops": self.far_pops,
            "resequences": self.resequences,
        }

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0


#: Backwards-compatible name: the reference backend.  Use
#: :func:`make_event_queue` (or ``Simulator``) to honour ``PMNET_KERNEL``.
EventQueue = HeapEventQueue

#: The selectable scheduler backends (the ``compiled`` hook point
#: resolves through :func:`repro.sim.kernel.resolve_kernel_backend`).
QUEUE_BACKENDS = {
    "heap": HeapEventQueue,
    "tiered": TieredEventQueue,
}


def make_event_queue(backend: str, initial=None):
    """Instantiate the scheduler backend named ``backend``."""
    try:
        queue_class = QUEUE_BACKENDS[backend]
    except KeyError:
        raise SimulationError(
            f"unknown scheduler backend {backend!r}; "
            f"choose from {sorted(QUEUE_BACKENDS)}") from None
    return queue_class(initial)


class SimEvent:
    """A one-shot, waitable occurrence carrying a value or an exception.

    Lifecycle: *pending* → (``succeed`` | ``fail``) → *triggered*.
    Triggering twice is an error: it almost always indicates two components
    believe they own the same completion.
    """

    __slots__ = ("_sim", "_callbacks", "_triggered", "_value", "_exception", "name")

    def __init__(self, sim: Any, name: str = "") -> None:
        self._sim = sim
        self._callbacks: list[Tuple[Callable[..., None], Tuple[Any, ...]]] = []
        self._triggered = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self.name = name

    @property
    def triggered(self) -> bool:
        """Whether the event has been succeeded or failed."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """Whether the event was triggered successfully."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The success value; raises if the event failed or is pending."""
        if not self._triggered:
            raise SimulationError(f"event {self.name!r} has not been triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, or ``None``."""
        return self._exception

    def succeed(self, value: Any = None) -> "SimEvent":
        """Trigger the event successfully, waking waiters with ``value``."""
        self._trigger(value, None)
        return self

    @property
    def waiter_count(self) -> int:
        """Callbacks currently registered (0 once triggered)."""
        return len(self._callbacks)

    def succeed_inline(self, value: Any = None) -> "SimEvent":
        """Trigger the event and run its single waiter synchronously.

        The whole-request-folded completion barrier: the caller must be
        executing at the exact ``(time, seq)`` slot where the unfolded
        path's ``call_soon`` dispatch of that one waiter would run, so
        invoking the callback inline elides one executed event without
        moving anything.  Only valid with at most one registered waiter
        — with more, each waiter gets its own seq slot in the unfolded
        timeline and inlining would merge them (callers check
        :attr:`waiter_count` and fall back to :meth:`succeed`).
        """
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        if len(self._callbacks) > 1:
            raise SimulationError(
                f"event {self.name!r} has {len(self._callbacks)} waiters; "
                "inline triggering is only seq-identical with one")
        self._triggered = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback, args in callbacks:
            callback(self, *args)
        return self

    def fail(self, exception: BaseException) -> "SimEvent":
        """Trigger the event with an error, raising it in each waiter."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() requires an exception, got {exception!r}")
        self._trigger(None, exception)
        return self

    def _trigger(self, value: Any, exception: Optional[BaseException]) -> None:
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        self._exception = exception
        callbacks, self._callbacks = self._callbacks, []
        for callback, args in callbacks:
            # Callbacks run through the kernel "now" so that waiter wakeups
            # interleave with other same-time events deterministically.
            self._sim.call_soon(callback, self, *args)

    def add_callback(self, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(event, *args)`` once triggered (immediately if
        already)."""
        if self._triggered:
            self._sim.call_soon(callback, self, *args)
        else:
            self._callbacks.append((callback, args))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self._triggered:
            state = "failed" if self._exception is not None else "ok"
        return f"<SimEvent {self.name!r} {state}>"
