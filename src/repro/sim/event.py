"""Events and the pending-event queue of the discrete-event kernel.

Two kinds of "event" exist and are deliberately distinct:

* :class:`ScheduledCall` — an internal queue record: *at time T, invoke this
  callback with these args*.  Users normally never touch these directly.
* :class:`SimEvent` — a one-shot synchronization object (in the style of
  simpy events or asyncio futures): processes wait on it; someone succeeds
  or fails it exactly once, waking all waiters with a value or an error.

The queue is the hottest data structure in the simulator, so it is built
for allocation economy: callbacks and their positional arguments are
stored directly on the :class:`ScheduledCall` (no binding lambda per
event), and the heap holds ``(time, seq, call)`` tuples so every sift
comparison is a C-level tuple compare instead of a Python ``__lt__``
call.  ``seq`` is unique, so the ``call`` field never participates in a
comparison and FIFO order among same-time events is preserved.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional, Tuple

from repro.errors import SimulationError


class ScheduledCall:
    """A callback (plus positional args) registered to run at a fixed time.

    Instances are ordered by ``(time, seq)`` so that simultaneous events
    run in scheduling order, which keeps runs deterministic.

    ``defer_ns`` marks a *deferred* (latency-folded) record: it first
    surfaces at ``time`` — ordered by the seq allocated when it was
    scheduled, exactly like the intermediate callback it replaces — and
    the kernel then re-sequences it ``defer_ns`` later with a freshly
    allocated seq, never invoking a callback at the intermediate hop.
    Because both seq allocations happen at the same virtual instants as
    the unfolded two-event chain, same-nanosecond tie-breaking against
    unrelated events is preserved bit for bit; only the intermediate
    callback execution (and its record allocation) disappears.

    ``defer_ns`` may also be a *tuple* of delays — a chain of deferred
    hops.  Each re-sequencing consumes one element, allocating one seq
    per hop at the hop's virtual instant, so an n-delay fixed-latency
    pipeline collapses to a single executed event while remaining
    heap-order-identical to the n-event original.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "defer_ns")

    def __init__(self, time: int, seq: int, callback: Callable[..., None],
                 args: Tuple[Any, ...] = (), defer_ns: int = 0) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.defer_ns = defer_ns

    def cancel(self) -> None:
        """Prevent the callback from running when its time arrives."""
        self.cancelled = True

    def __lt__(self, other: "ScheduledCall") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledCall t={self.time} seq={self.seq} {state}>"


class EventQueue:
    """Min-heap of :class:`ScheduledCall` records ordered by time."""

    __slots__ = ("_heap", "_seq")

    def __init__(self, initial: Optional[Iterable[Tuple[int, Callable[..., None],
                                                        Tuple[Any, ...]]]] = None
                 ) -> None:
        self._heap: list[Tuple[int, int, ScheduledCall]] = []
        self._seq = 0
        if initial:
            # Bulk load: one O(n) heapify instead of n O(log n) pushes.
            for time, callback, args in initial:
                call = ScheduledCall(time, self._seq, callback, args)
                self._heap.append((time, self._seq, call))
                self._seq += 1
            heapq.heapify(self._heap)

    def push(self, time: int, callback: Callable[..., None],
             args: Tuple[Any, ...] = ()) -> ScheduledCall:
        """Enqueue ``callback(*args)`` to run at ``time``; returns a
        cancellable handle."""
        seq = self._seq
        self._seq = seq + 1
        call = ScheduledCall(time, seq, callback, args)
        heapq.heappush(self._heap, (time, seq, call))
        return call

    def push_deferred(self, time: int, defer_ns,
                      callback: Callable[..., None],
                      args: Tuple[Any, ...] = ()) -> ScheduledCall:
        """Enqueue a latency-folded call: surfaces at ``time``, runs
        after the ``defer_ns`` hop (or chain of hops, when a tuple) —
        see :class:`ScheduledCall`."""
        seq = self._seq
        self._seq = seq + 1
        call = ScheduledCall(time, seq, callback, args, defer_ns)
        heapq.heappush(self._heap, (time, seq, call))
        return call

    def resequence(self, call: ScheduledCall) -> None:
        """Move a just-popped deferred call one hop along its chain.

        Allocates a fresh seq *now* — the same instant the unfolded
        intermediate callback would have scheduled the next one — so
        FIFO tie-breaking at each hop time is unchanged by folding.
        """
        seq = self._seq
        self._seq = seq + 1
        defer = call.defer_ns
        if type(defer) is tuple:
            delay = defer[0]
            call.defer_ns = defer[1] if len(defer) == 2 else defer[1:]
        else:
            delay = defer
            call.defer_ns = 0
        time = call.time + delay
        call.time = time
        call.seq = seq
        heapq.heappush(self._heap, (time, seq, call))

    def pop(self) -> ScheduledCall:
        """Remove and return the earliest non-cancelled call.

        Raises :class:`IndexError` if the queue is empty (after dropping
        cancelled entries).
        """
        heap = self._heap
        while heap:
            call = heapq.heappop(heap)[2]
            if call.cancelled:
                continue
            if call.defer_ns:
                self.resequence(call)
                continue
            return call
        raise IndexError("pop from empty EventQueue")

    def peek_time(self) -> Optional[int]:
        """Time of the earliest pending call, or ``None`` if empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def __len__(self) -> int:
        return sum(1 for _, _, call in self._heap if not call.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None


class SimEvent:
    """A one-shot, waitable occurrence carrying a value or an exception.

    Lifecycle: *pending* → (``succeed`` | ``fail``) → *triggered*.
    Triggering twice is an error: it almost always indicates two components
    believe they own the same completion.
    """

    __slots__ = ("_sim", "_callbacks", "_triggered", "_value", "_exception", "name")

    def __init__(self, sim: Any, name: str = "") -> None:
        self._sim = sim
        self._callbacks: list[Tuple[Callable[..., None], Tuple[Any, ...]]] = []
        self._triggered = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self.name = name

    @property
    def triggered(self) -> bool:
        """Whether the event has been succeeded or failed."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """Whether the event was triggered successfully."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The success value; raises if the event failed or is pending."""
        if not self._triggered:
            raise SimulationError(f"event {self.name!r} has not been triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, or ``None``."""
        return self._exception

    def succeed(self, value: Any = None) -> "SimEvent":
        """Trigger the event successfully, waking waiters with ``value``."""
        self._trigger(value, None)
        return self

    @property
    def waiter_count(self) -> int:
        """Callbacks currently registered (0 once triggered)."""
        return len(self._callbacks)

    def succeed_inline(self, value: Any = None) -> "SimEvent":
        """Trigger the event and run its single waiter synchronously.

        The whole-request-folded completion barrier: the caller must be
        executing at the exact ``(time, seq)`` slot where the unfolded
        path's ``call_soon`` dispatch of that one waiter would run, so
        invoking the callback inline elides one executed event without
        moving anything.  Only valid with at most one registered waiter
        — with more, each waiter gets its own seq slot in the unfolded
        timeline and inlining would merge them (callers check
        :attr:`waiter_count` and fall back to :meth:`succeed`).
        """
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        if len(self._callbacks) > 1:
            raise SimulationError(
                f"event {self.name!r} has {len(self._callbacks)} waiters; "
                "inline triggering is only seq-identical with one")
        self._triggered = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback, args in callbacks:
            callback(self, *args)
        return self

    def fail(self, exception: BaseException) -> "SimEvent":
        """Trigger the event with an error, raising it in each waiter."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() requires an exception, got {exception!r}")
        self._trigger(None, exception)
        return self

    def _trigger(self, value: Any, exception: Optional[BaseException]) -> None:
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        self._exception = exception
        callbacks, self._callbacks = self._callbacks, []
        for callback, args in callbacks:
            # Callbacks run through the kernel "now" so that waiter wakeups
            # interleave with other same-time events deterministically.
            self._sim.call_soon(callback, self, *args)

    def add_callback(self, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(event, *args)`` once triggered (immediately if
        already)."""
        if self._triggered:
            self._sim.call_soon(callback, self, *args)
        else:
            self._callbacks.append((callback, args))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self._triggered:
            state = "failed" if self._exception is not None else "ok"
        return f"<SimEvent {self.name!r} {state}>"
