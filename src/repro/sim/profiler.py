"""Event accounting: who is spending the simulator's events?

The kernel's throughput work (PR 1) made each event cheap; the folded
fast paths (``net/link.py``, ``core/pmnet_device.py``) make requests
*need fewer of them*.  This module is the measuring instrument for the
second axis: an opt-in :class:`EventProfiler` attached to a
:class:`~repro.sim.kernel.Simulator` attributes every executed event to
its call site (component class x callback method) so the dominant
events-per-request costs are visible instead of guessed.

Attribution is derived from the scheduled callback itself: a bound
method reports its ``__qualname__`` (e.g. ``Channel._deliver``), which
identifies both the component type and the pipeline step without any
per-callsite registration.  ``owner_name`` additionally resolves the
component *instance* (``self.name``) when per-component detail is
requested.

The profiler never affects simulation results: it observes executed
callbacks only, draws no randomness, and schedules nothing.

Two entry points use this module: ``pmnet-repro profile`` (a one-shot
report) and ``pmnet-repro bench-pipeline`` (events/request before and
after the latency-folded fast path, written to ``BENCH_pipeline.json``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple


def call_site(callback: Callable[..., Any]) -> str:
    """The attribution key for one scheduled callback.

    Bound methods yield ``Class.method``; plain functions yield their
    qualified name; anything else falls back to ``repr``-ish naming.
    """
    qualname = getattr(callback, "__qualname__", None)
    if qualname is None:
        return type(callback).__name__
    return qualname


def owner_name(callback: Callable[..., Any]) -> str:
    """The component instance a bound callback belongs to, if any."""
    owner = getattr(callback, "__self__", None)
    if owner is None:
        return ""
    name = getattr(owner, "name", None)
    return name if isinstance(name, str) else type(owner).__name__


def format_kernel_stats(stats: Dict[str, object]) -> str:
    """One-line scheduler digest for profile reports.

    ``stats`` is :meth:`Simulator.kernel_stats` output: the backend
    name, per-tier pop counters (all zero on backends without that
    tier), resequences, and compaction sweeps.  Complements the
    per-call-site table: the table says *who* spent the events, this
    line says *which tier of the scheduler* served them.
    """
    tiers = " ".join(
        f"{tier}={stats[f'{tier}_pops']}"
        for tier in ("lane", "near", "far")
        if f"{tier}_pops" in stats)
    return (f"scheduler: kernel={stats.get('kernel', '?')} {tiers} "
            f"resequences={stats.get('resequences', 0)} "
            f"compactions={stats.get('compactions', 0)}")


class EventProfiler:
    """Counts executed events per call site (and per component).

    Attach with :meth:`Simulator.attach_profiler` *before* ``run()``;
    the kernel binds the profiler at loop entry so mid-run attachment
    takes effect on the next ``run()``/``step()`` call.
    """

    __slots__ = ("counts", "component_counts", "total", "per_component")

    def __init__(self, per_component: bool = False) -> None:
        #: call site -> executed events.
        self.counts: Dict[str, int] = {}
        #: (component instance, call site) -> executed events.
        self.component_counts: Dict[Tuple[str, str], int] = {}
        self.total = 0
        self.per_component = per_component

    # ------------------------------------------------------------------
    # Recording (called once per executed event by the kernel)
    # ------------------------------------------------------------------
    def record(self, callback: Callable[..., Any]) -> None:
        site = call_site(callback)
        counts = self.counts
        counts[site] = counts.get(site, 0) + 1
        self.total += 1
        if self.per_component:
            key = (owner_name(callback), site)
            self.component_counts[key] = self.component_counts.get(key, 0) + 1

    def reset(self) -> None:
        self.counts.clear()
        self.component_counts.clear()
        self.total = 0

    # ------------------------------------------------------------------
    # Reduction
    # ------------------------------------------------------------------
    def events_per_request(self, requests: int) -> float:
        """Total executed events amortized over ``requests`` completions."""
        if requests <= 0:
            raise ValueError(f"requests must be positive, got {requests}")
        return self.total / requests

    def top(self, n: int = 10) -> List[Tuple[str, int]]:
        """The ``n`` busiest call sites, descending by event count."""
        ranked = sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]

    def summary(self, requests: Optional[int] = None) -> Dict[str, object]:
        """A JSON-ready digest (total, per-site counts, events/request)."""
        digest: Dict[str, object] = {
            "total_events": self.total,
            "call_sites": dict(sorted(self.counts.items())),
        }
        if requests:
            digest["requests"] = requests
            digest["events_per_request"] = self.events_per_request(requests)
        return digest

    def format_table(self, requests: Optional[int] = None,
                     top: int = 15) -> str:
        """A human-readable report of where the events went."""
        lines = [f"{'events':>10}  {'share':>6}  call site"]
        total = max(1, self.total)
        for site, count in self.top(top):
            lines.append(f"{count:>10}  {count / total:>6.1%}  {site}")
        lines.append(f"{self.total:>10}  {'100%':>6}  TOTAL")
        if requests:
            lines.append(f"events/request: "
                         f"{self.events_per_request(requests):.2f} "
                         f"({requests} requests)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<EventProfiler total={self.total} "
                f"sites={len(self.counts)}>")
