"""Simulated time: integer nanoseconds and unit helpers.

All simulation timestamps and durations in this library are plain ``int``
nanoseconds.  Integers keep event ordering exact and runs bit-reproducible;
floats would accumulate rounding error over millions of events.  The helpers
here convert between human units and nanoseconds and format times for
reports.
"""

from __future__ import annotations

#: One nanosecond (the base unit).
NANOSECOND = 1
#: One microsecond in nanoseconds.
MICROSECOND = 1_000
#: One millisecond in nanoseconds.
MILLISECOND = 1_000_000
#: One second in nanoseconds.
SECOND = 1_000_000_000


def nanoseconds(value: float) -> int:
    """Convert ``value`` nanoseconds to the integer time base."""
    return round(value)


def microseconds(value: float) -> int:
    """Convert ``value`` microseconds to integer nanoseconds."""
    return round(value * MICROSECOND)


def milliseconds(value: float) -> int:
    """Convert ``value`` milliseconds to integer nanoseconds."""
    return round(value * MILLISECOND)


def seconds(value: float) -> int:
    """Convert ``value`` seconds to integer nanoseconds."""
    return round(value * SECOND)


def to_microseconds(time_ns: int) -> float:
    """Express an integer-nanosecond time in microseconds."""
    return time_ns / MICROSECOND


def to_milliseconds(time_ns: int) -> float:
    """Express an integer-nanosecond time in milliseconds."""
    return time_ns / MILLISECOND


def to_seconds(time_ns: int) -> float:
    """Express an integer-nanosecond time in seconds."""
    return time_ns / SECOND


def format_time(time_ns: int) -> str:
    """Render a duration with the most readable unit (for reports/tracing).

    >>> format_time(1500)
    '1.500us'
    >>> format_time(2_000_000_000)
    '2.000s'
    """
    if time_ns >= SECOND:
        return f"{time_ns / SECOND:.3f}s"
    if time_ns >= MILLISECOND:
        return f"{time_ns / MILLISECOND:.3f}ms"
    if time_ns >= MICROSECOND:
        return f"{time_ns / MICROSECOND:.3f}us"
    return f"{time_ns}ns"


def transmission_delay(size_bytes: int, bandwidth_bps: float) -> int:
    """Serialization delay of ``size_bytes`` on a ``bandwidth_bps`` link.

    Returns integer nanoseconds, rounded up so a nonzero payload always
    costs at least one tick on a finite-bandwidth link.
    """
    if bandwidth_bps <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
    if size_bytes < 0:
        raise ValueError(f"size must be non-negative, got {size_bytes}")
    if size_bytes == 0:
        return 0
    bits = size_bytes * 8
    delay = (bits * SECOND + bandwidth_bps - 1) // int(bandwidth_bps)
    return int(delay)
