"""Measurement utilities: counters, latency recorders, time series.

Experiments attach these to components and read them back after the run.
They are deliberately simulation-agnostic (plain numbers in, summaries
out) so the analysis layer can also use them on non-simulated data.
"""

from __future__ import annotations

import math
import warnings
from typing import Dict, Iterable, List, Optional, Tuple

#: Sentinel for "no default supplied" (``None`` is a legitimate default).
_UNSET = object()


class Counter:
    """A named monotonically-increasing event counter."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def rollback(self, amount: int) -> None:
        """Undo a prior :meth:`increment` (e.g. a revoked channel
        reservation that re-counts when the send actually happens)."""
        if amount < 0 or amount > self.value:
            raise ValueError(
                f"cannot roll back {amount} from counter at {self.value}")
        self.value -= amount

    def __int__(self) -> int:
        return self.value

    def summary(self) -> Dict[str, object]:
        """The unified ``{"name", "kind", ...}`` summary shape."""
        return {"name": self.name, "kind": self.kind, "value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A named level with a high-water mark (queue depths, occupancy).

    Unlike :class:`Counter` it goes up *and* down; the high-water mark
    records the worst pressure seen, which is what congestion
    experiments report (a drop count says packets died, the high-water
    mark says how close the queue came to killing them).
    """

    __slots__ = ("name", "value", "highwater")

    kind = "gauge"

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0
        self.highwater = 0

    def update(self, value: int) -> None:
        """Set the current level, tracking the high-water mark."""
        if value < 0:
            raise ValueError(f"gauge level must be >= 0, got {value}")
        self.value = value
        if value > self.highwater:
            self.highwater = value

    def __int__(self) -> int:
        return self.value

    def summary(self) -> Dict[str, object]:
        """The unified ``{"name", "kind", ...}`` summary shape."""
        return {"name": self.name, "kind": self.kind, "value": self.value,
                "highwater": self.highwater}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value} high={self.highwater}>"


def instruments_summary(instruments: Iterable[object]) -> Dict[str, int]:
    """Flatten counters/gauges into one ``{short_name: value}`` dict.

    The short name is the instrument name's last dot-separated segment
    (instrument names are ``"{component}.{metric}"``); gauges contribute
    both their level and ``{short_name}_highwater``.  This is the flat
    shape component ``summary()`` helpers report.
    """
    summary: Dict[str, int] = {}
    for instrument in instruments:
        short = instrument.name.rsplit(".", 1)[-1]  # type: ignore[attr-defined]
        if isinstance(instrument, Gauge):
            summary[short] = instrument.value
            summary[f"{short}_highwater"] = instrument.highwater
        elif isinstance(instrument, Counter):
            summary[short] = instrument.value
    return summary


def component_summary(component: object) -> Dict[str, int]:
    """Deprecated: use the ``instruments()`` protocol instead.

    Instrumented components now declare their counters/gauges explicitly
    through ``instruments()`` (see :mod:`repro.obs.registry`); this shim
    delegates to it when present and only falls back to the historical
    attribute-scanning reflection for components that predate the
    protocol.  It will be removed next release.
    """
    warnings.warn(
        "component_summary() is deprecated: call the component's "
        "instruments() protocol (repro.obs) instead",
        DeprecationWarning, stacklevel=2)
    instruments = getattr(component, "instruments", None)
    if callable(instruments):
        return instruments_summary(instruments())
    attributes = getattr(component, "__dict__", None)
    if attributes is None:  # slotted components
        attributes = {name: getattr(component, name, None)
                      for cls in type(component).__mro__
                      for name in getattr(cls, "__slots__", ())}
    summary: Dict[str, int] = {}
    for attribute, instrument in attributes.items():
        if isinstance(instrument, Counter):
            summary[attribute] = instrument.value
        elif isinstance(instrument, Gauge):
            summary[attribute] = instrument.value
            summary[f"{attribute}_highwater"] = instrument.highwater
    return summary


class LatencyRecorder:
    """Collects latency samples and summarizes them.

    Stores raw samples (simulations here are small enough that exact
    percentiles beat streaming sketches for clarity and testability).
    """

    kind = "histogram"

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._samples: List[int] = []
        self._sorted: Optional[List[int]] = None

    def record(self, latency_ns: int) -> None:
        """Add one sample (non-negative nanoseconds)."""
        if latency_ns < 0:
            raise ValueError(f"latency must be >= 0, got {latency_ns}")
        self._samples.append(latency_ns)
        self._sorted = None

    def extend(self, samples: Iterable[int]) -> None:
        for sample in samples:
            self.record(sample)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[int]:
        """The raw samples, in arrival order (a copy)."""
        return list(self._samples)

    def mean(self) -> float:
        if not self._samples:
            raise ValueError(f"no samples recorded in {self.name!r}")
        return sum(self._samples) / len(self._samples)

    def percentile(self, pct: float) -> int:
        """Exact percentile via the nearest-rank method."""
        if not self._samples:
            raise ValueError(f"no samples recorded in {self.name!r}")
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        if pct == 0.0:
            return self._sorted[0]
        rank = math.ceil(pct / 100.0 * len(self._sorted))
        return self._sorted[rank - 1]

    def median(self) -> int:
        return self.percentile(50.0)

    def p99(self) -> int:
        return self.percentile(99.0)

    def maximum(self) -> int:
        return self.percentile(100.0)

    def minimum(self) -> int:
        return self.percentile(0.0)

    def cdf(self, points: int = 200) -> List[Tuple[int, float]]:
        """The empirical CDF as ``(latency_ns, fraction)`` pairs.

        Downsamples to at most ``points`` evenly spaced quantiles so plots
        and reports stay small regardless of sample count.
        """
        if not self._samples:
            return []
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        n = len(self._sorted)
        if n <= points:
            return [(value, (i + 1) / n) for i, value in enumerate(self._sorted)]
        curve = []
        for i in range(points):
            frac = (i + 1) / points
            idx = min(n - 1, math.ceil(frac * n) - 1)
            curve.append((self._sorted[idx], frac))
        return curve

    def summary(self) -> Dict[str, object]:
        """The unified ``{"name", "kind", ...}`` summary (nanoseconds).

        Never raises: with zero samples the statistics are ``None``
        (matching :class:`ThroughputMeter`'s degenerate-window summary)
        rather than the ``ValueError`` the point accessors raise.
        """
        empty = not self._samples
        return {
            "name": self.name,
            "kind": self.kind,
            "count": self.count,
            "mean": None if empty else self.mean(),
            "p50": None if empty else float(self.median()),
            "p99": None if empty else float(self.p99()),
            "min": None if empty else float(self.minimum()),
            "max": None if empty else float(self.maximum()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LatencyRecorder {self.name!r} n={self.count}>"


class ThroughputMeter:
    """Counts completions over simulated time and reports ops/second."""

    kind = "meter"

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.completions = 0
        self._first_ns: Optional[int] = None
        self._last_ns: Optional[int] = None

    def record(self, now_ns: int) -> None:
        """Register one completion at simulated time ``now_ns``."""
        if self._first_ns is None:
            self._first_ns = now_ns
        self._last_ns = now_ns
        self.completions += 1

    def ops_per_second(self, default: object = _UNSET) -> float:
        """Completions per simulated second over the observed window.

        A rate needs at least two spread-out completions; below that,
        ``default`` is returned when supplied (so summaries and smoke
        runs degrade gracefully) and :class:`ValueError` is raised when
        not (the historical contract — a real experiment asking for a
        throughput it cannot have is a bug worth surfacing).
        """
        if self.completions < 2 or self._first_ns == self._last_ns:
            if default is not _UNSET:
                return default  # type: ignore[return-value]
            raise ValueError(
                f"need >= 2 spread-out completions in {self.name!r} to "
                "compute throughput")
        window_ns = self._last_ns - self._first_ns  # type: ignore[operator]
        return (self.completions - 1) * 1e9 / window_ns

    def summary(self) -> Dict[str, object]:
        """The unified ``{"name", "kind", ...}`` summary shape.

        ``ops_per_second`` is ``None`` when the window is degenerate.
        """
        return {"name": self.name, "kind": self.kind,
                "count": self.completions,
                "ops_per_second": self.ops_per_second(default=None)}


class TimeSeries:
    """Records ``(time_ns, value)`` observations for later inspection."""

    kind = "timeseries"

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.points: List[Tuple[int, float]] = []

    def record(self, now_ns: int, value: float) -> None:
        if self.points and now_ns < self.points[-1][0]:
            raise ValueError("time series observations must be monotonic")
        self.points.append((now_ns, value))

    def values(self) -> List[float]:
        return [value for _time, value in self.points]

    def __len__(self) -> int:
        return len(self.points)
