"""Measurement utilities: counters, latency recorders, time series.

Experiments attach these to components and read them back after the run.
They are deliberately simulation-agnostic (plain numbers in, summaries
out) so the analysis layer can also use them on non-simulated data.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple


class Counter:
    """A named monotonically-increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def rollback(self, amount: int) -> None:
        """Undo a prior :meth:`increment` (e.g. a revoked channel
        reservation that re-counts when the send actually happens)."""
        if amount < 0 or amount > self.value:
            raise ValueError(
                f"cannot roll back {amount} from counter at {self.value}")
        self.value -= amount

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A named level with a high-water mark (queue depths, occupancy).

    Unlike :class:`Counter` it goes up *and* down; the high-water mark
    records the worst pressure seen, which is what congestion
    experiments report (a drop count says packets died, the high-water
    mark says how close the queue came to killing them).
    """

    __slots__ = ("name", "value", "highwater")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0
        self.highwater = 0

    def update(self, value: int) -> None:
        """Set the current level, tracking the high-water mark."""
        if value < 0:
            raise ValueError(f"gauge level must be >= 0, got {value}")
        self.value = value
        if value > self.highwater:
            self.highwater = value

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value} high={self.highwater}>"


def component_summary(component: object) -> Dict[str, int]:
    """All :class:`Counter`/:class:`Gauge` instruments on one component.

    Scans the component's attributes and returns ``{attribute: value}``
    (gauges contribute both their level and ``<name>_highwater``), so a
    monitoring surface can report any instrumented component — channels,
    devices, queues — without per-class plumbing.
    """
    attributes = getattr(component, "__dict__", None)
    if attributes is None:  # slotted components
        attributes = {name: getattr(component, name, None)
                      for cls in type(component).__mro__
                      for name in getattr(cls, "__slots__", ())}
    summary: Dict[str, int] = {}
    for attribute, instrument in attributes.items():
        if isinstance(instrument, Counter):
            summary[attribute] = instrument.value
        elif isinstance(instrument, Gauge):
            summary[attribute] = instrument.value
            summary[f"{attribute}_highwater"] = instrument.highwater
    return summary


class LatencyRecorder:
    """Collects latency samples and summarizes them.

    Stores raw samples (simulations here are small enough that exact
    percentiles beat streaming sketches for clarity and testability).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._samples: List[int] = []
        self._sorted: Optional[List[int]] = None

    def record(self, latency_ns: int) -> None:
        """Add one sample (non-negative nanoseconds)."""
        if latency_ns < 0:
            raise ValueError(f"latency must be >= 0, got {latency_ns}")
        self._samples.append(latency_ns)
        self._sorted = None

    def extend(self, samples: Iterable[int]) -> None:
        for sample in samples:
            self.record(sample)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[int]:
        """The raw samples, in arrival order (a copy)."""
        return list(self._samples)

    def mean(self) -> float:
        if not self._samples:
            raise ValueError(f"no samples recorded in {self.name!r}")
        return sum(self._samples) / len(self._samples)

    def percentile(self, pct: float) -> int:
        """Exact percentile via the nearest-rank method."""
        if not self._samples:
            raise ValueError(f"no samples recorded in {self.name!r}")
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        if pct == 0.0:
            return self._sorted[0]
        rank = math.ceil(pct / 100.0 * len(self._sorted))
        return self._sorted[rank - 1]

    def median(self) -> int:
        return self.percentile(50.0)

    def p99(self) -> int:
        return self.percentile(99.0)

    def maximum(self) -> int:
        return self.percentile(100.0)

    def minimum(self) -> int:
        return self.percentile(0.0)

    def cdf(self, points: int = 200) -> List[Tuple[int, float]]:
        """The empirical CDF as ``(latency_ns, fraction)`` pairs.

        Downsamples to at most ``points`` evenly spaced quantiles so plots
        and reports stay small regardless of sample count.
        """
        if not self._samples:
            return []
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        n = len(self._sorted)
        if n <= points:
            return [(value, (i + 1) / n) for i, value in enumerate(self._sorted)]
        curve = []
        for i in range(points):
            frac = (i + 1) / points
            idx = min(n - 1, math.ceil(frac * n) - 1)
            curve.append((self._sorted[idx], frac))
        return curve

    def summary(self) -> Dict[str, float]:
        """Mean/median/p99/min/max in one dict (nanoseconds)."""
        return {
            "count": self.count,
            "mean": self.mean(),
            "p50": float(self.median()),
            "p99": float(self.p99()),
            "min": float(self.minimum()),
            "max": float(self.maximum()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LatencyRecorder {self.name!r} n={self.count}>"


class ThroughputMeter:
    """Counts completions over simulated time and reports ops/second."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.completions = 0
        self._first_ns: Optional[int] = None
        self._last_ns: Optional[int] = None

    def record(self, now_ns: int) -> None:
        """Register one completion at simulated time ``now_ns``."""
        if self._first_ns is None:
            self._first_ns = now_ns
        self._last_ns = now_ns
        self.completions += 1

    def ops_per_second(self) -> float:
        """Completions per simulated second over the observed window."""
        if self.completions < 2 or self._first_ns == self._last_ns:
            raise ValueError(
                f"need >= 2 spread-out completions in {self.name!r} to "
                "compute throughput")
        window_ns = self._last_ns - self._first_ns  # type: ignore[operator]
        return (self.completions - 1) * 1e9 / window_ns


class TimeSeries:
    """Records ``(time_ns, value)`` observations for later inspection."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.points: List[Tuple[int, float]] = []

    def record(self, now_ns: int, value: float) -> None:
        if self.points and now_ns < self.points[-1][0]:
            raise ValueError("time series observations must be monotonic")
        self.points.append((now_ns, value))

    def values(self) -> List[float]:
        return [value for _time, value in self.points]

    def __len__(self) -> int:
        return len(self.points)
