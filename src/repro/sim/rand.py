"""Seeded random streams for reproducible experiments.

Each named component draws from its own :class:`random.Random` stream,
derived deterministically from the root seed.  Separate streams keep
components statistically independent and — more importantly — keep one
component's draw count from perturbing another's, so adding a monitor or a
workload does not change unrelated results.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Sequence


class RandomStreams:
    """A factory of named, deterministic random streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            # Stable derivation: hash of (seed, name) via Random's own
            # str-seeding, which is version-stable for str seeds.
            rng = random.Random(f"{self.seed}/{name}")
            self._streams[name] = rng
        return rng

    def __contains__(self, name: str) -> bool:
        return name in self._streams


class LatencyJitter:
    """Lognormal jitter around a base latency.

    Real host stacks show right-skewed latency: most packets take close to
    the base cost, a tail takes much longer (scheduler preemption, cache
    misses, interrupt coalescing).  A lognormal with small sigma models this
    with a single shape parameter.

    ``sample(base_ns)`` returns the jittered latency, always >= a floor of
    half the base so jitter can never produce implausibly fast packets.
    """

    def __init__(self, rng: random.Random, sigma: float = 0.12) -> None:
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self._rng = rng
        self.sigma = sigma
        # E[lognormal(mu, sigma)] = exp(mu + sigma^2/2); pick mu so the
        # mean multiplier is exactly 1.0.
        self._mu = -sigma * sigma / 2.0

    def sample(self, base_ns: int) -> int:
        """One jittered sample around ``base_ns`` (mean-preserving)."""
        if base_ns <= 0 or self.sigma == 0.0:
            return max(base_ns, 0)
        factor = self._rng.lognormvariate(self._mu, self.sigma)
        return max(base_ns // 2, round(base_ns * factor))

    def getstate(self):
        """Snapshot the underlying stream (for revocable pre-draws)."""
        return self._rng.getstate()

    def setstate(self, state) -> None:
        """Rewind the underlying stream to a :meth:`getstate` snapshot."""
        self._rng.setstate(state)


def zipfian_ranks(rng: random.Random, population: int, theta: float,
                  count: int) -> list[int]:
    """Draw ``count`` ranks in ``[0, population)`` from a Zipf distribution.

    Uses the standard YCSB rejection-free inverse-CDF construction with
    exponent ``theta`` (0 = uniform, 0.99 = YCSB default skew).
    """
    if population <= 0:
        raise ValueError(f"population must be positive, got {population}")
    if not 0.0 <= theta < 1.0:
        raise ValueError(f"theta must be in [0, 1), got {theta}")
    if theta == 0.0:
        return [rng.randrange(population) for _ in range(count)]
    zetan = _zeta(population, theta)
    zeta2 = _zeta(2, theta)
    alpha = 1.0 / (1.0 - theta)
    # For population <= 2 every draw lands in the first two branches
    # (u * zetan < zetan = zeta2), so eta is never used; guarding the
    # division avoids the 0/0 at population == 2.
    denominator = 1.0 - zeta2 / zetan
    if denominator == 0.0:
        eta = 0.0
    else:
        eta = (1.0 - (2.0 / population) ** (1.0 - theta)) / denominator
    ranks = []
    for _ in range(count):
        u = rng.random()
        uz = u * zetan
        if uz < 1.0:
            ranks.append(0)
        elif uz < 1.0 + 0.5 ** theta:
            ranks.append(1)
        else:
            ranks.append(min(population - 1,
                             int(population * (eta * u - eta + 1.0) ** alpha)))
    return ranks


#: Memoized Zipf normalizers.  ``_zeta`` is O(n) and the YCSB generator
#: needs the same ``(population, theta)`` constant for *every* operation,
#: so recomputing it per draw used to dominate whole experiment runs.
_ZETA_CACHE: Dict[tuple[int, float], float] = {}


def _zeta(n: int, theta: float) -> float:
    """Generalized harmonic number H_{n,theta} (the Zipf normalizer)."""
    key = (n, theta)
    value = _ZETA_CACHE.get(key)
    if value is None:
        value = sum(1.0 / (i ** theta) for i in range(1, n + 1))
        _ZETA_CACHE[key] = value
    return value


def exponential_delay(rng: random.Random, mean_ns: int) -> int:
    """One exponential inter-arrival delay with the given mean (>= 0 ns)."""
    if mean_ns <= 0:
        return 0
    return max(0, round(rng.expovariate(1.0 / mean_ns)))


def choose_weighted(rng: random.Random, items: Sequence[object],
                    weights: Sequence[float]) -> object:
    """Pick one item with probability proportional to its weight."""
    if len(items) != len(weights) or not items:
        raise ValueError("items and weights must be equal-length, non-empty")
    total = math.fsum(weights)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    point = rng.random() * total
    acc = 0.0
    for item, weight in zip(items, weights):
        acc += weight
        if point < acc:
            return item
    return items[-1]
