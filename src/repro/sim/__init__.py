"""Discrete-event simulation kernel (clock, events, processes, monitors).

This is the foundation every other subsystem runs on.  Typical use::

    from repro.sim import Simulator, microseconds

    sim = Simulator(seed=42)

    def client():
        yield microseconds(5)          # sleep 5 us of simulated time
        done.succeed("hello")

    done = sim.event("done")
    sim.spawn(client())
    sim.run()
"""

from repro.sim.clock import (
    MICROSECOND,
    MILLISECOND,
    NANOSECOND,
    SECOND,
    format_time,
    microseconds,
    milliseconds,
    nanoseconds,
    seconds,
    to_microseconds,
    to_milliseconds,
    to_seconds,
    transmission_delay,
)
from repro.sim.event import (
    EventQueue,
    HeapEventQueue,
    ScheduledCall,
    SimEvent,
    TieredEventQueue,
    make_event_queue,
)
from repro.sim.kernel import Simulator, resolve_kernel_backend
from repro.sim.monitor import (
    Counter,
    Gauge,
    LatencyRecorder,
    ThroughputMeter,
    TimeSeries,
    component_summary,
    instruments_summary,
)
from repro.sim.process import AllOf, AnyOf, Interrupted, Process
from repro.sim.profiler import EventProfiler
from repro.sim.rand import (
    LatencyJitter,
    RandomStreams,
    choose_weighted,
    exponential_delay,
    zipfian_ranks,
)
from repro.sim.trace import TraceRecord, Tracer


def __getattr__(name: str):
    # Deprecated: GLOBAL_TRACER survives as a lazy re-export so old
    # imports keep working (with a DeprecationWarning) for one release
    # without the warning firing at package-import time.
    if name == "GLOBAL_TRACER":
        from repro.sim import trace

        return trace.GLOBAL_TRACER
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "NANOSECOND", "MICROSECOND", "MILLISECOND", "SECOND",
    "nanoseconds", "microseconds", "milliseconds", "seconds",
    "to_microseconds", "to_milliseconds", "to_seconds",
    "format_time", "transmission_delay",
    "EventQueue", "HeapEventQueue", "TieredEventQueue", "make_event_queue",
    "ScheduledCall", "SimEvent",
    "Simulator", "resolve_kernel_backend",
    "Process", "AllOf", "AnyOf", "Interrupted",
    "Counter", "Gauge", "LatencyRecorder", "ThroughputMeter", "TimeSeries",
    "component_summary", "instruments_summary", "EventProfiler",
    "RandomStreams", "LatencyJitter", "zipfian_ranks",
    "exponential_delay", "choose_weighted",
    "Tracer", "TraceRecord",
]
