"""The discrete-event simulation kernel.

:class:`Simulator` owns the virtual clock and the event queue.  Components
schedule plain callbacks (``schedule``/``call_soon``) or spawn coroutine
processes (see :mod:`repro.sim.process`).  The kernel is single-threaded
and deterministic: given the same seed and the same scheduling order, a run
is bit-for-bit reproducible.

The scheduling path is the hottest code in the repository: every packet,
pipeline stage, PM access, and stack crossing becomes at least one event.
``schedule`` therefore stores ``(callback, args)`` directly on the queue
record — no binding lambda per event — and :meth:`Simulator.run` drives
the heap with a tight loop that pops each event exactly once instead of
peeking and re-popping.  ``benchmarks/test_kernel_events.py`` and the
``pmnet-repro bench-kernel`` subcommand track the events/sec this yields.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator, Optional

from repro.errors import SimulationError
from repro.sim.clock import format_time
from repro.sim.event import EventQueue, ScheduledCall, SimEvent
from repro.sim.process import Process
from repro.sim.rand import RandomStreams
from repro.sim.trace import Tracer


class Simulator:
    """A deterministic discrete-event simulator with integer-ns time."""

    def __init__(self, seed: int = 0, obs: Optional[Any] = None) -> None:
        self._now = 0
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        self.random = RandomStreams(seed)
        #: Number of callbacks executed so far (observability/debugging).
        self.executed_events = 0
        #: Opt-in event accounting (see :mod:`repro.sim.profiler`).
        self._profiler = None
        #: Optional :class:`~repro.obs.context.Observability` bundle
        #: (metrics registry + span recorder + tracer).  ``None`` means
        #: components neither register nor record — the zero-cost default.
        self.obs = obs
        #: The tracer components inherit when none is injected directly.
        #: Always present so call sites need no ``None`` checks; disabled
        #: (and therefore free) unless the bundle enables tracing.
        self.tracer: Tracer = obs.tracer if obs is not None else Tracer(enabled=False)

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    def attach_profiler(self, profiler) -> None:
        """Attribute every executed event to its call site.

        ``profiler`` is an :class:`~repro.sim.profiler.EventProfiler`
        (anything with a ``record(callback)`` method works).  Attach
        before ``run()``: the hot loop binds the profiler at entry.
        """
        self._profiler = profiler

    def detach_profiler(self) -> None:
        self._profiler = None

    @property
    def profiler(self):
        return self._profiler

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[..., None],
                 *args: Any) -> ScheduledCall:
        """Run ``callback(*args)`` after ``delay`` nanoseconds.

        ``delay`` must be non-negative; scheduling into the past would break
        causality and is always a caller bug.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}ns into the past")
        return self._queue.push(self._now + delay, callback, args)

    def schedule_at(self, time: int, callback: Callable[..., None],
                    *args: Any) -> ScheduledCall:
        """Run ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {format_time(time)}, now is "
                f"{format_time(self._now)}")
        return self._queue.push(time, callback, args)

    def call_soon(self, callback: Callable[..., None], *args: Any) -> ScheduledCall:
        """Run ``callback(*args)`` at the current time, after pending events."""
        return self._queue.push(self._now, callback, args)

    def schedule_deferred(self, delay: int, defer_ns,
                          callback: Callable[..., None],
                          *args: Any) -> ScheduledCall:
        """Fold fixed back-to-back delays into one executed event.

        Equivalent to scheduling an intermediate callback at ``delay``
        whose only job is to schedule ``callback(*args)`` another
        ``defer_ns`` later — but the intermediate hop never runs Python:
        the kernel re-sequences the record when it surfaces.  Seq
        numbers are allocated at exactly the same two virtual instants
        as the unfolded chain, so same-time tie-breaking (and therefore
        byte-for-byte run reproducibility) is unaffected; only the
        executed-event count and the intermediate callback's overhead
        drop.  ``defer_ns`` may be a tuple of delays: an n-stage
        fixed-latency pipeline then collapses to a single executed
        event, one re-sequencing per intermediate hop.  Use only when
        every intermediate callback would have had no observable side
        effect.
        """
        chain = defer_ns if isinstance(defer_ns, tuple) else (defer_ns,)
        if delay < 0 or any(d < 0 for d in chain) or not chain:
            raise SimulationError(
                f"cannot schedule {delay}+{defer_ns}ns into the past")
        return self._queue.push_deferred(self._now + delay, defer_ns,
                                         callback, args)

    # ------------------------------------------------------------------
    # Events and processes
    # ------------------------------------------------------------------
    def event(self, name: str = "") -> SimEvent:
        """Create a fresh, untriggered :class:`SimEvent`."""
        return SimEvent(self, name)

    def timeout(self, delay: int, value: Any = None) -> SimEvent:
        """An event that succeeds with ``value`` after ``delay`` ns."""
        ev = SimEvent(self, f"timeout({delay})")
        self.schedule(delay, ev.succeed, value)
        return ev

    def spawn(self, generator: Iterator[Any], name: str = "") -> Process:
        """Start a coroutine process (a generator yielding events/delays)."""
        return Process(self, generator, name)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single earliest pending event.

        Returns ``False`` when the queue is empty, ``True`` otherwise.
        Cancelled :class:`ScheduledCall`s are skipped exactly as in
        :meth:`run` — they neither execute nor count toward
        ``executed_events`` — so a workload stepped to completion and
        the same workload driven by ``run()`` report identical event
        counts (``tests/sim/test_profiler.py`` guards this).
        """
        queue = self._queue
        heap = queue._heap
        while True:
            if not heap:
                return False
            call = heapq.heappop(heap)[2]
            if call.cancelled:
                continue
            if call.defer_ns:
                queue.resequence(call)
                continue
            break
        if call.time < self._now:
            raise SimulationError("event queue returned a past event")
        self._now = call.time
        self.executed_events += 1
        if self._profiler is not None:
            self._profiler.record(call.callback)
        call.callback(*call.args)
        return True

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` (absolute ns), or a budget.

        Returns the simulated time at which execution stopped.  ``until`` is
        inclusive: events scheduled exactly at ``until`` execute.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        self._stopped = False
        # Hot loop: operate on the heap directly so each event costs one
        # pop (not a peek + a pop) and cancelled entries are skipped once.
        queue = self._queue
        heap = queue._heap
        heappop = heapq.heappop
        resequence = queue.resequence
        profiler = self._profiler
        executed = 0
        try:
            while not self._stopped:
                if not heap:
                    break
                time, _seq, call = heap[0]
                if call.cancelled:
                    heappop(heap)
                    continue
                if until is not None and time > until:
                    self._now = until
                    break
                if max_events is not None and executed >= max_events:
                    break
                heappop(heap)
                if call.defer_ns:
                    # Latency-folded record: move it to its final slot
                    # (fresh seq, no callback) — not an executed event.
                    resequence(call)
                    continue
                self._now = time
                executed += 1
                if profiler is not None:
                    profiler.record(call.callback)
                call.callback(*call.args)
        finally:
            self.executed_events += executed
            self._running = False
        return self._now

    def stop(self) -> None:
        """Stop :meth:`run` after the current event completes."""
        self._stopped = True

    def pending_events(self) -> int:
        """Number of events waiting in the queue."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Simulator now={format_time(self._now)} "
                f"pending={self.pending_events()}>")
