"""The discrete-event simulation kernel.

:class:`Simulator` owns the virtual clock and the event queue.  Components
schedule plain callbacks (``schedule``/``call_soon``) or spawn coroutine
processes (see :mod:`repro.sim.process`).  The kernel is single-threaded
and deterministic: given the same seed and the same scheduling order, a run
is bit-for-bit reproducible.

The scheduling path is the hottest code in the repository: every packet,
pipeline stage, PM access, and stack crossing becomes at least one event.
``schedule`` therefore stores ``(callback, args)`` directly on the queue
record — no binding lambda per event — and the queue itself is swappable
(``PMNET_KERNEL``): the reference binary heap, or the default tiered
scheduler whose now lane and calendar make same-instant wakeups and short
timers sift-free (see :mod:`repro.sim.event`).  :meth:`Simulator.run` is
specialized per backend — a monomorphic pop with hoisted locals, written
back on exit — because a generic ``queue.pop()`` per event costs more than
the queue work it wraps.  ``benchmarks/test_kernel_events.py`` and the
``pmnet-repro bench-kernel`` subcommand track the events/sec this yields.
"""

from __future__ import annotations

import heapq
import importlib
import warnings
from typing import Any, Callable, Iterator, Optional

from repro.errors import SimulationError
from repro.sim.clock import format_time
from repro.sim.event import (EventQueue, ScheduledCall, SimEvent,  # noqa: F401
                             make_event_queue)
from repro.sim.process import Process
from repro.sim.rand import RandomStreams
from repro.sim.trace import Tracer

_warned_compiled_fallback = False


def reset_compiled_fallback_warning() -> None:
    """Re-arm the once-per-process compiled-fallback warning.

    The latch makes the warning untestable after the first resolution in
    a process; tests (and anything that swaps ``repro.sim.compiled`` in
    or out at runtime) reset it through this hook instead of poking the
    module global.
    """
    global _warned_compiled_fallback
    _warned_compiled_fallback = False


def resolve_kernel_backend(name: Optional[str] = None) -> str:
    """Resolve the configured scheduler backend to an available one.

    ``compiled`` is a hook point for an ahead-of-time-compiled queue (the
    ROADMAP's mypyc/Cython item): it resolves to the ``repro.sim.compiled``
    module when importable and falls back to ``tiered`` (once, with a
    warning) when not, so ``PMNET_KERNEL=compiled`` is always safe to set.
    A compiled backend must either mirror ``TieredEventQueue``'s structural
    contract or export its own ``run_loop(sim, until, max_events)``.
    """
    if name is None:
        # Imported here, not at module top: repro.config itself imports
        # repro.sim.clock, so a top-level import would be circular.
        from repro.config import kernel_backend
        name = kernel_backend()
    if name == "compiled":
        try:
            importlib.import_module("repro.sim.compiled")
        except ImportError:
            global _warned_compiled_fallback
            if not _warned_compiled_fallback:
                _warned_compiled_fallback = True
                warnings.warn(
                    "PMNET_KERNEL=compiled requested but repro.sim.compiled "
                    "is not built; falling back to the tiered backend",
                    RuntimeWarning, stacklevel=2)
            return "tiered"
    return name


class Simulator:
    """A deterministic discrete-event simulator with integer-ns time."""

    def __init__(self, seed: int = 0, obs: Optional[Any] = None,
                 kernel: Optional[str] = None) -> None:
        self._now = 0
        #: The resolved scheduler backend name (``heap``/``tiered``/...),
        #: fixed at construction; ``PMNET_KERNEL`` selects it.
        self.kernel = resolve_kernel_backend(kernel)
        if self.kernel == "compiled":
            compiled = importlib.import_module("repro.sim.compiled")
            self._queue = compiled.make_event_queue()
            self._compiled_run = getattr(compiled, "run_loop", None)
        else:
            compiled = None
            self._queue = make_event_queue(self.kernel)
            self._compiled_run = None
        self._running = False
        self._stopped = False
        if self.kernel in ("heap", "tiered"):
            # Shadow the generic schedule/call_soon methods with
            # backend-specialized closures (see _bind_fast_scheduling).
            self._bind_fast_scheduling()
        elif compiled is not None:
            # The compiled module generates its own push closures (the
            # horizon is constant-folded); absent the hook it keeps the
            # generic methods.
            bind = getattr(compiled, "bind_scheduling", None)
            if bind is not None:
                bind(self)
        self.random = RandomStreams(seed)
        #: Number of callbacks executed so far (observability/debugging).
        self.executed_events = 0
        #: Opt-in event accounting (see :mod:`repro.sim.profiler`).
        self._profiler = None
        #: Optional :class:`~repro.obs.context.Observability` bundle
        #: (metrics registry + span recorder + tracer).  ``None`` means
        #: components neither register nor record — the zero-cost default.
        self.obs = obs
        #: The tracer components inherit when none is injected directly.
        #: Always present so call sites need no ``None`` checks; disabled
        #: (and therefore free) unless the bundle enables tracing.
        self.tracer: Tracer = obs.tracer if obs is not None else Tracer(enabled=False)

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    def attach_profiler(self, profiler) -> None:
        """Attribute every executed event to its call site.

        ``profiler`` is an :class:`~repro.sim.profiler.EventProfiler`
        (anything with a ``record(callback)`` method works).  Attach
        before ``run()``: the hot loop binds the profiler at entry.
        """
        self._profiler = profiler

    def detach_profiler(self) -> None:
        self._profiler = None

    @property
    def profiler(self):
        return self._profiler

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def _bind_fast_scheduling(self) -> None:
        """Install per-instance ``schedule``/``call_soon`` closures.

        ``schedule`` and ``call_soon`` are called once per event — the
        generic methods pay a second call frame just to reach
        ``queue.push``.  These closures repeat the push body inline
        (record construction via direct slot stores, tier routing for
        the tiered backend) with the queue structures captured as
        closure cells.  Semantics are identical to the class methods
        they shadow — the causality guard, the returned handle, and the
        exact routing mirror ``HeapEventQueue.push`` /
        ``TieredEventQueue.push``; any change there must be repeated
        here (and in ``repro.sim.compiled``, which generates the same
        closures with the horizon constant-folded).
        """
        q = self._queue
        new = ScheduledCall.__new__
        record_cls = ScheduledCall
        heappush = heapq.heappush
        if self.kernel == "heap":
            heap = q._heap

            def schedule(delay, callback, *args):
                if delay < 0:
                    raise SimulationError(
                        f"cannot schedule {delay}ns into the past")
                time = self._now + delay
                seq = q._seq
                q._seq = seq + 1
                call = new(record_cls)
                call.time = time
                call.seq = seq
                call.callback = callback
                call.args = args
                call.cancelled = False
                call.defer_ns = 0
                call.owner = q
                heappush(heap, (time, seq, call))
                q._size += 1
                return call

            def call_soon(callback, *args):
                time = self._now
                seq = q._seq
                q._seq = seq + 1
                call = new(record_cls)
                call.time = time
                call.seq = seq
                call.callback = callback
                call.args = args
                call.cancelled = False
                call.defer_ns = 0
                call.owner = q
                heappush(heap, (time, seq, call))
                q._size += 1
                return call
        else:
            lane = q._lane
            buckets = q._buckets
            times = q._times
            far = q._far
            horizon = q._horizon

            def schedule(delay, callback, *args):
                if delay < 0:
                    raise SimulationError(
                        f"cannot schedule {delay}ns into the past")
                time = self._now + delay
                seq = q._seq
                q._seq = seq + 1
                call = new(record_cls)
                call.time = time
                call.seq = seq
                call.callback = callback
                call.args = args
                call.cancelled = False
                call.defer_ns = 0
                call.owner = q
                q._size += 1
                delta = time - q._qnow
                if delta == 0:
                    lane.append(call)
                elif delta < horizon:
                    bucket = buckets.get(time)
                    if bucket is None:
                        buckets[time] = call
                        heappush(times, time)
                    elif type(bucket) is list:
                        bucket.append(call)
                    else:
                        buckets[time] = [bucket, call]
                else:
                    heappush(far, (time, seq, call))
                return call

            def call_soon(callback, *args):
                time = self._now
                seq = q._seq
                q._seq = seq + 1
                call = new(record_cls)
                call.time = time
                call.seq = seq
                call.callback = callback
                call.args = args
                call.cancelled = False
                call.defer_ns = 0
                call.owner = q
                q._size += 1
                if time == q._qnow:
                    # The overwhelmingly common case: a wakeup at the
                    # instant being drained goes straight to the lane.
                    lane.append(call)
                else:
                    # Between runs the sim clock can sit past the queue
                    # clock (after run(until=...)); route generically.
                    delta = time - q._qnow
                    if delta < horizon:
                        bucket = buckets.get(time)
                        if bucket is None:
                            buckets[time] = call
                            heappush(times, time)
                        elif type(bucket) is list:
                            bucket.append(call)
                        else:
                            buckets[time] = [bucket, call]
                    else:
                        heappush(far, (time, seq, call))
                return call

        self.schedule = schedule
        self.call_soon = call_soon

    def schedule(self, delay: int, callback: Callable[..., None],
                 *args: Any) -> ScheduledCall:
        """Run ``callback(*args)`` after ``delay`` nanoseconds.

        ``delay`` must be non-negative; scheduling into the past would break
        causality and is always a caller bug.  (The tiered backend also
        *relies* on this guard: its routing invariants assume no record is
        ever pushed before the instant currently being drained.)
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}ns into the past")
        return self._queue.push(self._now + delay, callback, args)

    def schedule_at(self, time: int, callback: Callable[..., None],
                    *args: Any) -> ScheduledCall:
        """Run ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {format_time(time)}, now is "
                f"{format_time(self._now)}")
        return self._queue.push(time, callback, args)

    def call_soon(self, callback: Callable[..., None], *args: Any) -> ScheduledCall:
        """Run ``callback(*args)`` at the current time, after pending events."""
        return self._queue.push(self._now, callback, args)

    def schedule_deferred(self, delay: int, defer_ns,
                          callback: Callable[..., None],
                          *args: Any) -> ScheduledCall:
        """Fold fixed back-to-back delays into one executed event.

        Equivalent to scheduling an intermediate callback at ``delay``
        whose only job is to schedule ``callback(*args)`` another
        ``defer_ns`` later — but the intermediate hop never runs Python:
        the kernel re-sequences the record when it surfaces.  Seq
        numbers are allocated at exactly the same two virtual instants
        as the unfolded chain, so same-time tie-breaking (and therefore
        byte-for-byte run reproducibility) is unaffected; only the
        executed-event count and the intermediate callback's overhead
        drop.  ``defer_ns`` may be a tuple of delays: an n-stage
        fixed-latency pipeline then collapses to a single executed
        event, one re-sequencing per intermediate hop.  Use only when
        every intermediate callback would have had no observable side
        effect.
        """
        chain = defer_ns if isinstance(defer_ns, tuple) else (defer_ns,)
        if delay < 0 or any(d < 0 for d in chain) or not chain:
            raise SimulationError(
                f"cannot schedule {delay}+{defer_ns}ns into the past")
        return self._queue.push_deferred(self._now + delay, defer_ns,
                                         callback, args)

    # ------------------------------------------------------------------
    # Events and processes
    # ------------------------------------------------------------------
    def event(self, name: str = "") -> SimEvent:
        """Create a fresh, untriggered :class:`SimEvent`."""
        return SimEvent(self, name)

    def timeout(self, delay: int, value: Any = None) -> SimEvent:
        """An event that succeeds with ``value`` after ``delay`` ns."""
        ev = SimEvent(self, f"timeout({delay})")
        self.schedule(delay, ev.succeed, value)
        return ev

    def spawn(self, generator: Iterator[Any], name: str = "") -> Process:
        """Start a coroutine process (a generator yielding events/delays)."""
        return Process(self, generator, name)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single earliest pending event.

        Returns ``False`` when the queue is empty, ``True`` otherwise.
        Cancelled :class:`ScheduledCall`s are skipped exactly as in
        :meth:`run` — they neither execute nor count toward
        ``executed_events`` — so a workload stepped to completion and
        the same workload driven by ``run()`` report identical event
        counts (``tests/sim/test_profiler.py`` guards this).
        """
        call = self._queue._pop_live()
        if call is None:
            return False
        if call.time < self._now:
            raise SimulationError("event queue returned a past event")
        self._now = call.time
        self.executed_events += 1
        if self._profiler is not None:
            self._profiler.record(call.callback)
        call.callback(*call.args)
        return True

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` (absolute ns), or a budget.

        Returns the simulated time at which execution stopped.  ``until`` is
        inclusive: events scheduled exactly at ``until`` execute.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        self._stopped = False
        try:
            if self._compiled_run is not None:
                self._compiled_run(self, until, max_events)
            elif self.kernel == "heap":
                self._run_heap(until, max_events)
            else:
                self._run_tiered(until, max_events)
        finally:
            self._running = False
        return self._now

    def _run_heap(self, until: Optional[int], max_events: Optional[int]) -> None:
        """The hot loop over the reference heap backend.

        Operates on the heap directly so each event costs one pop (not a
        peek + a pop) and cancelled entries are skipped once.
        """
        q = self._queue
        heap = q._heap
        heappop = heapq.heappop
        resequence = q.resequence
        profiler = self._profiler
        check_until = until is not None
        budget = -1 if max_events is None else max_events
        executed = 0
        pops = 0
        reseqs = 0
        try:
            while not self._stopped:
                if not heap:
                    break
                time, _seq, call = heap[0]
                if call.cancelled:
                    heappop(heap)
                    pops += 1
                    q._drop_cancelled()
                    continue
                if check_until and time > until:
                    self._now = until
                    break
                if executed == budget:
                    break
                heappop(heap)
                pops += 1
                if call.defer_ns:
                    # Latency-folded record: move it to its final slot
                    # (fresh seq, no callback) — not an executed event.
                    resequence(call)
                    reseqs += 1
                    continue
                call.owner = None
                self._now = time
                executed += 1
                if profiler is not None:
                    profiler.record(call.callback)
                call.callback(*call.args)
        finally:
            # The live-entry counter is batched across the run: pushes and
            # cancels hit the attribute directly, so applying the executed
            # total here leaves it exact.
            q._size -= executed
            q.far_pops += pops
            q.resequences += reseqs
            self.executed_events += executed

    def _run_tiered(self, until: Optional[int], max_events: Optional[int]) -> None:
        """The hot loop over the tiered backend.

        Mirrors ``TieredEventQueue._pop_any`` with the tier structures and
        cursors hoisted into locals (written back on exit).  Two loop-only
        liberties, both unobservable: the ``until``/budget checks run
        before cancelled-head skipping (a cancelled record neither executes
        nor counts in ``len()``, so leaving it unconsumed at a stop is
        equivalent to the heap loop purging it), and the queue clock may
        advance over a cancelled head (no user code runs between that
        advance and the next live pop, so no push can observe it).

        One subtlety keeps the first liberty honest: the heap loop purges
        a cancelled head *before* its ``until`` check, so when everything
        beyond the bound is dead it drains to empty and leaves ``now`` at
        the last executed event — it only pins ``now`` to ``until`` when a
        live record remains.  This loop therefore guards the
        ``self._now = until`` write on the live count (``q._size`` minus
        the batched ``executed``), which is exact mid-run because cancels
        decrement ``_size`` immediately.  Every record still queued is at
        or beyond the head time being tested, so "a live record remains"
        and "a live record remains beyond ``until``" coincide here.
        """
        q = self._queue
        lane = q._lane
        buckets = q._buckets
        times = q._times
        far = q._far
        heappop = heapq.heappop
        resequence = q.resequence
        profiler = self._profiler
        check_until = until is not None
        budget = -1 if max_events is None else max_events
        executed = 0
        lane_pops = near_pops = far_pops = reseqs = 0
        cur = q._cur
        cur_pos = q._cur_pos
        lane_pos = q._lane_pos
        qnow = q._qnow
        # Whether the far tier and calendar have been probed (and found
        # empty) at the current drain instant — loop-local only: it is
        # re-derived from scratch at every time advance.
        lane_checked = False
        try:
            while not self._stopped:
                # Select and consume the earliest record (far ≺ bucket ≺
                # lane at equal time; see the event-module ordering
                # proof).  ``until``/budget are checked per branch, before
                # anything is consumed or the queue clock moves.
                if cur_pos < len(cur):
                    # Draining a claimed bucket.  No far-tier check: far
                    # pushes land at least a horizon beyond the drain
                    # instant, so nothing can join this time.
                    if check_until and qnow > until:
                        if q._size - executed > 0:
                            self._now = until
                        break
                    if executed == budget:
                        break
                    call = cur[cur_pos]
                    cur_pos += 1
                    near_pops += 1
                    time = qnow
                elif lane_pos < len(lane):
                    if check_until and qnow > until:
                        if q._size - executed > 0:
                            self._now = until
                        break
                    if executed == budget:
                        break
                    if lane_checked:
                        # Far tier and calendar were already probed at
                        # this instant and hold nothing for it; neither
                        # can gain a record at the drain instant (far
                        # pushes land a horizon out, same-instant pushes
                        # join the lane), so drain the lane unchecked.
                        call = lane[lane_pos]
                        lane_pos += 1
                        lane_pops += 1
                    elif far and far[0][0] == qnow:
                        call = heappop(far)[2]
                        far_pops += 1
                    elif times and times[0] == qnow:
                        # A bucket at the drain instant (reached through
                        # the far tier): claim it — its records precede
                        # the lane's.
                        heappop(times)
                        bucket = buckets.pop(qnow)
                        if type(bucket) is list:
                            cur = q._cur = bucket
                            cur_pos = 1
                            call = bucket[0]
                        else:
                            call = bucket
                        near_pops += 1
                    else:
                        lane_checked = True
                        call = lane[lane_pos]
                        lane_pos += 1
                        lane_pops += 1
                    time = qnow
                else:
                    if lane:
                        # The drain instant is fully consumed; reset the
                        # lane in place (the queue holds the same list).
                        del lane[:]
                        lane_pos = 0
                    lane_checked = False
                    from_far = False
                    if times:
                        time = times[0]
                        if far and far[0][0] <= time:
                            time = far[0][0]
                            from_far = True
                    elif far:
                        time = far[0][0]
                        from_far = True
                    else:
                        break
                    if check_until and time > until:
                        if q._size - executed > 0:
                            self._now = until
                        break
                    if executed == budget:
                        break
                    if from_far:
                        call = heappop(far)[2]
                        far_pops += 1
                    else:
                        heappop(times)
                        bucket = buckets.pop(time)
                        if type(bucket) is list:
                            cur = q._cur = bucket
                            cur_pos = 1
                            call = bucket[0]
                        else:
                            call = bucket
                        near_pops += 1
                    qnow = q._qnow = time
                if call.cancelled:
                    q._drop_cancelled()
                    continue
                if call.defer_ns:
                    # Latency-folded record: move it to its final slot
                    # (fresh seq, no callback) — not an executed event.
                    resequence(call)
                    reseqs += 1
                    continue
                call.owner = None
                self._now = time
                executed += 1
                if profiler is not None:
                    profiler.record(call.callback)
                call.callback(*call.args)
        finally:
            q._cur_pos = cur_pos
            q._lane_pos = lane_pos
            # Live-entry counter batched as in the heap loop.
            q._size -= executed
            q.lane_pops += lane_pops
            q.near_pops += near_pops
            q.far_pops += far_pops
            q.resequences += reseqs
            self.executed_events += executed

    def stop(self) -> None:
        """Stop :meth:`run` after the current event completes."""
        self._stopped = True

    def pending_events(self) -> int:
        """Number of events waiting in the queue (O(1))."""
        return len(self._queue)

    def kernel_stats(self) -> dict:
        """Scheduler-backend accounting: pops per tier, re-sequencings,
        compactions, and pending/cancelled counts (see ``tier_stats`` on
        the queue classes).  Cheap enough to call between runs; pop
        counters are written back when :meth:`run` exits."""
        stats = self._queue.tier_stats()
        stats["kernel"] = self.kernel
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Simulator now={format_time(self._now)} "
                f"pending={self.pending_events()}>")
