"""Raw kernel events/sec microbenchmark.

This measures the scheduling hot path in isolation — no packets, no PM
model, just the cost of pushing a callback onto the event queue and
executing it.  Every simulated packet costs a handful of these, so the
number here bounds whole-experiment wall time.

The workload mirrors the shape of the simulator's real traffic:
self-rescheduling tickers that carry *state as positional arguments*
(components hand their context to ``schedule`` on every packet) plus
coroutine processes sleeping on integer delays (the driver/client
pattern).  Co-prime ticker periods keep the heap genuinely ordered
rather than degenerate.

Two entry points use this module: ``pmnet-repro bench-kernel`` (writes
``BENCH_kernel.json``) and ``benchmarks/test_kernel_events.py``.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.sim.kernel import Simulator

#: Concurrent actors (half tickers, half sleeping processes).  A loaded
#: run keeps hundreds of events pending — e.g. 64 closed-loop clients
#: each with a request, a retransmit timer, and device/PM completions in
#: flight — so the heap must be exercised at that depth, where ordering
#: cost dominates.
_NUM_ACTORS = 192

#: Actor periods in ns — odd and varied so event times interleave and
#: the heap stays genuinely ordered rather than degenerate.
_PERIODS = tuple(3 + 2 * i for i in range(_NUM_ACTORS))

#: Result file emitted by ``pmnet-repro bench-kernel``.
BENCH_RESULT_FILE = "BENCH_kernel.json"


class _Ticker:
    """A callback that rearms itself, passing state as arguments.

    Real components never schedule bare thunks: a packet arrival carries
    the packet, a PM completion carries the access record.  Passing
    ``hop``/``payload`` through ``schedule`` exercises exactly that path.
    """

    __slots__ = ("sim", "period", "hops")

    def __init__(self, sim: Simulator, period: int) -> None:
        self.sim = sim
        self.period = period
        self.hops = 0

    def fire(self, hop: int, payload: object) -> None:
        self.hops = hop
        self.sim.schedule(self.period, self.fire, hop + 1, payload)


def _sleeper(period: int):
    """A coroutine process sleeping on integer delays (driver pattern)."""
    while True:
        yield period


def run_once(num_events: int = 300_000) -> Dict[str, float]:
    """Execute ``num_events`` hot-path events; return timing for one run."""
    if num_events <= 0:
        raise ValueError("num_events must be positive")
    sim = Simulator(seed=0)
    for index, period in enumerate(_PERIODS):
        if index % 2:
            sim.spawn(_sleeper(period), f"sleeper{index}")
        else:
            ticker = _Ticker(sim, period)
            sim.schedule(period, ticker.fire, 0, ("state", index))
    started = time.perf_counter()
    sim.run(max_events=num_events)
    elapsed = time.perf_counter() - started
    executed = sim.executed_events
    return {
        "events": float(executed),
        "seconds": elapsed,
        "events_per_second": executed / elapsed if elapsed > 0 else 0.0,
    }


def run_kernel_benchmark(num_events: int = 300_000,
                         repeats: int = 3) -> Dict[str, object]:
    """Run the microbenchmark ``repeats`` times; report the best rate.

    Best-of-N is the standard microbenchmark reduction: the minimum wall
    time is the run least disturbed by the OS, and the quantity being
    measured (pure CPU work) has no legitimate variance of its own.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    runs = [run_once(num_events) for _ in range(repeats)]
    best = max(runs, key=lambda r: r["events_per_second"])
    return {
        "benchmark": "kernel_events",
        "num_events": num_events,
        "repeats": repeats,
        "events_per_second": best["events_per_second"],
        "seconds": best["seconds"],
        "all_events_per_second": [r["events_per_second"] for r in runs],
    }


def write_result(result: Dict[str, object],
                 path: Optional[str] = None) -> str:
    """Write the enveloped benchmark report as JSON; return the path."""
    from repro.obs.export import write_bench_report

    target = path or BENCH_RESULT_FILE
    return write_bench_report('kernel', result, target, quick=True)


def format_result(result: Dict[str, object]) -> str:
    rate = result["events_per_second"]
    return (f"kernel events/sec: {rate:,.0f} "
            f"({result['num_events']} events, best of {result['repeats']})")
