"""Raw kernel events/sec microbenchmark.

This measures the scheduling hot path in isolation — no packets, no PM
model, just the cost of pushing a callback onto the event queue and
executing it.  Every simulated packet costs a handful of these, so the
number here bounds whole-experiment wall time.

Three queue shapes are measured, each against **all three** scheduler
backends (``PMNET_KERNEL=heap|tiered|compiled``), so the report carries
its own reference points — absolute events/sec vary wildly across
machines, but the tiered-vs-heap and compiled-vs-tiered ratios on the
same interpreter are properties of the code:

* ``mixed`` — the headline shape: self-rescheduling tickers that carry
  *state as positional arguments* (components hand their context to
  ``schedule`` on every packet), each arrival fanning out a short
  same-instant dispatch chain (SimEvent waiter wakeup + downstream
  handler, the pattern every completion produces), plus coroutine
  processes sleeping on integer delays (the driver/client pattern) and
  a slice of long timers that land in the far tier (think time,
  retransmission windows).  Co-prime ticker periods keep the queue
  genuinely ordered rather than degenerate.
* ``same_instant`` — bursts of chained ``call_soon`` wakeups over a
  loaded pending set: the flash-crowd case the now lane exists for.
* ``cancel_heavy`` — the retransmission pattern: every completion
  carries a guard timer that is cancelled when the completion fires, so
  half of all scheduled records die unexecuted.  Exercises the O(1)
  cancel accounting and the compaction sweep.

Timing uses CPU time (``time.process_time``): on shared hosts, stolen
cycles freeze both the work and the CPU clock, so events per CPU-second
is far more stable than wall-clock rates.  Wall seconds are reported
alongside for context.

Two entry points use this module: ``pmnet-repro bench-kernel`` (writes
``BENCH_kernel.json``) and ``benchmarks/test_kernel_events.py`` (the
regression floors: on the mixed shape, the best adjacent heap/tiered
pair measured in the same process must stay ≥1.25×, and the best
adjacent tiered/compiled pair ≥1.15×).
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.sim.kernel import Simulator

#: Concurrent actors in the mixed shape (half tickers, half sleeping
#: processes).  A loaded run keeps hundreds of events pending — e.g. 64
#: closed-loop clients each with a request, a retransmit timer, and
#: device/PM completions in flight — so the queue must be exercised at
#: that depth, where ordering cost dominates.
_NUM_ACTORS = 192

#: Actor periods in ns — odd and varied so event times interleave and
#: the queue stays genuinely ordered rather than degenerate.
_PERIODS = tuple(3 + 2 * i for i in range(_NUM_ACTORS))

#: Every n-th mixed-shape ticker runs on a long period instead, placing
#: its timers beyond the tiered backend's near horizon (the far tier) —
#: the real request path keeps ~1/5 of its records there.
_FAR_EVERY = 8
_FAR_PERIODS = tuple(4099 + 2 * i for i in range(_NUM_ACTORS))

#: Same-instant wakeups fanned out per mixed-shape arrival: the waiter
#: wakeup, the span hook, and the downstream handler dispatch a
#: completion produces.
_DISPATCH_CHAIN = 3

#: The shapes measured by :func:`run_kernel_benchmark`, headline first.
SHAPES = ("mixed", "same_instant", "cancel_heavy")

#: The scheduler backends every shape is measured against.  The
#: compiled backend generates its loop variant on first use, so its
#: first timed run carries a one-off ~ms exec cost; the best-pair
#: statistic the floors check is immune to it.
BACKENDS = ("heap", "tiered", "compiled")

#: Result file emitted by ``pmnet-repro bench-kernel``.
BENCH_RESULT_FILE = "BENCH_kernel.json"


class _Ticker:
    """A callback that rearms itself, passing state as arguments.

    Real components never schedule bare thunks: a packet arrival carries
    the packet, a PM completion carries the access record.  Passing
    ``hop``/``payload`` through ``schedule`` exercises exactly that
    path; the same-instant dispatch chain mirrors the SimEvent waiter
    wakeup plus handler hand-off every completion triggers.
    """

    __slots__ = ("sim", "period", "hops")

    def __init__(self, sim: Simulator, period: int) -> None:
        self.sim = sim
        self.period = period
        self.hops = 0

    def fire(self, hop: int, payload: object) -> None:
        self.hops = hop
        self.sim.call_soon(self.dispatch, _DISPATCH_CHAIN, payload)
        self.sim.schedule(self.period, self.fire, hop + 1, payload)

    def dispatch(self, depth: int, payload: object) -> None:
        if depth:
            self.sim.call_soon(self.dispatch, depth - 1, payload)


class _Burster:
    """Same-instant-heavy actor: each arrival runs a chain of wakeups."""

    __slots__ = ("sim", "period", "fanout")

    def __init__(self, sim: Simulator, period: int, fanout: int) -> None:
        self.sim = sim
        self.period = period
        self.fanout = fanout

    def hop(self, depth: int) -> None:
        if depth:
            self.sim.call_soon(self.hop, depth - 1)
        else:
            self.sim.schedule(self.period, self.hop, self.fanout)


class _Guarded:
    """Cancel-heavy actor: a completion plus a guard timer it cancels.

    The retransmission pattern: every request arms a timeout; almost
    every request completes first and cancels it, so half the records
    pushed are dead weight the queue must absorb cheaply.
    """

    __slots__ = ("sim", "period", "guard")

    def __init__(self, sim: Simulator, period: int) -> None:
        self.sim = sim
        self.period = period
        self.guard = None

    def complete(self, hop: int) -> None:
        guard = self.guard
        if guard is not None:
            guard.cancel()
        # Guard window well past the completion — long enough that many
        # cancelled records linger and the compaction sweep has work.
        self.guard = self.sim.schedule(self.period * 64, self.expired, hop)
        self.sim.schedule(self.period, self.complete, hop + 1)

    def expired(self, hop: int) -> None:  # pragma: no cover - never fires
        raise AssertionError("guard timer fired despite cancellation")


def _sleeper(period: int):
    """A coroutine process sleeping on integer delays (driver pattern)."""
    while True:
        yield period


def _populate(sim: Simulator, shape: str) -> None:
    """Install the actor population for ``shape`` on a fresh simulator."""
    if shape == "mixed":
        # 3/4 tickers, 1/4 sleeping processes: enough coroutine actors
        # to keep the driver pattern represented without the generator
        # machinery (send/yield frames, several times the cost of a
        # plain callback) drowning out the queue work this file exists
        # to measure.
        for index, period in enumerate(_PERIODS):
            if index % _FAR_EVERY == _FAR_EVERY - 1:
                ticker = _Ticker(sim, _FAR_PERIODS[index])
                sim.schedule(_FAR_PERIODS[index], ticker.fire, 0,
                             ("state", index))
            elif index % 4 == 1:
                sim.spawn(_sleeper(period), f"sleeper{index}")
            else:
                ticker = _Ticker(sim, period)
                sim.schedule(period, ticker.fire, 0, ("state", index))
    elif shape == "same_instant":
        for index in range(64):
            burster = _Burster(sim, 3 + 2 * index, fanout=8)
            sim.schedule(1 + index % 13, burster.hop, 8)
    elif shape == "cancel_heavy":
        for index, period in enumerate(_PERIODS):
            actor = _Guarded(sim, period)
            sim.schedule(period, actor.complete, 0)
    else:
        raise ValueError(f"unknown benchmark shape {shape!r}; "
                         f"choose from {SHAPES}")


def run_once(num_events: int = 100_000, shape: str = "mixed",
             kernel: Optional[str] = None) -> Dict[str, object]:
    """Execute ``num_events`` hot-path events; return timing for one run.

    ``kernel`` pins the scheduler backend (``None`` follows
    ``PMNET_KERNEL``); the run records the backend that actually
    resolved under ``"backend"``.  Rates are reported against both CPU
    time (the stable, steal-immune number the regression floor uses)
    and wall time.
    """
    if num_events <= 0:
        raise ValueError("num_events must be positive")
    sim = Simulator(seed=0, kernel=kernel)
    _populate(sim, shape)
    wall_started = time.perf_counter()
    cpu_started = time.process_time()
    sim.run(max_events=num_events)
    cpu_elapsed = time.process_time() - cpu_started
    wall_elapsed = time.perf_counter() - wall_started
    executed = sim.executed_events
    return {
        "backend": sim.kernel,
        "events": float(executed),
        "seconds": wall_elapsed,
        "cpu_seconds": cpu_elapsed,
        "events_per_second": executed / cpu_elapsed if cpu_elapsed > 0 else 0.0,
        "wall_events_per_second": (executed / wall_elapsed
                                   if wall_elapsed > 0 else 0.0),
    }


def _best(runs) -> Dict[str, float]:
    return max(runs, key=lambda r: r["events_per_second"])


def _median(sorted_values) -> float:
    return sorted_values[len(sorted_values) // 2] if sorted_values else 0.0


def run_shape_comparison(shape: str, num_events: int = 100_000,
                         repeats: int = 5) -> Dict[str, object]:
    """Measure one shape on all three backends in adjacent groups.

    Machine speed on shared hosts drifts in phases lasting seconds
    (frequency scaling, noisy neighbours) that shift even CPU-time
    rates, so comparing a heap run from one phase against a tiered run
    from another is meaningless.  Each repeat therefore runs the three
    backends back to back — inside one phase — and yields one pairwise
    ratio per comparison: tiered/heap (``speedup``/``speedup_best``,
    the keys older reports carry) and compiled/tiered
    (``speedup_compiled``/``speedup_compiled_best``).  The headline
    number of each is the **median** of the ratios (the honest central
    estimate); the ``_best`` variant is the **max** (host noise only
    ever drags a pair toward 1:1 by disturbing one side of it, so the
    least-disturbed pair is the cleanest view of the structural ratio —
    that is what the regression floors check).  Group order alternates
    to cancel any drift bias.  Per-backend bests are kept for the
    absolute-rate report.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    runs = {backend: [] for backend in BACKENDS}
    pairwise = []
    pairwise_compiled = []
    for index in range(repeats):
        order = BACKENDS if index % 2 == 0 else BACKENDS[::-1]
        group = {}
        for backend in order:
            group[backend] = run_once(num_events, shape, backend)
            runs[backend].append(group[backend])
        heap_rate = group["heap"]["events_per_second"]
        tiered_rate = group["tiered"]["events_per_second"]
        if heap_rate > 0:
            pairwise.append(tiered_rate / heap_rate)
        if tiered_rate > 0:
            pairwise_compiled.append(
                group["compiled"]["events_per_second"] / tiered_rate)
    pairwise.sort()
    pairwise_compiled.sort()
    best = {backend: _best(runs[backend]) for backend in BACKENDS}
    return {
        "shape": shape,
        "heap": best["heap"],
        "tiered": best["tiered"],
        "compiled": best["compiled"],
        "speedup": _median(pairwise),
        "speedup_best": pairwise[-1] if pairwise else 0.0,
        "pairwise_speedups": pairwise,
        "speedup_compiled": _median(pairwise_compiled),
        "speedup_compiled_best": (pairwise_compiled[-1]
                                  if pairwise_compiled else 0.0),
        "pairwise_compiled_speedups": pairwise_compiled,
        "all_events_per_second": {
            backend: [r["events_per_second"] for r in runs[backend]]
            for backend in BACKENDS},
    }


def run_kernel_benchmark(num_events: int = 100_000,
                         repeats: int = 5,
                         shapes=SHAPES) -> Dict[str, object]:
    """Run every shape on all backends; report rates and ratios.

    The headline ``events_per_second`` is the mixed-shape compiled rate
    (best of N — the run least disturbed by the OS);
    ``tiered_events_per_second`` and ``baseline_events_per_second``
    (heap) are the references from the same process.  ``speedup_mixed``
    / ``speedup_mixed_best`` keep their historical meaning (tiered over
    heap, median / least-disturbed pair — the ≥1.25× floor);
    ``speedup_compiled_mixed`` / ``speedup_compiled_mixed_best`` are
    compiled over tiered (the ≥1.15× floor).  Absolute rates are
    machine-bound; the paired ratios are not.
    """
    results = {shape: run_shape_comparison(shape, num_events, repeats)
               for shape in shapes}
    headline = results.get("mixed") or results[next(iter(results))]
    return {
        "benchmark": "kernel_events",
        "num_events": num_events,
        "repeats": repeats,
        "backends": list(BACKENDS),
        "events_per_second": headline["compiled"]["events_per_second"],
        "tiered_events_per_second": headline["tiered"]["events_per_second"],
        "baseline_events_per_second": headline["heap"]["events_per_second"],
        "speedup_mixed": headline["speedup"],
        "speedup_mixed_best": headline["speedup_best"],
        "speedup_compiled_mixed": headline["speedup_compiled"],
        "speedup_compiled_mixed_best": headline["speedup_compiled_best"],
        "seconds": headline["compiled"]["seconds"],
        "shapes": results,
    }


def write_result(result: Dict[str, object],
                 path: Optional[str] = None) -> str:
    """Write the enveloped benchmark report as JSON; return the path."""
    from repro.obs.export import write_bench_report

    target = path or BENCH_RESULT_FILE
    return write_bench_report('kernel', result, target, quick=True)


def format_result(result: Dict[str, object]) -> str:
    lines = [
        (f"kernel events/sec (mixed, compiled): "
         f"{result['events_per_second']:,.0f} — tiered/heap "
         f"{result['speedup_mixed']:.2f}x median / "
         f"{result.get('speedup_mixed_best', 0.0):.2f}x best pair, "
         f"compiled/tiered "
         f"{result.get('speedup_compiled_mixed', 0.0):.2f}x median / "
         f"{result.get('speedup_compiled_mixed_best', 0.0):.2f}x best pair "
         f"({result['num_events']} events, "
         f"{result['repeats']} adjacent groups, CPU-time rates)"),
    ]
    for shape, comparison in result.get("shapes", {}).items():
        compiled = comparison.get("compiled")
        compiled_col = (
            f"  compiled {compiled['events_per_second']:>12,.0f}"
            if compiled else "")
        lines.append(
            f"  {shape:13s} heap {comparison['heap']['events_per_second']:>12,.0f}"
            f"  tiered {comparison['tiered']['events_per_second']:>12,.0f}"
            f"{compiled_col}"
            f"  tiered/heap {comparison['speedup']:.2f}x"
            f" (best {comparison.get('speedup_best', 0.0):.2f}x)"
            f"  compiled/tiered {comparison.get('speedup_compiled', 0.0):.2f}x"
            f" (best {comparison.get('speedup_compiled_best', 0.0):.2f}x)")
    return "\n".join(lines)
