"""The PMNet packet: header plus payload plus fragment bookkeeping.

A *request* is the application-level unit (one update or read).  On the
wire it becomes one or more :class:`PMNetPacket` fragments, each with its
own ``SeqNum`` and ``HashVal`` (Sec IV-A3).  The packet also records which
client and server it travels between so devices can route derived ACKs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Dict

from repro.protocol.header import HEADER_BYTES, PMNetHeader
from repro.protocol.types import PacketType

_request_ids = itertools.count(1)


def next_request_id() -> int:
    """A process-unique id for a logical request."""
    return next(_request_ids)


def reset_request_ids(start: int = 1) -> None:
    """Restart the request-id sequence (fresh-simulation determinism).

    Request ids only need to be unique within one simulation; the
    counter is process-global purely for convenience.  Harnesses that
    promise bit-identical traces across repeated runs in one process
    (the chaos engine's seed replay) reset it before each deployment
    so ids — which appear in traces and violation reports — depend on
    the seed alone, not on how many runs preceded this one.
    """
    global _request_ids
    _request_ids = itertools.count(start)


@dataclass(slots=True)
class PMNetPacket:
    """One PMNet fragment as it travels through the fabric."""

    header: PMNetHeader
    payload: Any
    payload_bytes: int
    request_id: int
    client: str
    server: str
    frag_index: int = 0
    frag_count: int = 1
    #: Set on packets PMNet resends from its log during recovery, so the
    #: server knows to consult SeqNum for dedup (Sec IV-E1).
    resent: bool = False
    #: Which device generated this packet (PMNet-ACKs and cache responses);
    #: clients count distinct origins to enforce replication strength
    #: (Sec IV-C: wait for PMNet-ACK #1 *and* #2).
    origin_device: str = ""
    #: For CHAIN_UPDATE: the full replication chain, head first, tail
    #: last.  Each member finds its own position by name and forwards to
    #: the successor; SERVER_ACKs echo the chain so invalidation can walk
    #: it tail-to-head.
    chain: tuple = ()
    #: Set when a chain member could not log this fragment (log full /
    #: write queue saturated).  The tail then withholds its PMNET_ACK so
    #: a tail ACK always means *every* member holds a durable copy.
    chain_broken: bool = False

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("payload size must be >= 0")
        if not 0 <= self.frag_index < self.frag_count:
            raise ValueError(
                f"fragment {self.frag_index}/{self.frag_count} out of range")

    @property
    def wire_bytes(self) -> int:
        """Application-layer size: PMNet header plus payload."""
        return HEADER_BYTES + self.payload_bytes

    @property
    def packet_type(self) -> PacketType:
        return self.header.packet_type

    @property
    def hash_val(self) -> int:
        return self.header.hash_val

    @property
    def session_id(self) -> int:
        return self.header.session_id

    @property
    def seq_num(self) -> int:
        return self.header.seq_num

    # ------------------------------------------------------------------
    # Derived packets
    # ------------------------------------------------------------------
    def make_ack(self, packet_type: PacketType,
                 origin_device: str = "") -> "PMNetPacket":
        """A PMNet-ACK or server-ACK for this request fragment.

        The ACK keeps SessionID/SeqNum/HashVal so both the client library
        and any PMNet device on the path can identify the original packet.
        """
        if packet_type not in (PacketType.PMNET_ACK, PacketType.SERVER_ACK):
            raise ValueError(f"not an ACK type: {packet_type}")
        return PMNetPacket(
            header=self.header.with_type(packet_type),
            payload=None,
            payload_bytes=0,
            request_id=self.request_id,
            client=self.client,
            server=self.server,
            frag_index=self.frag_index,
            frag_count=self.frag_count,
            origin_device=origin_device,
            chain=self.chain,
        )

    def make_response(self, payload: Any, payload_bytes: int,
                      from_cache: bool = False,
                      origin_device: str = "") -> "PMNetPacket":
        """The server's (or cache's) application response to this request."""
        packet_type = (PacketType.CACHE_RESP if from_cache
                       else PacketType.SERVER_RESP)
        return PMNetPacket(
            header=self.header.with_type(packet_type),
            payload=payload,
            payload_bytes=payload_bytes,
            request_id=self.request_id,
            client=self.client,
            server=self.server,
            origin_device=origin_device,
        )

    def as_resent(self) -> "PMNetPacket":
        """A copy marked as a recovery retransmission.

        Chain-routed updates are re-labelled as plain UPDATE_REQs: a
        recovery resend goes straight from the holding device to the
        server — re-walking the chain would re-log entries that are
        already replicated.  ``with_type`` keeps the HashVal, which is
        the UPDATE_REQ hash already (see ``make_request_header``).  The
        chain member list is *kept*: the server ACK derived from the
        resent copy must still carry it, so the tail can walk the
        invalidation back to members that are not on the server-to-
        client path (their scrubbers would otherwise redo the entry
        forever).
        """
        if self.packet_type is PacketType.CHAIN_UPDATE:
            return replace(self, resent=True,
                           header=self.header.with_type(PacketType.UPDATE_REQ),
                           chain_broken=False)
        return replace(self, resent=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<PMNetPacket {self.packet_type.name} req={self.request_id} "
                f"sess={self.session_id} seq={self.seq_num} "
                f"frag={self.frag_index}/{self.frag_count}>")


@dataclass(slots=True)
class RetransRequest:
    """Payload of a RETRANS packet: which fragments the server is missing."""

    session_id: int
    missing_seq_nums: tuple[int, ...]
    #: HashVals of the missing packets, parallel to ``missing_seq_nums``;
    #: PMNet looks entries up by HashVal (Sec IV-B1).
    missing_hash_vals: tuple[int, ...] = field(default_factory=tuple)


@dataclass(slots=True)
class RecoveryPoll:
    """Payload of a RECOVERY_POLL: the recovering server's resume points.

    Maps SessionID to the next SeqNum the server expects (Sec IV-E1: the
    server polls PMNet "with the sequence number starting from the last
    packet it receives").
    """

    expected_seq: Dict[int, int] = field(default_factory=dict)
