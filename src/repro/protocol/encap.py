"""Byte-exact encapsulation of PMNet packets in IPv4/UDP and VXLAN.

Sec III-B: "PMNet encodes this information as a new PMNet header to
existing network protocols (e.g., IP or VXLAN)".  This module produces
the actual bytes a wire sniffer would see:

* plain datacenter traffic — ``IPv4 / UDP / PMNet header / payload``;
* overlay traffic — ``IPv4 / UDP(4789) / VXLAN / inner IPv4 / UDP /
  PMNet header / payload``.

The IPv4 checksum is the real internet checksum; parsing verifies it.
The simulator itself moves packet *objects* (bytes would be wasted
cycles), but the examples, tests, and any future interop tooling can
round-trip through these encoders to confirm the formats are sound.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import HeaderError
from repro.protocol.header import HEADER_BYTES, PMNetHeader

#: IANA-assigned VXLAN UDP port.
VXLAN_PORT = 4789
#: IPv4 protocol number for UDP.
_PROTO_UDP = 17

_IPV4 = struct.Struct(">BBHHHBBH4s4s")
_UDP = struct.Struct(">HHHH")
_VXLAN = struct.Struct(">B3xI")  # flags, reserved, VNI<<8 packed below

IPV4_BYTES = _IPV4.size
UDP_BYTES = _UDP.size
VXLAN_BYTES = 8


def ip_to_bytes(address: str) -> bytes:
    parts = address.split(".")
    if len(parts) != 4:
        raise HeaderError(f"malformed IPv4 address {address!r}")
    try:
        octets = bytes(int(part) for part in parts)
    except ValueError as error:
        raise HeaderError(f"malformed IPv4 address {address!r}") from error
    if any(int(part) > 255 for part in parts):
        raise HeaderError(f"malformed IPv4 address {address!r}")
    return octets


def bytes_to_ip(raw: bytes) -> str:
    return ".".join(str(octet) for octet in raw)


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones-complement checksum."""
    if len(data) % 2:
        data += b"\x00"
    total = sum(struct.unpack(f">{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


@dataclass(frozen=True)
class IPv4Header:
    """The 20-byte (option-less) IPv4 header."""

    src: str
    dst: str
    total_length: int
    ttl: int = 64
    protocol: int = _PROTO_UDP
    identification: int = 0

    def pack(self) -> bytes:
        unsummed = _IPV4.pack(
            0x45, 0, self.total_length, self.identification, 0,
            self.ttl, self.protocol, 0,
            ip_to_bytes(self.src), ip_to_bytes(self.dst))
        checksum = internet_checksum(unsummed)
        return unsummed[:10] + struct.pack(">H", checksum) + unsummed[12:]

    @classmethod
    def parse(cls, data: bytes) -> "IPv4Header":
        if len(data) < IPV4_BYTES:
            raise HeaderError("short IPv4 header")
        (version_ihl, _tos, total_length, identification, _frag, ttl,
         protocol, _checksum, src, dst) = _IPV4.unpack_from(data)
        if version_ihl != 0x45:
            raise HeaderError(f"not an option-less IPv4 header: "
                              f"{version_ihl:#x}")
        if internet_checksum(data[:IPV4_BYTES]) != 0:
            raise HeaderError("IPv4 checksum mismatch")
        return cls(src=bytes_to_ip(src), dst=bytes_to_ip(dst),
                   total_length=total_length, ttl=ttl, protocol=protocol,
                   identification=identification)


@dataclass(frozen=True)
class UDPHeader:
    """The 8-byte UDP header (checksum 0 = unused, as on most fabrics)."""

    src_port: int
    dst_port: int
    length: int

    def pack(self) -> bytes:
        return _UDP.pack(self.src_port, self.dst_port, self.length, 0)

    @classmethod
    def parse(cls, data: bytes) -> "UDPHeader":
        if len(data) < UDP_BYTES:
            raise HeaderError("short UDP header")
        src_port, dst_port, length, _checksum = _UDP.unpack_from(data)
        return cls(src_port=src_port, dst_port=dst_port, length=length)


@dataclass(frozen=True)
class VXLANHeader:
    """The 8-byte VXLAN header: I-flag plus a 24-bit VNI."""

    vni: int

    def pack(self) -> bytes:
        if not 0 <= self.vni < (1 << 24):
            raise HeaderError(f"VNI out of range: {self.vni}")
        return struct.pack(">B3xI", 0x08, self.vni << 8)

    @classmethod
    def parse(cls, data: bytes) -> "VXLANHeader":
        if len(data) < VXLAN_BYTES:
            raise HeaderError("short VXLAN header")
        flags, vni_shifted = struct.unpack_from(">B3xI", data)
        if not flags & 0x08:
            raise HeaderError("VXLAN I-flag not set")
        return cls(vni=vni_shifted >> 8)


# ---------------------------------------------------------------------------
# PMNet-over-UDP and PMNet-over-VXLAN
# ---------------------------------------------------------------------------


def encapsulate(header: PMNetHeader, payload: bytes, src_ip: str,
                dst_ip: str, src_port: int, dst_port: int,
                vni: Optional[int] = None) -> bytes:
    """Produce the full on-wire bytes for one PMNet packet.

    With ``vni`` set, the inner IPv4/UDP/PMNet datagram is wrapped in a
    VXLAN overlay (outer UDP destination 4789).
    """
    inner_udp_length = UDP_BYTES + HEADER_BYTES + len(payload)
    inner = (IPv4Header(src_ip, dst_ip,
                        IPV4_BYTES + inner_udp_length).pack()
             + UDPHeader(src_port, dst_port, inner_udp_length).pack()
             + header.pack() + payload)
    if vni is None:
        return inner
    outer_udp_length = UDP_BYTES + VXLAN_BYTES + len(inner)
    outer = (IPv4Header(src_ip, dst_ip,
                        IPV4_BYTES + outer_udp_length).pack()
             + UDPHeader(src_port, VXLAN_PORT, outer_udp_length).pack()
             + VXLANHeader(vni).pack())
    return outer + inner


def decapsulate(data: bytes) -> Tuple[PMNetHeader, bytes, Optional[int]]:
    """Parse wire bytes back to ``(pmnet_header, payload, vni_or_None)``."""
    ip = IPv4Header.parse(data)
    offset = IPV4_BYTES
    udp = UDPHeader.parse(data[offset:])
    offset += UDP_BYTES
    vni: Optional[int] = None
    if udp.dst_port == VXLAN_PORT:
        vxlan = VXLANHeader.parse(data[offset:])
        vni = vxlan.vni
        offset += VXLAN_BYTES
        inner_ip = IPv4Header.parse(data[offset:])
        if inner_ip.protocol != _PROTO_UDP:
            raise HeaderError("inner packet is not UDP")
        offset += IPV4_BYTES
        udp = UDPHeader.parse(data[offset:])
        offset += UDP_BYTES
    elif ip.protocol != _PROTO_UDP:
        raise HeaderError("not a UDP packet")
    header = PMNetHeader.parse(data[offset:])
    offset += HEADER_BYTES
    payload_length = udp.length - UDP_BYTES - HEADER_BYTES
    payload = data[offset:offset + payload_length]
    if len(payload) != payload_length:
        raise HeaderError("truncated payload")
    return header, payload, vni
