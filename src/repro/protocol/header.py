"""The PMNet header: Type, SessionID, SeqNum, HashVal (Sec IV-A1).

The header is byte-exact: :meth:`PMNetHeader.pack` produces the 11-byte
wire encoding (1 + 2 + 4 + 4, big-endian) and :meth:`PMNetHeader.parse`
round-trips it.  ``HashVal`` is the CRC-32 the sender computes over the
first seven header bytes (Type/SessionID/SeqNum with the hash field
zeroed); the device uses it as the log index, and ACK/Retrans packets
carry the original request's HashVal verbatim so the device can find the
entry without recomputing anything.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

from repro.errors import HeaderError
from repro.protocol.crc import crc32
from repro.protocol.types import PacketType

#: struct layout: Type u8 | SessionID u16 | SeqNum u32 | HashVal u32.
_LAYOUT = struct.Struct(">BHII")

#: Wire size of the PMNet header in bytes.
HEADER_BYTES = _LAYOUT.size

_MAX_SESSION = 0xFFFF
_MAX_SEQ = 0xFFFF_FFFF


@dataclass(frozen=True)
class PMNetHeader:
    """An immutable PMNet header."""

    packet_type: PacketType
    session_id: int
    seq_num: int
    hash_val: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.session_id <= _MAX_SESSION:
            raise HeaderError(f"SessionID out of range: {self.session_id}")
        if not 0 <= self.seq_num <= _MAX_SEQ:
            raise HeaderError(f"SeqNum out of range: {self.seq_num}")
        if not 0 <= self.hash_val <= _MAX_SEQ:
            raise HeaderError(f"HashVal out of range: {self.hash_val}")

    # ------------------------------------------------------------------
    def pack(self) -> bytes:
        """The 11-byte wire encoding."""
        return _LAYOUT.pack(int(self.packet_type), self.session_id,
                            self.seq_num, self.hash_val)

    @classmethod
    def parse(cls, data: bytes) -> "PMNetHeader":
        """Decode a header from its wire encoding."""
        if len(data) < HEADER_BYTES:
            raise HeaderError(
                f"header needs {HEADER_BYTES} bytes, got {len(data)}")
        type_value, session_id, seq_num, hash_val = _LAYOUT.unpack_from(data)
        try:
            packet_type = PacketType(type_value)
        except ValueError as error:
            raise HeaderError(f"unknown packet type {type_value}") from error
        return cls(packet_type, session_id, seq_num, hash_val)

    # ------------------------------------------------------------------
    def compute_hash(self) -> int:
        """CRC-32 over the header with the HashVal field zeroed."""
        unsealed = _LAYOUT.pack(int(self.packet_type), self.session_id,
                                self.seq_num, 0)
        return crc32(unsealed[:7])

    def sealed(self) -> "PMNetHeader":
        """A copy with HashVal filled in by the sender's stack."""
        return replace(self, hash_val=self.compute_hash())

    def verify_hash(self) -> bool:
        """Whether the carried HashVal matches a recomputation.

        Only meaningful for request packets: ACKs and Retrans carry the
        *original request's* HashVal, which will not match their own
        header fields.
        """
        return self.hash_val == self.compute_hash()

    def with_type(self, packet_type: PacketType) -> "PMNetHeader":
        """The same header re-labelled (keeps SessionID/SeqNum/HashVal).

        Used to derive ACKs: a PMNet-ACK or server-ACK for a request is
        the request's header with only the Type changed, so it still
        carries the HashVal that indexes the log entry.
        """
        return replace(self, packet_type=packet_type)


def make_request_header(packet_type: PacketType, session_id: int,
                        seq_num: int) -> PMNetHeader:
    """Build and seal a request header the way the client stack does.

    A CHAIN_UPDATE is sealed with the *UPDATE_REQ* HashVal: the hash is
    the one identity every party derives for (session, seq) — devices
    index their logs by it, ACKs echo it, and the server's gap
    retransmission recomputes it assuming UPDATE_REQ — so the chain
    label must not perturb it.
    """
    if packet_type is PacketType.CHAIN_UPDATE:
        plain = PMNetHeader(PacketType.UPDATE_REQ, session_id, seq_num)
        return PMNetHeader(packet_type, session_id, seq_num,
                           hash_val=plain.compute_hash())
    return PMNetHeader(packet_type, session_id, seq_num).sealed()
