"""PMNet packet types (the 8-bit ``Type`` header field, Sec IV-B1)."""

from __future__ import annotations

from enum import IntEnum


class PacketType(IntEnum):
    """All request/ACK types the PMNet MAT pipeline distinguishes."""

    #: An update request from a client — logged by PMNet and acknowledged
    #: early (Sec IV-B1).
    UPDATE_REQ = 1
    #: A read or synchronization request that must reach the server and
    #: must not be acknowledged early (Sec IV-B1).
    BYPASS_REQ = 2
    #: PMNet's early acknowledgement to the client: the request is in the
    #: network persistence domain.
    PMNET_ACK = 3
    #: The server's acknowledgement that a request has been committed;
    #: invalidates the device's log entry.
    SERVER_ACK = 4
    #: A retransmission request from the server for a lost packet.
    RETRANS = 5
    #: The server's application-level response (read results; the baseline
    #: completion signal for updates).
    SERVER_RESP = 6
    #: A response served from the PMNet read cache (Sec IV-D).
    CACHE_RESP = 7
    #: The recovering server's poll for logged requests (Sec IV-E1).
    RECOVERY_POLL = 8
    #: An update request travelling a NetChain-style replication chain of
    #: PMNet devices: each member logs it, then forwards it to the next
    #: member; only the *tail* emits the PMNET_ACK ("ACK from another
    #: PMNet", Sec IV-B1, generalized across switches).
    CHAIN_UPDATE = 9


#: Types that flow from client toward server.
CLIENT_TO_SERVER = frozenset({PacketType.UPDATE_REQ, PacketType.BYPASS_REQ,
                              PacketType.RECOVERY_POLL,
                              PacketType.CHAIN_UPDATE})
#: Types that flow from server/device back toward the client.
TO_CLIENT = frozenset({PacketType.PMNET_ACK, PacketType.SERVER_RESP,
                       PacketType.CACHE_RESP})
#: Types that carry an update and consume the session's update SeqNum
#: stream.  A CHAIN_UPDATE is an UPDATE_REQ with explicit chain routing;
#: it shares the stream so server-side ordering/dedup is unchanged.
UPDATE_TYPES = frozenset({PacketType.UPDATE_REQ, PacketType.CHAIN_UPDATE})


def is_request(packet_type: PacketType) -> bool:
    """Whether the type is a client request PMNet may see on ingress."""
    return packet_type in (PacketType.UPDATE_REQ, PacketType.BYPASS_REQ,
                           PacketType.CHAIN_UPDATE)


def is_update(packet_type: PacketType) -> bool:
    """Whether the type is an update request (plain or chain-routed)."""
    return packet_type in UPDATE_TYPES
