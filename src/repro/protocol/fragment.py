"""MTU fragmentation and reassembly (Sec IV-A3).

Requests larger than the MTU payload budget are split into fragments;
each fragment gets its own SeqNum (so ordering machinery works unchanged)
and its own PMNet-ACK.  The client completes a request only when *all*
fragment ACKs arrived; the server reassembles before invoking the handler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import FragmentationError
from repro.protocol.header import HEADER_BYTES, make_request_header
from repro.protocol.packet import PMNetPacket, next_request_id
from repro.protocol.session import Session
from repro.protocol.types import PacketType, is_update


def max_fragment_payload(mtu_bytes: int, framing_overhead_bytes: int) -> int:
    """Largest application payload that fits one MTU frame."""
    budget = mtu_bytes - framing_overhead_bytes - HEADER_BYTES
    if budget <= 0:
        raise FragmentationError(
            f"MTU {mtu_bytes} cannot carry a PMNet header")
    return budget


def fragment_request(session: Session, packet_type: PacketType,
                     payload: Any, payload_bytes: int,
                     mtu_payload_bytes: int) -> List[PMNetPacket]:
    """Split one logical request into sealed MTU-sized packets.

    The payload object rides on the *first* fragment; trailing fragments
    carry only size (the simulation does not model byte-level content of
    the spilled region, just its cost and its ACK accounting).
    """
    if payload_bytes <= 0:
        raise FragmentationError("request payload must be positive-sized")
    if mtu_payload_bytes <= 0:
        raise FragmentationError("MTU payload budget must be positive")
    sizes: List[int] = []
    remaining = payload_bytes
    while remaining > 0:
        chunk = min(remaining, mtu_payload_bytes)
        sizes.append(chunk)
        remaining -= chunk
    request_id = next_request_id()
    update = is_update(packet_type)
    packets = []
    for index, size in enumerate(sizes):
        seq = (session.next_seq_num() if update
               else session.next_read_seq())
        header = make_request_header(packet_type, session.session_id, seq)
        packets.append(PMNetPacket(
            header=header,
            payload=payload if index == 0 else None,
            payload_bytes=size,
            request_id=request_id,
            client=session.client,
            server=session.server,
            frag_index=index,
            frag_count=len(sizes),
        ))
    return packets


@dataclass
class _PendingRequest:
    """Reassembly state for one in-flight fragmented request."""

    frag_count: int
    received: Dict[int, PMNetPacket] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return len(self.received) == self.frag_count


class Reassembler:
    """Collects fragments and yields the completed logical request."""

    def __init__(self) -> None:
        self._pending: Dict[int, _PendingRequest] = {}

    def push(self, packet: PMNetPacket) -> Optional[List[PMNetPacket]]:
        """Accept one in-order fragment.

        Returns all fragments in ``frag_index`` order (the first carries
        the payload object) once the whole request has arrived, else
        ``None``.  Single-fragment requests complete immediately.
        """
        if packet.frag_count == 1:
            return [packet]
        state = self._pending.get(packet.request_id)
        if state is None:
            state = _PendingRequest(packet.frag_count)
            self._pending[packet.request_id] = state
        if state.frag_count != packet.frag_count:
            raise FragmentationError(
                f"request {packet.request_id}: inconsistent fragment count")
        if packet.frag_index in state.received:
            return None  # duplicate fragment
        state.received[packet.frag_index] = packet
        if not state.complete:
            return None
        del self._pending[packet.request_id]
        return [state.received[i] for i in range(state.frag_count)]

    @property
    def incomplete_requests(self) -> int:
        return len(self._pending)
