"""Client sessions: SessionID allocation and per-session SeqNum streams.

A session is one client connection's ordered request stream (Sec IV-A1).
``SessionID`` is 16 bits and globally unique across live sessions;
``SeqNum`` is a per-session 32-bit counter that the server uses to
restore ordering and to deduplicate recovery replays.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import SessionError

_MAX_SESSIONS = 0x10000


class Session:
    """One client session: an id plus a monotonically increasing SeqNum."""

    def __init__(self, session_id: int, client: str, server: str) -> None:
        if not 0 <= session_id < _MAX_SESSIONS:
            raise SessionError(f"SessionID out of range: {session_id}")
        self.session_id = session_id
        self.client = client
        self.server = server
        self._next_seq = 0
        self._next_read_seq = 0
        self.closed = False

    def next_seq_num(self) -> int:
        """Allocate the next *update* sequence number.

        Only update requests consume the ordered stream: the server
        replays updates in this order during recovery.  Reads must not
        share it — a read served by the in-network cache never reaches
        the server and would otherwise leave a permanent gap in the
        server's reorder buffer.
        """
        if self.closed:
            raise SessionError(
                f"session {self.session_id} is closed; cannot send")
        seq = self._next_seq
        if seq > 0xFFFF_FFFF:
            raise SessionError(f"session {self.session_id} exhausted SeqNum")
        self._next_seq += 1
        return seq

    def next_read_seq(self) -> int:
        """Allocate a sequence number from the unordered read stream.

        Reads are idempotent and unordered on the server; their SeqNum
        only individualizes the packet (HashVal input, ACK matching).
        """
        if self.closed:
            raise SessionError(
                f"session {self.session_id} is closed; cannot send")
        seq = self._next_read_seq
        self._next_read_seq += 1
        return seq

    @property
    def sent_count(self) -> int:
        """How many update sequence numbers have been handed out."""
        return self._next_seq

    def close(self) -> None:
        self.closed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return f"<Session {self.session_id} {self.client}->{self.server} {state}>"


class SessionAllocator:
    """Hands out unique SessionIDs across all clients of one deployment."""

    def __init__(self) -> None:
        self._next_id = 0
        self._live: Dict[int, Session] = {}

    def open(self, client: str, server: str) -> Session:
        """Open a new session between ``client`` and ``server``."""
        if len(self._live) >= _MAX_SESSIONS:
            raise SessionError("all 65536 SessionIDs are in use")
        while self._next_id in self._live:
            self._next_id = (self._next_id + 1) % _MAX_SESSIONS
        session = Session(self._next_id, client, server)
        self._live[self._next_id] = session
        self._next_id = (self._next_id + 1) % _MAX_SESSIONS
        return session

    def close(self, session: Session) -> None:
        """End a session and recycle its id."""
        session.close()
        self._live.pop(session.session_id, None)

    def get(self, session_id: int) -> Optional[Session]:
        return self._live.get(session_id)

    @property
    def live_count(self) -> int:
        return len(self._live)
