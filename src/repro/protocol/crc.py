"""CRC-32 (IEEE 802.3), implemented from scratch.

The paper's sender stack computes a CRC-32 over the PMNet header and the
device uses it as the log index (``HashVal``).  This is the standard
reflected CRC-32 with polynomial 0xEDB88320 — byte-compatible with
``zlib.crc32`` (the test suite asserts this equivalence).
"""

from __future__ import annotations

from typing import List

_POLYNOMIAL = 0xEDB88320


def _build_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLYNOMIAL
            else:
                crc >>= 1
        table.append(crc)
    return table


_TABLE = _build_table()


def crc32(data: bytes, initial: int = 0) -> int:
    """CRC-32 of ``data``; ``initial`` allows incremental computation.

    >>> crc32(b"123456789")
    3421780262
    """
    crc = (initial ^ 0xFFFFFFFF) & 0xFFFFFFFF
    for byte in data:
        crc = _TABLE[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF
