"""Server-side in-order delivery: reorder buffer and gap detection.

The PMNet protocol runs over UDP, so the server's PMNet library restores
per-session ordering (Fig 7): packets arriving out of order are buffered
until the gap fills; a persistent gap triggers a retransmission request;
recovery replays with stale SeqNums are dropped as duplicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.protocol.packet import PMNetPacket


@dataclass
class _SessionState:
    """Reorder state for one session."""

    expected_seq: int = 0
    pending: Dict[int, PMNetPacket] = field(default_factory=dict)


class ReorderBuffer:
    """Per-session reorder buffer with duplicate suppression.

    ``push`` returns the packets that became deliverable *in order*.
    ``missing`` reports the gaps (for Retrans generation).
    """

    def __init__(self) -> None:
        self._sessions: Dict[int, _SessionState] = {}
        self.duplicates_dropped = 0
        self.out_of_order_buffered = 0

    def _state(self, session_id: int) -> _SessionState:
        state = self._sessions.get(session_id)
        if state is None:
            state = _SessionState()
            self._sessions[session_id] = state
        return state

    # ------------------------------------------------------------------
    def push(self, packet: PMNetPacket) -> List[PMNetPacket]:
        """Accept one packet; return the newly deliverable in-order run."""
        state = self._state(packet.session_id)
        seq = packet.seq_num
        if seq < state.expected_seq or seq in state.pending:
            # Already delivered or already buffered: a duplicate from
            # retransmission or recovery replay (Fig 12 case 3).
            self.duplicates_dropped += 1
            return []
        if seq > state.expected_seq:
            state.pending[seq] = packet
            self.out_of_order_buffered += 1
            return []
        deliverable = [packet]
        state.expected_seq += 1
        while state.expected_seq in state.pending:
            deliverable.append(state.pending.pop(state.expected_seq))
            state.expected_seq += 1
        return deliverable

    # ------------------------------------------------------------------
    def missing(self, session_id: int) -> List[int]:
        """SeqNums currently blocking delivery for a session."""
        state = self._sessions.get(session_id)
        if state is None or not state.pending:
            return []
        highest_buffered = max(state.pending)
        return [seq for seq in range(state.expected_seq, highest_buffered)
                if seq not in state.pending]

    def has_gap(self, session_id: int) -> bool:
        return bool(self.missing(session_id))

    def expected_seq(self, session_id: int) -> int:
        """Next in-order SeqNum the server expects for a session.

        During recovery the server advertises this value so PMNet (or the
        recovery driver) can skip already-committed requests (Sec IV-E1).
        """
        return self._state(session_id).expected_seq

    def restore_session(self, session_id: int, expected_seq: int) -> None:
        """Reinstall a session's horizon from the persistent applied
        table after a crash (buffered packets were volatile and are gone)."""
        self._sessions[session_id] = _SessionState(expected_seq=expected_seq)

    def buffered_count(self, session_id: int) -> int:
        state = self._sessions.get(session_id)
        return len(state.pending) if state else 0

    def sessions(self) -> List[int]:
        return sorted(self._sessions)

    def snapshot(self) -> Dict[int, Tuple[int, List[int]]]:
        """Per-session (expected_seq, buffered seqs) — for tests/traces."""
        return {sid: (st.expected_seq, sorted(st.pending))
                for sid, st in self._sessions.items()}
