"""The PMNet wire protocol: header, packet types, sessions, ordering."""

from repro.protocol.crc import crc32
from repro.protocol.fragment import (
    Reassembler,
    fragment_request,
    max_fragment_payload,
)
from repro.protocol.header import (
    HEADER_BYTES,
    PMNetHeader,
    make_request_header,
)
from repro.protocol.ordering import ReorderBuffer
from repro.protocol.packet import (
    PMNetPacket,
    RecoveryPoll,
    RetransRequest,
    next_request_id,
)
from repro.protocol.session import Session, SessionAllocator
from repro.protocol.types import (
    CLIENT_TO_SERVER,
    TO_CLIENT,
    PacketType,
    is_request,
)

__all__ = [
    "crc32",
    "HEADER_BYTES", "PMNetHeader", "make_request_header",
    "PacketType", "is_request", "CLIENT_TO_SERVER", "TO_CLIENT",
    "PMNetPacket", "RetransRequest", "RecoveryPoll", "next_request_id",
    "Session", "SessionAllocator",
    "ReorderBuffer",
    "Reassembler", "fragment_request", "max_fragment_payload",
]
