"""Server request handlers that run the real workload stores.

:class:`StructureHandler` adapts any :class:`PersistentStructure` (the
five PMDK stores) to the server's handler interface; the richer stores
(PM-Redis, Twitter, TPC-C) provide their own handlers in their modules.
"""

from __future__ import annotations

from typing import Any

from repro.host.handler import HandlerOutcome, RequestHandler
from repro.sim.clock import microseconds, milliseconds
from repro.workloads.kv import OpKind, Operation, Result
from repro.workloads.pmdk.base import PersistentStructure


class StructureHandler(RequestHandler):
    """Runs GET/SET/DELETE against a persistent structure.

    The processing cost charged to the simulated worker is exactly what
    the structure metered for the operation (plus the driver program's
    fixed request overhead, already folded in by the meter).
    """

    def __init__(self, structure: PersistentStructure) -> None:
        self.structure = structure
        self.name = structure.kind
        #: Per-entry recovery scan cost (pool open + consistency check).
        self.recovery_base_ns = milliseconds(150)
        self.recovery_per_entry_ns = microseconds(8)

    def process(self, op: Operation) -> HandlerOutcome:
        if op.kind is OpKind.SET:
            cost = self.structure.set(op.key, op.value)
            return HandlerOutcome(Result(ok=True), cost, 16)
        if op.kind is OpKind.GET:
            value, cost = self.structure.get(op.key)
            return HandlerOutcome(
                Result(ok=value is not None, value=value,
                       error=None if value is not None else "not_found"),
                cost)
        if op.kind is OpKind.DELETE:
            found, cost = self.structure.delete(op.key)
            return HandlerOutcome(
                Result(ok=found, error=None if found else "not_found"),
                cost, 16)
        return HandlerOutcome(Result(ok=False, error="unsupported"),
                              microseconds(1), 16)

    def crash(self) -> None:
        """The structure lives in PM: committed operations survive."""

    def recovery_cost_ns(self) -> int:
        return (self.recovery_base_ns
                + self.recovery_per_entry_ns * len(self.structure))

    def digest(self) -> int:
        """Fingerprint of store contents (recovery equivalence checks)."""
        return self.structure.digest()

    def snapshot(self) -> Any:
        return self.structure.snapshot()
