"""The Twitter/Retwis workload (Sec VI-A2, Fig 4).

Models the Twitter-clone tutorial the paper adapts: users register (the
shared ``lastUID`` counter of Fig 4 is incremented *without* cross-client
ordering), post tweets (update own timeline + fan out to followers),
follow users, and read timelines.  The backend is the PM-Redis store,
so the server handler composes Redis commands per procedure; the client
side supplies a session generator with the paper's independent-client
access pattern.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.host.handler import HandlerOutcome, RequestHandler
from repro.sim.clock import microseconds
from repro.workloads.kv import OpKind, Operation, Result
from repro.workloads.redis import PMRedis

#: How many timeline entries a read returns.
TIMELINE_LENGTH = 10


class TwitterHandler(RequestHandler):
    """Retwis procedures over a PM-Redis backend."""

    name = "twitter"

    def __init__(self) -> None:
        self.store = PMRedis()
        self.posts = 0
        self.timeline_reads = 0

    # ------------------------------------------------------------------
    def process(self, op: Operation) -> HandlerOutcome:
        if op.kind is OpKind.PROC_UPDATE and op.proc == "register":
            return self._register()
        if op.kind is OpKind.PROC_UPDATE and op.proc == "post":
            return self._post(op.args["uid"], op.value)
        if op.kind is OpKind.PROC_UPDATE and op.proc == "follow":
            return self._follow(op.args["follower"], op.args["followee"])
        if op.kind is OpKind.PROC_READ and op.proc == "timeline":
            return self._timeline(op.args["uid"])
        return HandlerOutcome(Result(ok=False, error="unknown_proc"),
                              microseconds(1), 16)

    def _register(self) -> HandlerOutcome:
        """getUID of Fig 4: each client independently INCRs lastUID."""
        uid, cost = self.store.incr("lastUID")
        cost += self.store.hset(f"user:{uid}", "joined", True)
        return HandlerOutcome(Result(ok=True, value=uid), cost, 16)

    def _post(self, uid: int, text: object) -> HandlerOutcome:
        """Store the tweet, push to own and followers' timelines."""
        post_id, cost = self.store.incr("nextPostID")
        cost += self.store.hset(f"post:{post_id}", "body", text)
        cost += self.store.hset(f"post:{post_id}", "author", uid)
        cost += self.store.lpush(f"timeline:{uid}", post_id)
        followers, read_cost = self.store.smembers(f"followers:{uid}")
        cost += read_cost
        for follower in followers:
            cost += self.store.lpush(f"timeline:{follower}", post_id)
        self.posts += 1
        return HandlerOutcome(Result(ok=True, value=post_id), cost, 16)

    def _follow(self, follower: int, followee: int) -> HandlerOutcome:
        cost = self.store.sadd(f"followers:{followee}", follower)
        cost += self.store.sadd(f"following:{follower}", followee)
        return HandlerOutcome(Result(ok=True), cost, 16)

    def _timeline(self, uid: int) -> HandlerOutcome:
        post_ids, cost = self.store.lrange(f"timeline:{uid}", 0,
                                           TIMELINE_LENGTH)
        posts = []
        for post_id in post_ids:
            body, read_cost = self.store.hgetall(f"post:{post_id}")
            cost += read_cost
            posts.append(body)
        self.timeline_reads += 1
        return HandlerOutcome(Result(ok=True, value=posts), cost)

    def recovery_cost_ns(self) -> int:
        return microseconds(120_000) + microseconds(4) * len(self.store)

    def digest(self) -> int:
        return self.store.digest()


def make_ops(uid: int, request_index: int, rng,
             update_ratio: float, payload_bytes: int,
             population: int) -> Tuple[Operation, int]:
    """One Retwis request for the closed-loop driver.

    Updates are posts (dominant) and follows; reads are timelines of a
    random user.  Clients never order against each other (Sec III-C).
    """
    if rng.random() < update_ratio:
        if rng.random() < 0.85:
            op = Operation(OpKind.PROC_UPDATE, proc="post",
                           value=f"tweet-{uid}-{request_index}",
                           args={"uid": uid})
        else:
            op = Operation(OpKind.PROC_UPDATE, proc="follow",
                           args={"follower": uid,
                                 "followee": rng.randrange(population)})
    else:
        op = Operation(OpKind.PROC_READ, proc="timeline",
                       args={"uid": rng.randrange(population)})
    return op, payload_bytes


def session(uid: int, api, rng, requests: int, update_ratio: float,
            payload_bytes: int, population: int) -> Iterator:
    """A full Retwis client session: register once, then the mix."""
    register = Operation(OpKind.PROC_UPDATE, proc="register")
    completion = yield from api.request(register, payload_bytes)
    my_uid = completion.result.value if completion.result.ok else uid
    for request_index in range(requests):
        op, size = make_ops(my_uid, request_index, rng, update_ratio,
                            payload_bytes, population)
        yield from api.request(op, size)
