"""Flow-level load generator: many modeled users, few simulated objects.

The closed-loop driver (:mod:`repro.experiments.driver`) spawns one
generator Process per client — fine for the paper's 64-host testbed,
hopeless for modeling the 10^5-10^6 users a rack's worth of ToR traffic
really aggregates.  This module models users as *flows* instead: each
deployment client becomes one **shard** that multiplexes thousands of
virtual users, and the only simulated objects are the arrival timers
and the in-flight requests themselves.

Two arrival processes:

* **closed** — ``users`` virtual users, each with at most one
  outstanding request and a fixed ``think_time_ns`` between its
  completion and its next arrival (the classic closed-loop model,
  scaled out).  Users beyond the per-shard ``window`` wait their turn
  in an O(1) counter, not in per-user state.
* **open** — Poisson arrivals per shard with mean
  ``mean_interarrival_ns``, drawn from the shard's seeded stream via
  :func:`repro.sim.rand.exponential_delay`.  Arrivals beyond the
  window queue; latency is measured from *arrival*, so queueing delay
  is part of the sample (the open-loop honesty rule).

Determinism: every draw comes from ``sim.random.stream("loadgen:<i>")``
— per-shard streams, seeded from the simulator seed — and arrival
bookkeeping never touches the wall clock, so one seed reproduces the
exact sample table regardless of worker count, run order, or fold mode.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, ExperimentError
from repro.sim.monitor import Counter, LatencyRecorder, ThroughputMeter
from repro.sim.rand import exponential_delay
from repro.workloads.ycsb import YCSBConfig, YCSBGenerator

#: The two arrival processes.
MODES = ("closed", "open")


@dataclass(frozen=True)
class LoadGenConfig:
    """Knobs of one load-generator run (all JSON-safe for job specs)."""

    #: ``closed`` (think-time users) or ``open`` (Poisson arrivals).
    mode: str = "closed"
    #: Modeled virtual users across all shards (closed-loop only).
    users: int = 10_000
    #: Total request budget for the whole run, across shards.
    total_requests: int = 20_000
    #: Closed-loop: delay between a user's completion and next arrival.
    think_time_ns: int = 0
    #: Open-loop: per-shard Poisson mean inter-arrival time.
    mean_interarrival_ns: int = 2_000
    #: Per-shard cap on in-flight requests (flow-level concurrency).
    window: int = 64
    #: SET share of the generated YCSB mix.
    update_ratio: float = 1.0
    #: Request payload size handed to the generator.
    payload_bytes: int = 100
    #: Earliest completions per shard excluded from the sample table.
    warmup_requests: int = 0
    #: Zipfian skew of the key popularity (0.0 = uniform).  Defaults
    #: mirror :class:`~repro.workloads.ycsb.YCSBConfig`.
    zipf_theta: float = 0.9
    #: Keyspace size handed to the generator.
    population: int = 10_000

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ConfigurationError(
                f"loadgen mode must be one of {MODES}, got {self.mode!r}")
        if self.mode == "closed" and self.users <= 0:
            raise ConfigurationError("closed-loop needs at least one user")
        if self.total_requests <= 0:
            raise ConfigurationError("total_requests must be positive")
        if self.window <= 0:
            raise ConfigurationError("window must be positive")
        if self.mode == "open" and self.mean_interarrival_ns <= 0:
            raise ConfigurationError(
                "open-loop needs a positive mean inter-arrival time")
        if self.think_time_ns < 0:
            raise ConfigurationError("think time must be non-negative")
        if self.population <= 0:
            raise ConfigurationError("population must be positive")

    def to_params(self) -> Dict[str, object]:
        """A JSON-safe dict for :class:`~repro.experiments.jobs.JobSpec`."""
        return {"mode": self.mode, "users": self.users,
                "total_requests": self.total_requests,
                "think_time_ns": self.think_time_ns,
                "mean_interarrival_ns": self.mean_interarrival_ns,
                "window": self.window, "update_ratio": self.update_ratio,
                "payload_bytes": self.payload_bytes,
                "warmup_requests": self.warmup_requests,
                "zipf_theta": self.zipf_theta,
                "population": self.population}

    @staticmethod
    def from_params(params: Dict[str, object]) -> "LoadGenConfig":
        return LoadGenConfig(**params)  # type: ignore[arg-type]


@dataclass
class LoadGenResult:
    """The reproducible face of one run: sample table plus totals."""

    mode: str
    modeled_users: int
    shards: int
    issued: int
    completed: int
    errors: int
    duration_ns: int
    #: shard index -> latencies (ns) in completion order, warmup dropped.
    samples: Dict[int, List[int]] = field(default_factory=dict)

    def ops_per_second(self) -> float:
        if self.duration_ns <= 0:
            return 0.0
        return self.completed / (self.duration_ns / 1e9)

    def sample_table(self) -> List[Tuple[int, int, int]]:
        """Canonical ``(shard, index, latency_ns)`` rows, shard-major.

        This is the byte-identity surface: two runs agree exactly when
        their tables agree, independent of dict iteration order."""
        return [(shard, index, latency)
                for shard in sorted(self.samples)
                for index, latency in enumerate(self.samples[shard])]

    def digest(self) -> str:
        """A short stable digest of the sample table."""
        blob = json.dumps(self.sample_table()).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:16]

    def mean_latency_us(self) -> float:
        rows = [lat for lats in self.samples.values() for lat in lats]
        if not rows:
            return 0.0
        return sum(rows) / len(rows) / 1000.0


class _Shard:
    """One deployment client multiplexing a slice of the user base."""

    __slots__ = ("index", "client", "rng", "users", "waiting_users",
                 "in_flight", "backlog", "issued", "completed", "samples")

    def __init__(self, index: int, client, rng, users: int) -> None:
        self.index = index
        self.client = client
        self.rng = rng
        self.users = users
        #: Closed-loop: users ready to issue but outside the window.
        self.waiting_users = users
        self.in_flight = 0
        #: Open-loop: arrival timestamps waiting for a window slot.
        self.backlog: Deque[int] = deque()
        self.issued = 0
        self.completed = 0
        self.samples: List[int] = []


class FlowLoadGenerator:
    """Drives one deployment with flow-level arrivals, no Processes.

    Everything runs off completion callbacks and plain scheduled
    timers: closed-loop users park in an integer counter while they
    think or wait for a window slot; open-loop arrivals park in a deque
    of timestamps.  The per-request cost is O(1) state, so a single run
    models 10^5-10^6 users without building them.
    """

    def __init__(self, deployment, config: LoadGenConfig,
                 tagger=None) -> None:
        if not deployment.clients:
            raise ExperimentError("deployment has no clients to shard over")
        self.deployment = deployment
        self.config = config
        self.sim = deployment.sim
        #: Optional ``tagger(client, op) -> tag`` evaluated at issue
        #: time; completions land in ``tagged[tag]`` alongside the
        #: per-shard samples (rebalance experiments tag by the key's
        #: *original* ring owner to isolate untouched-shard latency).
        self._tagger = tagger
        self.tagged: Dict[object, List[int]] = {}
        self._generator = YCSBGenerator(YCSBConfig(
            update_ratio=config.update_ratio,
            payload_bytes=config.payload_bytes,
            zipf_theta=config.zipf_theta,
            population=config.population))
        self._budget = config.total_requests
        self._started_at = 0
        self._finished_at = 0
        self.errors = 0
        self.latencies = LatencyRecorder("loadgen.latency")
        self.throughput = ThroughputMeter("loadgen.throughput")
        self.arrivals = Counter("loadgen.arrivals")
        count = len(deployment.clients)
        base, extra = divmod(config.users, count)
        self.shards = [
            _Shard(index, client, self.sim.random.stream(f"loadgen:{index}"),
                   base + (1 if index < extra else 0))
            for index, client in enumerate(deployment.clients)]
        if deployment.obs is not None:
            registry = deployment.obs.registry
            for instrument in self.instruments():
                if instrument.name not in registry:
                    registry.register(instrument)

    def instruments(self) -> tuple:
        return (self.latencies, self.throughput, self.arrivals)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm every shard's arrival process (call before ``sim.run``)."""
        self._started_at = self.sim.now
        if self.config.mode == "closed":
            for shard in self.shards:
                self._pump_closed(shard)
        else:
            for shard in self.shards:
                self._schedule_arrival(shard)

    @property
    def issued(self) -> int:
        return sum(shard.issued for shard in self.shards)

    @property
    def completed(self) -> int:
        return sum(shard.completed for shard in self.shards)

    def result(self) -> LoadGenResult:
        return LoadGenResult(
            mode=self.config.mode,
            modeled_users=(self.config.users
                           if self.config.mode == "closed" else 0),
            shards=len(self.shards), issued=self.issued,
            completed=self.completed, errors=self.errors,
            duration_ns=self._finished_at - self._started_at,
            samples={shard.index: shard.samples for shard in self.shards})

    # ------------------------------------------------------------------
    # Closed loop: users <-> window slots
    # ------------------------------------------------------------------
    def _pump_closed(self, shard: _Shard) -> None:
        while (shard.waiting_users > 0 and self._budget > 0
               and shard.in_flight < self.config.window):
            shard.waiting_users -= 1
            self._issue(shard, self.sim.now)

    def _user_ready(self, shard: _Shard) -> None:
        """A user finished thinking and re-enters the arrival pool."""
        shard.waiting_users += 1
        self._pump_closed(shard)

    # ------------------------------------------------------------------
    # Open loop: Poisson arrival chain per shard
    # ------------------------------------------------------------------
    def _schedule_arrival(self, shard: _Shard) -> None:
        if self._budget <= 0:
            return
        self._budget -= 1
        delay = exponential_delay(shard.rng,
                                  self.config.mean_interarrival_ns)
        self.sim.schedule(delay, self._arrival, shard)

    def _arrival(self, shard: _Shard) -> None:
        self.arrivals.increment()
        if shard.in_flight < self.config.window:
            self._issue_open(shard, self.sim.now)
        else:
            shard.backlog.append(self.sim.now)
        self._schedule_arrival(shard)

    # ------------------------------------------------------------------
    def _issue(self, shard: _Shard, submitted_at: int) -> None:
        """Closed-loop issue: consumes one unit of the request budget."""
        self._budget -= 1
        self.arrivals.increment()
        self._issue_open(shard, submitted_at)

    def _issue_open(self, shard: _Shard, submitted_at: int) -> None:
        op, size = self._generator.make_op(shard.index, shard.issued,
                                           shard.rng)
        shard.issued += 1
        shard.in_flight += 1
        tag = (self._tagger(shard.client, op)
               if self._tagger is not None else None)
        if op.is_update:
            completion = shard.client.send_update(op, size)
        else:
            completion = shard.client.bypass(op, size)
        completion.add_callback(self._on_done, shard, submitted_at, tag)

    def _on_done(self, event, shard: _Shard, submitted_at: int,
                 tag=None) -> None:
        shard.in_flight -= 1
        shard.completed += 1
        now = self.sim.now
        latency = now - submitted_at
        if shard.completed > self.config.warmup_requests:
            shard.samples.append(latency)
            self.latencies.record(latency)
            self.throughput.record(now)
            if tag is not None:
                self.tagged.setdefault(tag, []).append(latency)
        completion = event.value
        result = completion.result
        if not result.ok and not result.is_miss:
            self.errors += 1
        self._finished_at = now
        if self.config.mode == "closed":
            if self._budget > 0:
                if self.config.think_time_ns > 0:
                    self.sim.schedule(self.config.think_time_ns,
                                      self._user_ready, shard)
                else:
                    shard.waiting_users += 1
            self._pump_closed(shard)
        elif shard.backlog:
            self._issue_open(shard, shard.backlog.popleft())


def run_loadgen(deployment, config: LoadGenConfig) -> LoadGenResult:
    """Drive ``deployment`` with flow-level load; return the result."""
    engine = FlowLoadGenerator(deployment, config)
    deployment.open_all_sessions()
    engine.start()
    deployment.sim.run()
    if engine.completed != engine.issued:
        raise ExperimentError(
            f"loadgen lost requests: issued {engine.issued}, completed "
            f"{engine.completed} — the simulation deadlocked or dropped "
            "work without retransmission")
    return engine.result()
