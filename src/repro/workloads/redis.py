"""A PM-optimized Redis analog (Intel's pmem-redis, Sec VI-A2).

Implements the Redis subset the paper's workloads use — strings
(GET/SET/INCR), hashes (HSET/HGETALL), lists (LPUSH/LRANGE) and sets
(SADD/SMEMBERS) — over a dictionary store with a persistent append-only
cost model: every mutation appends to a PM AOF region (one flush) and
updates the in-PM object, which is much cheaper per update than PMDK
transactions (pmem-redis avoids undo logging), hence Redis is one of the
faster handlers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.errors import WorkloadError
from repro.host.handler import HandlerOutcome, RequestHandler
from repro.sim.clock import microseconds, milliseconds
from repro.workloads.kv import OpKind, Operation, Result

#: Cost of one AOF append + flush to PM.
_AOF_APPEND_NS = microseconds(2.0)
#: Cost of updating an object in PM (allocation amortized).
_OBJECT_WRITE_NS = microseconds(3.5)
#: Cost of a dictionary lookup + object read.
_READ_NS = microseconds(2.2)
#: Extra per element for multi-element reads (HGETALL/LRANGE/SMEMBERS).
_PER_ELEMENT_NS = 150


class PMRedis:
    """The store itself: typed values with persistence-cost accounting."""

    def __init__(self) -> None:
        self._data: Dict[Any, Any] = {}
        self.commands_executed = 0

    # -- strings -----------------------------------------------------------
    def set(self, key: Any, value: Any) -> int:
        self._data[key] = value
        self.commands_executed += 1
        return _AOF_APPEND_NS + _OBJECT_WRITE_NS

    def get(self, key: Any) -> Tuple[Any, int]:
        self.commands_executed += 1
        return self._data.get(key), _READ_NS

    def incr(self, key: Any) -> Tuple[int, int]:
        current = self._data.get(key, 0)
        if not isinstance(current, int):
            raise WorkloadError(f"INCR on non-integer key {key!r}")
        self._data[key] = current + 1
        self.commands_executed += 1
        return current + 1, _AOF_APPEND_NS + _OBJECT_WRITE_NS

    # -- hashes ------------------------------------------------------------
    def hset(self, key: Any, field: Any, value: Any) -> int:
        entry = self._data.setdefault(key, {})
        if not isinstance(entry, dict):
            raise WorkloadError(f"HSET on non-hash key {key!r}")
        entry[field] = value
        self.commands_executed += 1
        return _AOF_APPEND_NS + _OBJECT_WRITE_NS

    def hgetall(self, key: Any) -> Tuple[Dict[Any, Any], int]:
        entry = self._data.get(key, {})
        if not isinstance(entry, dict):
            raise WorkloadError(f"HGETALL on non-hash key {key!r}")
        self.commands_executed += 1
        return dict(entry), _READ_NS + _PER_ELEMENT_NS * len(entry)

    # -- lists ---------------------------------------------------------------
    def lpush(self, key: Any, value: Any) -> int:
        entry = self._data.setdefault(key, [])
        if not isinstance(entry, list):
            raise WorkloadError(f"LPUSH on non-list key {key!r}")
        entry.insert(0, value)
        self.commands_executed += 1
        return _AOF_APPEND_NS + _OBJECT_WRITE_NS

    def lrange(self, key: Any, start: int, stop: int) -> Tuple[List[Any], int]:
        entry = self._data.get(key, [])
        if not isinstance(entry, list):
            raise WorkloadError(f"LRANGE on non-list key {key!r}")
        window = entry[start:stop if stop >= 0 else None]
        self.commands_executed += 1
        return window, _READ_NS + _PER_ELEMENT_NS * len(window)

    # -- sets -----------------------------------------------------------------
    def sadd(self, key: Any, member: Any) -> int:
        entry = self._data.setdefault(key, set())
        if not isinstance(entry, set):
            raise WorkloadError(f"SADD on non-set key {key!r}")
        entry.add(member)
        self.commands_executed += 1
        return _AOF_APPEND_NS + _OBJECT_WRITE_NS

    def smembers(self, key: Any) -> Tuple[set, int]:
        entry = self._data.get(key, set())
        if not isinstance(entry, set):
            raise WorkloadError(f"SMEMBERS on non-set key {key!r}")
        self.commands_executed += 1
        return set(entry), _READ_NS + _PER_ELEMENT_NS * len(entry)

    # -- recovery -------------------------------------------------------------
    def digest(self) -> int:
        acc = 0
        for key, value in self._data.items():
            if isinstance(value, dict):
                value = tuple(sorted(value.items(), key=repr))
            elif isinstance(value, list):
                value = tuple(value)
            elif isinstance(value, set):
                value = tuple(sorted(value, key=repr))
            acc ^= hash((key, value))
        return acc

    def __len__(self) -> int:
        return len(self._data)


class RedisHandler(RequestHandler):
    """Adapts :class:`PMRedis` to the server handler interface.

    GET/SET map to strings; richer commands arrive as PROC_* operations
    with ``proc`` naming the command and ``args`` its parameters.
    """

    name = "redis"

    def __init__(self, store: PMRedis = None) -> None:  # type: ignore[assignment]
        self.store = store if store is not None else PMRedis()

    def process(self, op: Operation) -> HandlerOutcome:
        if op.kind is OpKind.SET:
            return HandlerOutcome(Result(ok=True),
                                  self.store.set(op.key, op.value), 16)
        if op.kind is OpKind.GET:
            value, cost = self.store.get(op.key)
            return HandlerOutcome(Result(ok=value is not None, value=value),
                                  cost)
        if op.kind is OpKind.PROC_UPDATE:
            return self._proc_update(op)
        if op.kind is OpKind.PROC_READ:
            return self._proc_read(op)
        return HandlerOutcome(Result(ok=False, error="unsupported"),
                              microseconds(1), 16)

    def _proc_update(self, op: Operation) -> HandlerOutcome:
        if op.proc == "incr":
            value, cost = self.store.incr(op.key)
            return HandlerOutcome(Result(ok=True, value=value), cost, 16)
        if op.proc == "hset":
            cost = self.store.hset(op.key, op.args["field"], op.value)
            return HandlerOutcome(Result(ok=True), cost, 16)
        if op.proc == "lpush":
            cost = self.store.lpush(op.key, op.value)
            return HandlerOutcome(Result(ok=True), cost, 16)
        if op.proc == "sadd":
            cost = self.store.sadd(op.key, op.value)
            return HandlerOutcome(Result(ok=True), cost, 16)
        return HandlerOutcome(Result(ok=False, error="unknown_proc"),
                              microseconds(1), 16)

    def _proc_read(self, op: Operation) -> HandlerOutcome:
        if op.proc == "hgetall":
            value, cost = self.store.hgetall(op.key)
            return HandlerOutcome(Result(ok=True, value=value), cost)
        if op.proc == "lrange":
            value, cost = self.store.lrange(
                op.key, op.args.get("start", 0), op.args.get("stop", 10))
            return HandlerOutcome(Result(ok=True, value=value), cost)
        if op.proc == "smembers":
            value, cost = self.store.smembers(op.key)
            return HandlerOutcome(Result(ok=True, value=sorted(value, key=repr)),
                                  cost)
        return HandlerOutcome(Result(ok=False, error="unknown_proc"),
                              microseconds(1), 16)

    def recovery_cost_ns(self) -> int:
        """AOF replay-free pmem-redis restart: pool open + index scan."""
        return milliseconds(120) + microseconds(4) * len(self.store)

    def digest(self) -> int:
        return self.store.digest()
