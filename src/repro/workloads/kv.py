"""The application-level operation model shared by all workloads.

Every request payload in the system is an :class:`Operation`; every
response payload is a :class:`Result`.  The PMNet read cache understands
the GET/SET subset (the paper's cache is keyed on the KV interface,
Sec VI-B4); richer workloads (Twitter, TPC-C) encode their procedures as
operations with workload-specific kinds that the cache simply ignores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional


class OpKind(str, Enum):
    """All operation kinds understood by the request handlers."""

    GET = "get"
    SET = "set"
    DELETE = "delete"
    #: Acquire an application-level lock (TPC-C critical sections);
    #: always sent as a bypass request (Sec III-C).
    LOCK = "lock"
    #: Release an application-level lock.
    UNLOCK = "unlock"
    #: A workload-specific read-only procedure (e.g. Twitter timeline).
    PROC_READ = "proc_read"
    #: A workload-specific state-mutating procedure (e.g. TPC-C payment).
    PROC_UPDATE = "proc_update"


#: Kinds that mutate server state and therefore ride update-req packets.
UPDATE_KINDS = frozenset({OpKind.SET, OpKind.DELETE, OpKind.PROC_UPDATE})
#: Kinds that must bypass PMNet logging (reads and synchronization).
BYPASS_KINDS = frozenset({OpKind.GET, OpKind.LOCK, OpKind.UNLOCK,
                          OpKind.PROC_READ})


@dataclass(slots=True)
class Operation:
    """One application request."""

    kind: OpKind
    key: Any = None
    value: Any = None
    #: Workload-specific arguments (e.g. TPC-C order lines).
    args: Dict[str, Any] = field(default_factory=dict)
    #: Name of the procedure for PROC_* kinds.
    proc: str = ""

    @property
    def is_update(self) -> bool:
        """Whether this operation changes server state."""
        return self.kind in UPDATE_KINDS

    @property
    def is_cacheable_get(self) -> bool:
        """Whether the PMNet read cache may serve this operation."""
        return self.kind is OpKind.GET and self.key is not None

    @property
    def is_cacheable_set(self) -> bool:
        """Whether this operation installs a value the cache can keep."""
        return self.kind is OpKind.SET and self.key is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.proc or self.kind.value
        return f"<Op {label} key={self.key!r}>"


#: Error codes that are legitimate application outcomes, not failures:
#: a GET or DELETE aimed at a key that was never written behaves exactly
#: as a store should, so drivers count these as *misses*, not errors.
MISS_ERRORS = frozenset({"not_found"})


@dataclass(slots=True)
class Result:
    """One application response."""

    ok: bool = True
    value: Any = None
    error: Optional[str] = None
    #: True when the value was served by the in-network cache.
    from_cache: bool = False

    @property
    def is_miss(self) -> bool:
        """A well-formed lookup that found nothing (not a failure)."""
        return not self.ok and self.error in MISS_ERRORS

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "ok" if self.ok else f"error={self.error!r}"
        return f"<Result {status}>"


def estimate_result_bytes(result: Result, default_bytes: int = 32) -> int:
    """Wire size of a response: values dominate, errors are small."""
    if result.value is None:
        return default_bytes
    if isinstance(result.value, (bytes, str)):
        return max(default_bytes, len(result.value))
    if isinstance(result.value, (list, tuple)):
        return max(default_bytes, 16 * len(result.value))
    return default_bytes
