"""A TPC-C subset (Sec VI-A2, Fig 5): the paper's lock-ordered workload.

Implements the tables and the transaction shapes the paper's discussion
needs: NEW-ORDER transactions modify the shared stock table inside an
application-level critical section (LOCK stock -> update -> UNLOCK, per
Fig 5), while PAYMENT and ORDER-STATUS transactions are lock-free.  The
lock requests bypass PMNet (they are OpKind.LOCK/UNLOCK), so with the
default mix about 13.7 % of the *requests* touch the locking primitive —
the fraction the paper reports.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Tuple

from repro.host.handler import HandlerOutcome, RequestHandler
from repro.sim.clock import microseconds
from repro.workloads.kv import OpKind, Operation, Result

#: Fraction of transactions that enter the stock critical section; with
#: three requests per locking transaction (2 of them lock ops) and one
#: per plain transaction, lock-op request share = 2x / (1 + 2x) = 13.7 %
#: at x ~= 0.0794.
LOCKING_TXN_FRACTION = 0.0794

#: Back-off before retrying a failed lock acquisition.
LOCK_RETRY_BACKOFF_NS = microseconds(30)

_DISTRICTS_PER_WAREHOUSE = 10
_ITEMS = 1000


class TPCCHandler(RequestHandler):
    """Executes TPC-C transaction bodies against in-PM tables."""

    name = "tpcc"

    def __init__(self, warehouses: int = 4) -> None:
        self.warehouses = warehouses
        self.district_next_oid: Dict[Tuple[int, int], int] = {}
        self.stock: Dict[Tuple[int, int], int] = {}
        self.orders: Dict[Tuple[int, int, int], Dict[str, Any]] = {}
        self.customer_balance: Dict[Tuple[int, int, int], float] = {}
        self.new_orders = 0
        self.payments = 0
        for warehouse in range(warehouses):
            for district in range(_DISTRICTS_PER_WAREHOUSE):
                self.district_next_oid[(warehouse, district)] = 1
            for item in range(_ITEMS):
                self.stock[(warehouse, item)] = 100

    # ------------------------------------------------------------------
    def process(self, op: Operation) -> HandlerOutcome:
        if op.kind is OpKind.PROC_UPDATE and op.proc == "new_order":
            return self._new_order(op.args)
        if op.kind is OpKind.PROC_UPDATE and op.proc == "payment":
            return self._payment(op.args)
        if op.kind is OpKind.PROC_READ and op.proc == "order_status":
            return self._order_status(op.args)
        return HandlerOutcome(Result(ok=False, error="unknown_proc"),
                              microseconds(1), 16)

    def _new_order(self, args: Dict[str, Any]) -> HandlerOutcome:
        warehouse = args["warehouse"]
        district = args["district"]
        items = args["items"]  # list of (item_id, quantity)
        oid = self.district_next_oid[(warehouse, district)]
        self.district_next_oid[(warehouse, district)] = oid + 1
        cost = microseconds(6)  # district read + next-oid update
        lines = []
        for item_id, quantity in items:
            stock_key = (warehouse, item_id)
            level = self.stock.get(stock_key, 0)
            if level < quantity:
                level += 100  # TPC-C restock rule
            self.stock[stock_key] = level - quantity
            lines.append((item_id, quantity))
            cost += microseconds(4)  # stock read-modify-write + flush
        self.orders[(warehouse, district, oid)] = {
            "items": lines, "status": "new"}
        cost += microseconds(8)  # order + order-line inserts
        self.new_orders += 1
        return HandlerOutcome(Result(ok=True, value=oid), cost, 16)

    def _payment(self, args: Dict[str, Any]) -> HandlerOutcome:
        key = (args["warehouse"], args["district"], args["customer"])
        self.customer_balance[key] = (self.customer_balance.get(key, 0.0)
                                      + args["amount"])
        self.payments += 1
        # Warehouse YTD + district YTD + customer balance, each flushed.
        return HandlerOutcome(Result(ok=True), microseconds(14), 16)

    def _order_status(self, args: Dict[str, Any]) -> HandlerOutcome:
        key = (args["warehouse"], args["district"], args["order"])
        order = self.orders.get(key)
        return HandlerOutcome(
            Result(ok=order is not None, value=order,
                   error=None if order else "no_such_order"),
            microseconds(7))

    def recovery_cost_ns(self) -> int:
        rows = (len(self.stock) + len(self.orders)
                + len(self.customer_balance))
        return microseconds(150_000) + microseconds(2) * rows

    def digest(self) -> int:
        acc = 0
        for key, value in self.stock.items():
            acc ^= hash(("stock", key, value))
        for key, value in self.customer_balance.items():
            acc ^= hash(("bal", key, value))
        acc ^= hash(("orders", len(self.orders)))
        return acc


def session(client_index: int, api, rng, transactions: int,
            update_ratio: float, payload_bytes: int,
            warehouses: int = 4) -> Iterator:
    """One terminal's TPC-C session.

    ``update_ratio`` scales how many transactions are updates (payment /
    new-order) versus order-status reads, mirroring Fig 19's sweep.
    """
    for txn_index in range(transactions):
        warehouse = rng.randrange(warehouses)
        district = rng.randrange(_DISTRICTS_PER_WAREHOUSE)
        if rng.random() >= update_ratio:
            op = Operation(OpKind.PROC_READ, proc="order_status",
                           args={"warehouse": warehouse,
                                 "district": district,
                                 "order": rng.randrange(1, 50)})
            yield from api.request(op, payload_bytes)
            continue
        if rng.random() < LOCKING_TXN_FRACTION:
            yield from _locked_new_order(api, rng, warehouse, district,
                                         payload_bytes)
        else:
            op = Operation(OpKind.PROC_UPDATE, proc="payment",
                           args={"warehouse": warehouse,
                                 "district": district,
                                 "customer": rng.randrange(100),
                                 "amount": round(rng.random() * 500, 2)})
            yield from api.request(op, payload_bytes)


def _locked_new_order(api, rng, warehouse: int, district: int,
                      payload_bytes: int) -> Iterator:
    """Fig 5: LOCK stock -> new_order update -> UNLOCK, with retries.

    The lock requests are OpKind.LOCK/UNLOCK, which the client library
    sends as bypass requests — PMNet forwards them straight to the
    server, so mutual exclusion is enforced there (Sec III-C).
    """
    lock_key = ("stock", warehouse)
    while True:
        completion = yield from api.request(
            Operation(OpKind.LOCK, key=lock_key), payload_bytes)
        if completion.result.ok:
            break
        yield from api.think(LOCK_RETRY_BACKOFF_NS)
    items = [(rng.randrange(_ITEMS), rng.randrange(1, 6))
             for _ in range(rng.randrange(3, 8))]
    op = Operation(OpKind.PROC_UPDATE, proc="new_order",
                   args={"warehouse": warehouse, "district": district,
                         "items": items})
    yield from api.request(op, payload_bytes)
    yield from api.request(Operation(OpKind.UNLOCK, key=lock_key),
                           payload_bytes)
