"""The YCSB-like request generator (Sec VI-A2).

Generates GET/SET mixes over a keyspace with configurable update ratio,
Zipfian skew, and payload size — the driver behind the PMDK and Redis
rows of Figs 19-20.  Payloads default to the paper's 100 B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError
from repro.sim.rand import zipfian_ranks
from repro.workloads.kv import OpKind, Operation


@dataclass(frozen=True)
class YCSBConfig:
    """Parameters of one YCSB-style run."""

    update_ratio: float = 1.0
    population: int = 10_000
    zipf_theta: float = 0.9
    payload_bytes: int = 100
    value_bytes: int = 64

    def __post_init__(self) -> None:
        if not 0.0 <= self.update_ratio <= 1.0:
            raise ConfigurationError(
                f"update ratio must be in [0, 1], got {self.update_ratio}")
        if self.population <= 0:
            raise ConfigurationError("population must be positive")


class YCSBGenerator:
    """Stateless-per-request operation generator."""

    def __init__(self, config: YCSBConfig) -> None:
        self.config = config

    def make_op(self, client_index: int, request_index: int,
                rng) -> Tuple[Operation, int]:
        """One operation for the closed-loop driver."""
        key = self._pick_key(rng)
        if rng.random() < self.config.update_ratio:
            value = f"v{client_index}.{request_index}"
            op = Operation(OpKind.SET, key=key, value=value)
        else:
            op = Operation(OpKind.GET, key=key)
        return op, self.config.payload_bytes

    def _pick_key(self, rng) -> int:
        if self.config.zipf_theta <= 0.0:
            return rng.randrange(self.config.population)
        return zipfian_ranks(rng, self.config.population,
                             self.config.zipf_theta, 1)[0]


def make_op_maker(config: YCSBConfig):
    """An ``op_maker`` callable for :func:`repro.experiments.driver`."""
    generator = YCSBGenerator(config)
    return generator.make_op
