"""Workloads: the operation model, PMDK stores, Redis, Twitter, TPC-C."""

from repro.workloads.handlers import StructureHandler
from repro.workloads.kv import (
    BYPASS_KINDS,
    UPDATE_KINDS,
    OpKind,
    Operation,
    Result,
    estimate_result_bytes,
)
from repro.workloads.pmdk.btree import PMBTree
from repro.workloads.pmdk.ctree import PMCTree
from repro.workloads.pmdk.hashmap import PMHashmap
from repro.workloads.pmdk.rbtree import PMRBTree
from repro.workloads.pmdk.skiplist import PMSkiplist
from repro.workloads.redis import PMRedis, RedisHandler
from repro.workloads.tpcc import TPCCHandler
from repro.workloads.twitter import TwitterHandler
from repro.workloads.ycsb import YCSBConfig, YCSBGenerator, make_op_maker

#: Factory map for the five PMDK stores (Fig 19's first five rows).
PMDK_STRUCTURES = {
    "btree": PMBTree,
    "ctree": PMCTree,
    "rbtree": PMRBTree,
    "hashmap": PMHashmap,
    "skiplist": PMSkiplist,
}

__all__ = [
    "Operation", "Result", "OpKind", "UPDATE_KINDS", "BYPASS_KINDS",
    "estimate_result_bytes",
    "PMBTree", "PMCTree", "PMRBTree", "PMHashmap", "PMSkiplist",
    "PMDK_STRUCTURES", "StructureHandler",
    "PMRedis", "RedisHandler", "TwitterHandler", "TPCCHandler",
    "YCSBConfig", "YCSBGenerator", "make_op_maker",
]
