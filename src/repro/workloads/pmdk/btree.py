"""A persistent B-tree (the PMDK ``btree`` example analog).

A real B-tree of order ``ORDER``: sorted keys per node, split-on-full
insertion, borrow/merge deletion.  Every structural write is metered:
node allocations, undo-log snapshots of modified nodes, and flushes of
dirtied cache lines.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import KeyNotFound
from repro.workloads.pmdk.base import PersistentStructure

#: Maximum number of keys per node (PMDK's example uses 8).
ORDER = 8


class _Node:
    __slots__ = ("keys", "values", "children")

    def __init__(self) -> None:
        self.keys: List[Any] = []
        self.values: List[Any] = []
        self.children: List["_Node"] = []

    @property
    def is_leaf(self) -> bool:
        return not self.children


class PMBTree(PersistentStructure):
    """Order-8 persistent B-tree."""

    kind = "btree"

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._root = _Node()
        self._count = 0

    # ------------------------------------------------------------------
    def _find_slot(self, node: _Node, key: Any) -> int:
        """Index of the first key >= ``key`` (linear, like the PMDK code)."""
        slot = 0
        while slot < len(node.keys) and node.keys[slot] < key:
            slot += 1
        return slot

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _lookup(self, key: Any) -> Any:
        node = self._root
        while True:
            self.meter.visit()
            self.meter.read()
            slot = self._find_slot(node, key)
            if slot < len(node.keys) and node.keys[slot] == key:
                return node.values[slot]
            if node.is_leaf:
                raise KeyNotFound(key)
            node = node.children[slot]

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def _insert(self, key: Any, value: Any) -> None:
        root = self._root
        if len(root.keys) >= ORDER:
            new_root = _Node()
            new_root.children.append(root)
            self.meter.alloc()
            self.meter.snapshot()  # root pointer
            self._split_child(new_root, 0)
            self._root = new_root
        self._insert_nonfull(self._root, key, value)

    def _split_child(self, parent: _Node, index: int) -> None:
        child = parent.children[index]
        mid = len(child.keys) // 2
        sibling = _Node()
        self.meter.alloc()
        self.meter.snapshot(2)  # parent and child are both modified
        self.meter.flush(2)
        sibling.keys = child.keys[mid + 1:]
        sibling.values = child.values[mid + 1:]
        if not child.is_leaf:
            sibling.children = child.children[mid + 1:]
            del child.children[mid + 1:]
        parent.keys.insert(index, child.keys[mid])
        parent.values.insert(index, child.values[mid])
        parent.children.insert(index + 1, sibling)
        del child.keys[mid:]
        del child.values[mid:]

    def _insert_nonfull(self, node: _Node, key: Any, value: Any) -> None:
        while True:
            self.meter.visit()
            slot = self._find_slot(node, key)
            if slot < len(node.keys) and node.keys[slot] == key:
                # PMDK-style overwrite: allocate the new value buffer,
                # swap the pointer under the undo log, free the old one.
                self.meter.alloc()
                self.meter.free()
                self.meter.snapshot()
                self.meter.flush()
                node.values[slot] = value
                return
            if node.is_leaf:
                self.meter.snapshot()
                self.meter.flush()
                node.keys.insert(slot, key)
                node.values.insert(slot, value)
                self._count += 1
                return
            if len(node.children[slot].keys) >= ORDER:
                self._split_child(node, slot)
                if node.keys[slot] < key:
                    slot += 1
                elif node.keys[slot] == key:
                    self.meter.snapshot()
                    node.values[slot] = value
                    return
            node = node.children[slot]

    # ------------------------------------------------------------------
    # Delete (CLRS-style: fix occupancy *before* descending)
    # ------------------------------------------------------------------
    #: Minimum keys in a non-root node; a split leaves >= ORDER//2 - 1.
    _MIN_KEYS = ORDER // 2 - 1

    def _remove(self, key: Any) -> None:
        self._delete_from(self._root, key)
        if not self._root.keys and self._root.children:
            self.meter.snapshot()
            self.meter.free()
            self._root = self._root.children[0]
        self._count -= 1

    def _delete_from(self, node: _Node, key: Any) -> None:
        self.meter.visit()
        self.meter.read()
        slot = self._find_slot(node, key)
        if slot < len(node.keys) and node.keys[slot] == key:
            self._delete_here(node, slot, key)
            return
        if node.is_leaf:
            raise KeyNotFound(key)
        child = node.children[slot]
        if len(child.keys) <= self._MIN_KEYS:
            self._fill(node, slot)
            # Filling may have moved the separator; re-route.
            slot = self._find_slot(node, key)
            if slot < len(node.keys) and node.keys[slot] == key:
                self._delete_here(node, slot, key)
                return
            child = node.children[slot]
        self._delete_from(child, key)

    def _delete_here(self, node: _Node, slot: int, key: Any) -> None:
        self.meter.snapshot()
        self.meter.flush()
        if node.is_leaf:
            node.keys.pop(slot)
            node.values.pop(slot)
            return
        left, right = node.children[slot], node.children[slot + 1]
        if len(left.keys) > self._MIN_KEYS:
            pred_key, pred_value = self._max_of(left)
            node.keys[slot] = pred_key
            node.values[slot] = pred_value
            self._delete_from(left, pred_key)
        elif len(right.keys) > self._MIN_KEYS:
            succ_key, succ_value = self._min_of(right)
            node.keys[slot] = succ_key
            node.values[slot] = succ_value
            self._delete_from(right, succ_key)
        else:
            self._merge(node, slot)
            self._delete_from(node.children[slot], key)

    def _max_of(self, node: _Node) -> Tuple[Any, Any]:
        while not node.is_leaf:
            self.meter.visit()
            node = node.children[-1]
        return node.keys[-1], node.values[-1]

    def _min_of(self, node: _Node) -> Tuple[Any, Any]:
        while not node.is_leaf:
            self.meter.visit()
            node = node.children[0]
        return node.keys[0], node.values[0]

    def _fill(self, node: _Node, slot: int) -> None:
        """Bring ``children[slot]`` above minimum by borrow or merge."""
        child = node.children[slot]
        if slot > 0 and len(node.children[slot - 1].keys) > self._MIN_KEYS:
            donor = node.children[slot - 1]
            self.meter.snapshot(3)
            self.meter.flush(2)
            child.keys.insert(0, node.keys[slot - 1])
            child.values.insert(0, node.values[slot - 1])
            node.keys[slot - 1] = donor.keys.pop()
            node.values[slot - 1] = donor.values.pop()
            if not donor.is_leaf:
                child.children.insert(0, donor.children.pop())
        elif (slot < len(node.keys)
              and len(node.children[slot + 1].keys) > self._MIN_KEYS):
            donor = node.children[slot + 1]
            self.meter.snapshot(3)
            self.meter.flush(2)
            child.keys.append(node.keys[slot])
            child.values.append(node.values[slot])
            node.keys[slot] = donor.keys.pop(0)
            node.values[slot] = donor.values.pop(0)
            if not donor.is_leaf:
                child.children.append(donor.children.pop(0))
        elif slot < len(node.keys):
            self._merge(node, slot)
        else:
            self._merge(node, slot - 1)

    def _merge(self, node: _Node, slot: int) -> None:
        """Fold ``keys[slot]`` and ``children[slot+1]`` into
        ``children[slot]``."""
        left, right = node.children[slot], node.children[slot + 1]
        self.meter.snapshot(3)
        self.meter.flush(2)
        self.meter.free()
        left.keys.append(node.keys.pop(slot))
        left.values.append(node.values.pop(slot))
        left.keys.extend(right.keys)
        left.values.extend(right.values)
        left.children.extend(right.children)
        node.children.pop(slot + 1)

    # ------------------------------------------------------------------
    def items(self) -> Iterator[Tuple[Any, Any]]:
        yield from self._walk(self._root)

    def _walk(self, node: _Node) -> Iterator[Tuple[Any, Any]]:
        if node.is_leaf:
            yield from zip(node.keys, node.values)
            return
        for index, (key, value) in enumerate(zip(node.keys, node.values)):
            yield from self._walk(node.children[index])
            yield key, value
        yield from self._walk(node.children[len(node.keys)])

    def __len__(self) -> int:
        return self._count

    # -- structural invariants (exercised by property tests) --------------
    def check_invariants(self) -> None:
        """Raise AssertionError if B-tree invariants are violated."""
        self._check_node(self._root, None, None, is_root=True)
        keys = [key for key, _value in self.items()]
        assert keys == sorted(keys), "in-order walk is not sorted"
        assert len(keys) == self._count, "count drifted from contents"

    def _check_node(self, node: _Node, low: Optional[Any],
                    high: Optional[Any], is_root: bool = False) -> int:
        assert len(node.keys) <= ORDER, "node overflow"
        assert node.keys == sorted(node.keys), "node keys unsorted"
        for key in node.keys:
            assert low is None or key > low, "key below subtree bound"
            assert high is None or key < high, "key above subtree bound"
        if node.is_leaf:
            return 1
        assert len(node.children) == len(node.keys) + 1, "fanout mismatch"
        depths = set()
        bounds = [low] + list(node.keys) + [high]
        for index, child in enumerate(node.children):
            depths.add(self._check_node(child, bounds[index],
                                        bounds[index + 1]))
        assert len(depths) == 1, "leaves at unequal depth"
        return depths.pop() + 1
