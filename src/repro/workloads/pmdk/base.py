"""Common interface for the PMDK example data structures.

Each structure is a genuine implementation of its algorithm (real nodes,
real rebalancing) that meters its persistent-memory actions through a
:class:`~repro.workloads.pmdk.pmobj.PMMeter`.  Mutations are wrapped in
a "transaction" (undo-log cost) so each operation is atomic — exactly
the property the failure-recovery experiments rely on.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import KeyNotFound
from repro.workloads.pmdk.pmobj import DEFAULT_PM_COSTS, PMCostProfile, PMMeter


class PersistentStructure:
    """A persistent key-value structure with metered operations.

    ``set``/``get``/``delete`` return the operation's processing cost in
    nanoseconds (``get`` returns ``(value, cost)``); ``digest`` produces
    an order-independent fingerprint of the contents for recovery
    equivalence checks.
    """

    kind = "abstract"

    def __init__(self, costs: PMCostProfile = DEFAULT_PM_COSTS) -> None:
        self.meter = PMMeter(costs)
        self.op_count = 0

    # -- to implement ----------------------------------------------------
    def _insert(self, key: Any, value: Any) -> None:
        raise NotImplementedError

    def _lookup(self, key: Any) -> Any:
        """Return the value or raise KeyNotFound."""
        raise NotImplementedError

    def _remove(self, key: Any) -> None:
        """Remove the key or raise KeyNotFound."""
        raise NotImplementedError

    def items(self) -> Iterator[Tuple[Any, Any]]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    # -- metered public interface -----------------------------------------
    def set(self, key: Any, value: Any) -> int:
        """Insert or update; returns the metered cost in nanoseconds."""
        self.meter.reset()
        self.meter.begin_tx()
        self._insert(key, value)
        self.op_count += 1
        return self.meter.take_ns()

    def get(self, key: Any) -> Tuple[Optional[Any], int]:
        """Look up; returns ``(value_or_None, cost_ns)``."""
        self.meter.reset()
        try:
            value = self._lookup(key)
        except KeyNotFound:
            value = None
        self.op_count += 1
        return value, self.meter.take_ns()

    def delete(self, key: Any) -> Tuple[bool, int]:
        """Remove; returns ``(found, cost_ns)``."""
        self.meter.reset()
        self.meter.begin_tx()
        try:
            self._remove(key)
            found = True
        except KeyNotFound:
            found = False
        self.op_count += 1
        return found, self.meter.take_ns()

    # -- recovery support --------------------------------------------------
    def digest(self) -> int:
        """Order-independent fingerprint of the current contents."""
        acc = 0
        for key, value in self.items():
            acc ^= hash((key, value))
        return acc

    def snapshot(self) -> List[Tuple[Any, Any]]:
        """Sorted contents (for equality assertions in tests)."""
        return sorted(self.items(), key=lambda kv: repr(kv[0]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} len={len(self)} ops={self.op_count}>"
