"""The persistent-object cost model (the PMDK/libpmemobj analog).

The paper's PMDK workloads (Sec VI-A2) run real tree/hash structures on
Intel DCPMM through libpmemobj transactions.  Our structures execute the
same algorithms on real Python objects; this module supplies the *cost
accounting*: every transactional action (undo-log snapshot, allocation,
flush+fence, node traversal) is tallied by a :class:`PMMeter` and
converted to nanoseconds with a :class:`PMCostProfile` calibrated to
published PMDK-on-Optane costs (transactional inserts in the tens of
microseconds, dominated by undo logging and fencing).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.clock import nanoseconds


@dataclass(frozen=True)
class PMCostProfile:
    """Nanosecond cost of each persistent-memory action."""

    #: pmemobj_tx_begin + commit: undo-log setup, drain fences.
    tx_overhead_ns: int = nanoseconds(14_000)
    #: One TX_ADD undo-log snapshot of an object (copy + flush + fence).
    snapshot_ns: int = nanoseconds(5_000)
    #: Persistent allocation (pmemobj_tx_alloc): arena walk + metadata.
    alloc_ns: int = nanoseconds(9_000)
    #: Persistent free.
    free_ns: int = nanoseconds(2_500)
    #: One cache-line flush + fence (clwb + sfence) of modified data.
    flush_ns: int = nanoseconds(1_000)
    #: One dependent PM read (pointer chase into Optane media).
    pm_read_ns: int = nanoseconds(300)
    #: CPU work per node visited (compare, branch; mostly cache-resident).
    node_visit_ns: int = nanoseconds(400)
    #: Fixed per-request server work outside the structure (parse, reply
    #: marshalling) for PMDK driver programs.
    request_overhead_ns: int = nanoseconds(4_000)


DEFAULT_PM_COSTS = PMCostProfile()


class PMMeter:
    """Tallies persistent-memory actions during one operation."""

    def __init__(self, profile: PMCostProfile = DEFAULT_PM_COSTS) -> None:
        self.profile = profile
        self.reset()

    def reset(self) -> None:
        self.tx_count = 0
        self.snapshots = 0
        self.allocs = 0
        self.frees = 0
        self.flushes = 0
        self.pm_reads = 0
        self.visits = 0

    # -- recording hooks (called by the data structures) -----------------
    def begin_tx(self) -> None:
        self.tx_count += 1

    def snapshot(self, count: int = 1) -> None:
        self.snapshots += count

    def alloc(self, count: int = 1) -> None:
        self.allocs += count

    def free(self, count: int = 1) -> None:
        self.frees += count

    def flush(self, count: int = 1) -> None:
        self.flushes += count

    def read(self, count: int = 1) -> None:
        self.pm_reads += count

    def visit(self, count: int = 1) -> None:
        self.visits += count

    # ------------------------------------------------------------------
    def total_ns(self, include_request_overhead: bool = True) -> int:
        """Convert the tallied actions into a processing time."""
        p = self.profile
        total = (self.tx_count * p.tx_overhead_ns
                 + self.snapshots * p.snapshot_ns
                 + self.allocs * p.alloc_ns
                 + self.frees * p.free_ns
                 + self.flushes * p.flush_ns
                 + self.pm_reads * p.pm_read_ns
                 + self.visits * p.node_visit_ns)
        if include_request_overhead:
            total += p.request_overhead_ns
        return total

    def take_ns(self) -> int:
        """Total for the current operation, then reset for the next one."""
        total = self.total_ns()
        self.reset()
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<PMMeter tx={self.tx_count} snap={self.snapshots} "
                f"alloc={self.allocs} flush={self.flushes} "
                f"visit={self.visits}>")
