"""A persistent hashmap (the PMDK ``hashmap_tx`` example analog).

Separate chaining with transactional resize at load factor 1.0.  The
common case touches one bucket (cheap — the paper's hashmap is its
fastest PMDK workload); a resize is a large metered burst, amortized.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import KeyNotFound
from repro.workloads.pmdk.base import PersistentStructure

_INITIAL_BUCKETS = 64


class _Cell:
    __slots__ = ("key", "value", "next")

    def __init__(self, key: Any, value: Any, nxt: Optional["_Cell"]) -> None:
        self.key = key
        self.value = value
        self.next = nxt


class PMHashmap(PersistentStructure):
    """Persistent chained hashmap with transactional resize."""

    kind = "hashmap"

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._buckets: List[Optional[_Cell]] = [None] * _INITIAL_BUCKETS
        self._count = 0
        self.resizes = 0

    def _index(self, key: Any) -> int:
        return hash(key) % len(self._buckets)

    # ------------------------------------------------------------------
    def _lookup(self, key: Any) -> Any:
        self.meter.read()
        cell = self._buckets[self._index(key)]
        while cell is not None:
            self.meter.visit()
            if cell.key == key:
                return cell.value
            cell = cell.next
        raise KeyNotFound(key)

    # ------------------------------------------------------------------
    def _insert(self, key: Any, value: Any) -> None:
        index = self._index(key)
        cell = self._buckets[index]
        while cell is not None:
            self.meter.visit()
            if cell.key == key:
                # Value-buffer replacement, as in the PMDK examples.
                self.meter.alloc()
                self.meter.free()
                self.meter.snapshot()
                self.meter.flush()
                cell.value = value
                return
            cell = cell.next
        self.meter.alloc()
        self.meter.snapshot()  # bucket head pointer
        self.meter.flush()
        self._buckets[index] = _Cell(key, value, self._buckets[index])
        self._count += 1
        if self._count > len(self._buckets):
            self._resize()

    def _resize(self) -> None:
        """Double the table inside the same transaction."""
        old = self._buckets
        self.meter.alloc()             # new bucket array
        self.meter.snapshot()          # table root
        self.meter.flush(len(old) // 8 + 1)
        self._buckets = [None] * (len(old) * 2)
        for head in old:
            cell = head
            while cell is not None:
                self.meter.visit()
                nxt = cell.next
                index = self._index(cell.key)
                cell.next = self._buckets[index]
                self._buckets[index] = cell
                cell = nxt
        self.resizes += 1

    # ------------------------------------------------------------------
    def _remove(self, key: Any) -> None:
        index = self._index(key)
        cell = self._buckets[index]
        previous: Optional[_Cell] = None
        while cell is not None:
            self.meter.visit()
            if cell.key == key:
                self.meter.snapshot()
                self.meter.flush()
                self.meter.free()
                if previous is None:
                    self._buckets[index] = cell.next
                else:
                    previous.next = cell.next
                self._count -= 1
                return
            previous = cell
            cell = cell.next
        raise KeyNotFound(key)

    # ------------------------------------------------------------------
    def items(self) -> Iterator[Tuple[Any, Any]]:
        for head in self._buckets:
            cell = head
            while cell is not None:
                yield cell.key, cell.value
                cell = cell.next

    def __len__(self) -> int:
        return self._count

    def check_invariants(self) -> None:
        """Every cell must live in the bucket its key hashes to."""
        seen = 0
        for index, head in enumerate(self._buckets):
            cell = head
            while cell is not None:
                assert self._index(cell.key) == index, "cell in wrong bucket"
                seen += 1
                cell = cell.next
        assert seen == self._count, "count drifted from contents"
