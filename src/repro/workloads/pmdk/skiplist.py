"""A persistent skip list (the PMDK ``skiplist`` example analog).

Probabilistic multi-level list with deterministic per-instance seeding
(the level RNG is part of the structure so results are reproducible).
Inserts snapshot one predecessor node per touched level.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, List, Tuple

from repro.errors import KeyNotFound
from repro.workloads.pmdk.base import PersistentStructure

_MAX_LEVEL = 16
_P = 0.5


class _Node:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: Any, value: Any, level: int) -> None:
        self.key = key
        self.value = value
        self.forward: List["_Node"] = [None] * level  # type: ignore[list-item]


class PMSkiplist(PersistentStructure):
    """Persistent skip list with metered level updates."""

    kind = "skiplist"

    def __init__(self, *args: Any, seed: int = 7, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._head = _Node(None, None, _MAX_LEVEL)
        self._level = 1
        self._count = 0
        self._rng = random.Random(seed)

    def _random_level(self) -> int:
        level = 1
        while level < _MAX_LEVEL and self._rng.random() < _P:
            level += 1
        return level

    def _find_predecessors(self, key: Any) -> List[_Node]:
        """Per-level predecessor nodes of ``key`` (metered traversal)."""
        update = [self._head] * _MAX_LEVEL
        node = self._head
        for level in range(self._level - 1, -1, -1):
            while (node.forward[level] is not None
                   and node.forward[level].key < key):
                self.meter.visit()
                self.meter.read()
                node = node.forward[level]
            update[level] = node
        return update

    # ------------------------------------------------------------------
    def _lookup(self, key: Any) -> Any:
        update = self._find_predecessors(key)
        candidate = update[0].forward[0]
        self.meter.visit()
        if candidate is not None and candidate.key == key:
            return candidate.value
        raise KeyNotFound(key)

    # ------------------------------------------------------------------
    def _insert(self, key: Any, value: Any) -> None:
        update = self._find_predecessors(key)
        candidate = update[0].forward[0]
        if candidate is not None and candidate.key == key:
            # Value-buffer replacement, as in the PMDK examples.
            self.meter.alloc()
            self.meter.free()
            self.meter.snapshot()
            self.meter.flush()
            candidate.value = value
            return
        level = self._random_level()
        if level > self._level:
            self._level = level
        node = _Node(key, value, level)
        self.meter.alloc()
        # One predecessor pointer per level is snapshotted and flushed.
        self.meter.snapshot(level)
        self.meter.flush(level)
        for i in range(level):
            node.forward[i] = update[i].forward[i]
            update[i].forward[i] = node
        self._count += 1

    # ------------------------------------------------------------------
    def _remove(self, key: Any) -> None:
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        if node is None or node.key != key:
            raise KeyNotFound(key)
        touched = len(node.forward)
        self.meter.snapshot(touched)
        self.meter.flush(touched)
        self.meter.free()
        for i in range(touched):
            if update[i].forward[i] is node:
                update[i].forward[i] = node.forward[i]
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        self._count -= 1

    # ------------------------------------------------------------------
    def items(self) -> Iterator[Tuple[Any, Any]]:
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]

    def __len__(self) -> int:
        return self._count

    def check_invariants(self) -> None:
        """Level-0 order is sorted; every level is a subsequence of it."""
        keys = [key for key, _value in self.items()]
        assert keys == sorted(keys), "level-0 walk is not sorted"
        assert len(keys) == self._count, "count drifted from contents"
        base = set(keys)
        for level in range(1, self._level):
            node = self._head.forward[level]
            previous = None
            while node is not None:
                assert node.key in base, "higher-level node missing at base"
                assert previous is None or node.key > previous, \
                    "higher level unsorted"
                previous = node.key
                node = node.forward[level]
