"""The five PMDK example stores, re-implemented with metered PM costs."""

from repro.workloads.pmdk.base import PersistentStructure
from repro.workloads.pmdk.btree import PMBTree
from repro.workloads.pmdk.ctree import PMCTree
from repro.workloads.pmdk.hashmap import PMHashmap
from repro.workloads.pmdk.pmobj import DEFAULT_PM_COSTS, PMCostProfile, PMMeter
from repro.workloads.pmdk.rbtree import PMRBTree
from repro.workloads.pmdk.skiplist import PMSkiplist

__all__ = [
    "PersistentStructure",
    "PMBTree", "PMCTree", "PMHashmap", "PMRBTree", "PMSkiplist",
    "PMCostProfile", "PMMeter", "DEFAULT_PM_COSTS",
]
