"""A persistent crit-bit tree (the PMDK ``ctree`` example analog).

PMDK's ctree is a crit-bit (binary radix) tree over the bits of the key:
internal nodes test a single bit position; leaves hold the key/value.
Keys are hashed to fixed-width integers first (as the PMDK example does
with its 64-bit keys).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple, Union

from repro.errors import KeyNotFound
from repro.workloads.pmdk.base import PersistentStructure

_BITS = 64
_MASK = (1 << _BITS) - 1


def _key_bits(key: Any) -> int:
    """The fixed-width integer the tree actually indexes on."""
    if isinstance(key, int) and 0 <= key <= _MASK:
        return key
    return hash(key) & _MASK


class _Leaf:
    __slots__ = ("bits", "key", "value")

    def __init__(self, bits: int, key: Any, value: Any) -> None:
        self.bits = bits
        self.key = key
        self.value = value


class _Inner:
    __slots__ = ("bit", "left", "right")

    def __init__(self, bit: int, left: "_NodeT", right: "_NodeT") -> None:
        self.bit = bit  # bit position tested (higher = more significant)
        self.left = left
        self.right = right


_NodeT = Union[_Leaf, _Inner]


class PMCTree(PersistentStructure):
    """Persistent crit-bit tree."""

    kind = "ctree"

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._root: Optional[_NodeT] = None
        self._count = 0

    # ------------------------------------------------------------------
    def _descend(self, bits: int) -> _Leaf:
        """Walk to the leaf that shares the longest prefix with ``bits``."""
        node = self._root
        assert node is not None
        while isinstance(node, _Inner):
            self.meter.visit()
            self.meter.read()
            node = node.right if (bits >> node.bit) & 1 else node.left
        return node

    def _lookup(self, key: Any) -> Any:
        if self._root is None:
            raise KeyNotFound(key)
        bits = _key_bits(key)
        leaf = self._descend(bits)
        self.meter.visit()
        if leaf.bits == bits and leaf.key == key:
            return leaf.value
        raise KeyNotFound(key)

    # ------------------------------------------------------------------
    def _insert(self, key: Any, value: Any) -> None:
        bits = _key_bits(key)
        if self._root is None:
            self.meter.alloc()
            self.meter.snapshot()
            self.meter.flush()
            self._root = _Leaf(bits, key, value)
            self._count += 1
            return
        nearest = self._descend(bits)
        if nearest.bits == bits and nearest.key == key:
            # Value-buffer replacement, as in the PMDK examples.
            self.meter.alloc()
            self.meter.free()
            self.meter.snapshot()
            self.meter.flush()
            nearest.value = value
            return
        diff = nearest.bits ^ bits
        crit_bit = diff.bit_length() - 1
        leaf = _Leaf(bits, key, value)
        self.meter.alloc(2)  # new leaf + new inner node
        self.meter.snapshot()  # the rewired parent pointer
        self.meter.flush(2)
        # Re-descend, stopping where the new inner node belongs (at the
        # first tested bit below crit_bit).
        parent: Optional[_Inner] = None
        node = self._root
        while isinstance(node, _Inner) and node.bit > crit_bit:
            self.meter.visit()
            parent = node
            node = node.right if (bits >> node.bit) & 1 else node.left
        if (bits >> crit_bit) & 1:
            inner = _Inner(crit_bit, node, leaf)
        else:
            inner = _Inner(crit_bit, leaf, node)
        if parent is None:
            self._root = inner
        elif (bits >> parent.bit) & 1:
            parent.right = inner
        else:
            parent.left = inner
        self._count += 1

    # ------------------------------------------------------------------
    def _remove(self, key: Any) -> None:
        if self._root is None:
            raise KeyNotFound(key)
        bits = _key_bits(key)
        grand: Optional[_Inner] = None
        parent: Optional[_Inner] = None
        node = self._root
        while isinstance(node, _Inner):
            self.meter.visit()
            grand = parent
            parent = node
            node = node.right if (bits >> node.bit) & 1 else node.left
        if node.bits != bits or node.key != key:
            raise KeyNotFound(key)
        self.meter.snapshot()
        self.meter.flush()
        self.meter.free()
        if parent is None:
            self._root = None
        else:
            sibling = parent.left if parent.right is node else parent.right
            self.meter.free()  # the collapsed inner node
            if grand is None:
                self._root = sibling
            elif grand.left is parent:
                grand.left = sibling
            else:
                grand.right = sibling
        self._count -= 1

    # ------------------------------------------------------------------
    def items(self) -> Iterator[Tuple[Any, Any]]:
        if self._root is None:
            return
        stack: list[_NodeT] = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Leaf):
                yield node.key, node.value
            else:
                stack.append(node.right)
                stack.append(node.left)

    def __len__(self) -> int:
        return self._count

    def check_invariants(self) -> None:
        """Bit discrimination must strictly decrease along every path."""
        count = self._check(self._root, _BITS)
        assert count == self._count, "count drifted from contents"

    def _check(self, node: Optional[_NodeT], max_bit: int) -> int:
        if node is None:
            return 0
        if isinstance(node, _Leaf):
            return 1
        assert node.bit < max_bit, "crit-bit order violated"
        left = self._check(node.left, node.bit)
        right = self._check(node.right, node.bit)
        assert left >= 1 and right >= 1, "inner node with empty side"
        return left + right
