"""A persistent red-black tree (the PMDK ``rbtree`` example analog).

A textbook red-black tree with sentinel NIL, recoloring and rotations on
insert, and full fixup on delete.  Rotations and recolorings touch more
nodes than B-tree splits, so updates meter more snapshots — which is why
the paper's rbtree workload is one of the slower handlers.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple

from repro.errors import KeyNotFound
from repro.workloads.pmdk.base import PersistentStructure

RED = True
BLACK = False


class _Node:
    __slots__ = ("key", "value", "color", "left", "right", "parent")

    def __init__(self, key: Any = None, value: Any = None,
                 color: bool = BLACK) -> None:
        self.key = key
        self.value = value
        self.color = color
        self.left: "_Node" = None  # type: ignore[assignment]
        self.right: "_Node" = None  # type: ignore[assignment]
        self.parent: "_Node" = None  # type: ignore[assignment]


class PMRBTree(PersistentStructure):
    """Persistent red-black tree."""

    kind = "rbtree"

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._nil = _Node(color=BLACK)
        self._nil.left = self._nil.right = self._nil.parent = self._nil
        self._root = self._nil
        self._count = 0

    # ------------------------------------------------------------------
    def _lookup(self, key: Any) -> Any:
        node = self._root
        while node is not self._nil:
            self.meter.visit()
            self.meter.read()
            if key == node.key:
                return node.value
            node = node.left if key < node.key else node.right
        raise KeyNotFound(key)

    # ------------------------------------------------------------------
    # Rotations (each snapshots the three touched nodes)
    # ------------------------------------------------------------------
    def _rotate_left(self, x: _Node) -> None:
        self.meter.snapshot(3)
        self.meter.flush(2)
        y = x.right
        x.right = y.left
        if y.left is not self._nil:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is self._nil:
            self._root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _rotate_right(self, x: _Node) -> None:
        self.meter.snapshot(3)
        self.meter.flush(2)
        y = x.left
        x.left = y.right
        if y.right is not self._nil:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is self._nil:
            self._root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def _insert(self, key: Any, value: Any) -> None:
        parent = self._nil
        node = self._root
        while node is not self._nil:
            self.meter.visit()
            parent = node
            if key == node.key:
                # Value-buffer replacement, as in the PMDK examples.
                self.meter.alloc()
                self.meter.free()
                self.meter.snapshot()
                self.meter.flush()
                node.value = value
                return
            node = node.left if key < node.key else node.right
        fresh = _Node(key, value, RED)
        fresh.left = fresh.right = self._nil
        fresh.parent = parent
        self.meter.alloc()
        self.meter.snapshot()
        self.meter.flush()
        if parent is self._nil:
            self._root = fresh
        elif key < parent.key:
            parent.left = fresh
        else:
            parent.right = fresh
        self._count += 1
        self._insert_fixup(fresh)

    def _insert_fixup(self, z: _Node) -> None:
        while z.parent.color is RED:
            grand = z.parent.parent
            if z.parent is grand.left:
                uncle = grand.right
                if uncle.color is RED:
                    self.meter.snapshot(3)
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    z = grand
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z)
                    z.parent.color = BLACK
                    grand.color = RED
                    self.meter.snapshot(2)
                    self._rotate_right(grand)
            else:
                uncle = grand.left
                if uncle.color is RED:
                    self.meter.snapshot(3)
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    z = grand
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z)
                    z.parent.color = BLACK
                    grand.color = RED
                    self.meter.snapshot(2)
                    self._rotate_left(grand)
        if self._root.color is RED:
            self.meter.snapshot()
            self._root.color = BLACK

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------
    def _remove(self, key: Any) -> None:
        z = self._root
        while z is not self._nil and z.key != key:
            self.meter.visit()
            z = z.left if key < z.key else z.right
        if z is self._nil:
            raise KeyNotFound(key)
        self.meter.snapshot()
        self.meter.free()
        y = z
        y_color = y.color
        if z.left is self._nil:
            x = z.right
            self._transplant(z, z.right)
        elif z.right is self._nil:
            x = z.left
            self._transplant(z, z.left)
        else:
            y = self._minimum(z.right)
            y_color = y.color
            x = y.right
            if y.parent is z:
                x.parent = y
            else:
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
            self.meter.snapshot(2)
        self._count -= 1
        if y_color is BLACK:
            self._delete_fixup(x)

    def _transplant(self, u: _Node, v: _Node) -> None:
        self.meter.snapshot()
        self.meter.flush()
        if u.parent is self._nil:
            self._root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        v.parent = u.parent

    def _minimum(self, node: _Node) -> _Node:
        while node.left is not self._nil:
            self.meter.visit()
            node = node.left
        return node

    def _delete_fixup(self, x: _Node) -> None:
        while x is not self._root and x.color is BLACK:
            if x is x.parent.left:
                w = x.parent.right
                if w.color is RED:
                    self.meter.snapshot(2)
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_left(x.parent)
                    w = x.parent.right
                if w.left.color is BLACK and w.right.color is BLACK:
                    self.meter.snapshot()
                    w.color = RED
                    x = x.parent
                else:
                    if w.right.color is BLACK:
                        self.meter.snapshot(2)
                        w.left.color = BLACK
                        w.color = RED
                        self._rotate_right(w)
                        w = x.parent.right
                    self.meter.snapshot(3)
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.right.color = BLACK
                    self._rotate_left(x.parent)
                    x = self._root
            else:
                w = x.parent.left
                if w.color is RED:
                    self.meter.snapshot(2)
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_right(x.parent)
                    w = x.parent.left
                if w.right.color is BLACK and w.left.color is BLACK:
                    self.meter.snapshot()
                    w.color = RED
                    x = x.parent
                else:
                    if w.left.color is BLACK:
                        self.meter.snapshot(2)
                        w.right.color = BLACK
                        w.color = RED
                        self._rotate_left(w)
                        w = x.parent.left
                    self.meter.snapshot(3)
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.left.color = BLACK
                    self._rotate_right(x.parent)
                    x = self._root
        if x.color is RED:
            self.meter.snapshot()
        x.color = BLACK

    # ------------------------------------------------------------------
    def items(self) -> Iterator[Tuple[Any, Any]]:
        stack = []
        node = self._root
        while stack or node is not self._nil:
            while node is not self._nil:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def __len__(self) -> int:
        return self._count

    # -- structural invariants --------------------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError on red-black violations."""
        assert self._root.color is BLACK, "root must be black"
        self._check_node(self._root, None, None)
        keys = [key for key, _value in self.items()]
        assert keys == sorted(keys), "in-order walk is not sorted"
        assert len(keys) == self._count, "count drifted from contents"

    def _check_node(self, node: _Node, low: Optional[Any],
                    high: Optional[Any]) -> int:
        if node is self._nil:
            return 1
        assert low is None or node.key > low, "BST order violated"
        assert high is None or node.key < high, "BST order violated"
        if node.color is RED:
            assert node.left.color is BLACK and node.right.color is BLACK, \
                "red node with red child"
        left_black = self._check_node(node.left, low, node.key)
        right_black = self._check_node(node.right, node.key, high)
        assert left_black == right_black, "black-height mismatch"
        return left_black + (1 if node.color is BLACK else 0)
