"""Workload traces: record, save, load, and replay operation streams.

Comparing two systems fairly requires byte-identical request streams.
A :class:`WorkloadTrace` captures each client's operation sequence once
(generated from any op maker) and replays it against any deployment —
and serializes to JSON so traces can be versioned alongside experiment
results.

    trace = WorkloadTrace.capture(make_op_maker(cfg), clients=8,
                                  requests_per_client=200, seed=1)
    base  = run_closed_loop(baseline, trace.op_maker(), 200)
    pmnet = run_closed_loop(pmnet_deployment, trace.op_maker(), 200)
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Tuple

from repro.errors import WorkloadError
from repro.workloads.kv import OpKind, Operation


@dataclass(frozen=True)
class TracedOp:
    """One recorded operation (JSON-serializable)."""

    kind: str
    payload_bytes: int
    key: Any = None
    value: Any = None
    proc: str = ""
    args: Dict[str, Any] = field(default_factory=dict)

    def to_operation(self) -> Operation:
        return Operation(OpKind(self.kind), key=_thaw(self.key),
                         value=self.value, proc=self.proc,
                         args=dict(self.args))

    @staticmethod
    def from_operation(op: Operation, payload_bytes: int) -> "TracedOp":
        return TracedOp(kind=op.kind.value, payload_bytes=payload_bytes,
                        key=_freeze(op.key), value=op.value, proc=op.proc,
                        args=dict(op.args))


def _freeze(key: Any) -> Any:
    """JSON-encode tuple keys losslessly."""
    if isinstance(key, tuple):
        return {"__tuple__": list(key)}
    return key


def _thaw(key: Any) -> Any:
    if isinstance(key, dict) and "__tuple__" in key:
        return tuple(key["__tuple__"])
    if isinstance(key, list):
        # JSON has no tuples; keys must be hashable, so a list here can
        # only be a tuple that went through serialization unfrozen.
        return tuple(key)
    return key


@dataclass
class WorkloadTrace:
    """Per-client operation sequences plus provenance metadata."""

    per_client: List[List[TracedOp]]
    seed: int = 0
    description: str = ""

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, op_maker: Callable, clients: int,
                requests_per_client: int, seed: int = 0,
                description: str = "") -> "WorkloadTrace":
        """Materialize an op maker into a fixed trace."""
        if clients <= 0 or requests_per_client <= 0:
            raise WorkloadError("trace needs positive clients and requests")
        per_client: List[List[TracedOp]] = []
        for client_index in range(clients):
            rng = random.Random(f"{seed}/trace/{client_index}")
            ops = []
            for request_index in range(requests_per_client):
                op, size = op_maker(client_index, request_index, rng)
                ops.append(TracedOp.from_operation(op, size))
            per_client.append(ops)
        return cls(per_client=per_client, seed=seed,
                   description=description)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def op_maker(self) -> Callable:
        """An op maker replaying this trace verbatim.

        Requests beyond the recorded length wrap around (so warmup
        prefixes do not run off the end).
        """
        def maker(client_index: int, request_index: int,
                  _rng) -> Tuple[Operation, int]:
            if client_index >= len(self.per_client):
                raise WorkloadError(
                    f"trace has {len(self.per_client)} clients, "
                    f"deployment asked for client {client_index}")
            ops = self.per_client[client_index]
            traced = ops[request_index % len(ops)]
            return traced.to_operation(), traced.payload_bytes
        return maker

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def clients(self) -> int:
        return len(self.per_client)

    @property
    def total_requests(self) -> int:
        return sum(len(ops) for ops in self.per_client)

    def update_fraction(self) -> float:
        updates = sum(1 for ops in self.per_client for op in ops
                      if OpKind(op.kind) in
                      (OpKind.SET, OpKind.DELETE, OpKind.PROC_UPDATE))
        return updates / self.total_requests if self.total_requests else 0.0

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        payload = {
            "seed": self.seed,
            "description": self.description,
            "per_client": [[asdict(op) for op in ops]
                           for ops in self.per_client],
        }
        return json.dumps(payload, default=_json_fallback)

    @classmethod
    def from_json(cls, text: str) -> "WorkloadTrace":
        try:
            payload = json.loads(text)
            per_client = [[TracedOp(**op) for op in ops]
                          for ops in payload["per_client"]]
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            raise WorkloadError(f"malformed trace JSON: {error}") from error
        return cls(per_client=per_client, seed=payload.get("seed", 0),
                   description=payload.get("description", ""))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "WorkloadTrace":
        with open(path, encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def _json_fallback(value: Any) -> Any:
    if isinstance(value, bytes):
        return value.decode("latin1")
    raise TypeError(f"not JSON-serializable: {type(value).__name__}")
