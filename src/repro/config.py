"""System configuration and latency calibration (the Table II analog).

Every latency constant used anywhere in the simulator lives here, so a
single edit retunes the whole system.  The default values are fitted to
the stage latencies the paper publishes:

* PMNet round trip for a 100 B update ....... 21.5 us   (Fig 18)
* client-side logging ....................... 10.4 us   (Fig 18)
* server-side logging ....................... 47.97 us  (Fig 18)
* baseline Client-Server, ideal handler ..... ~2.7x PMNet at 100 B (Fig 15)
* FPGA on-board PM write latency ............ 273 ns    (Sec V-A)
* server DCPMM write latency ................ ~100 ns   (Eq 2)
* link rate ................................. 10 Gbps   (Sec V-A)
* log queue (PM access buffering) ........... 4 KB      (Sec V-A)

The profiles are plain frozen dataclasses: deployments copy-and-modify
them with :func:`dataclasses.replace` rather than mutating shared state.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigurationError
from repro.sim.clock import microseconds, nanoseconds


#: ``PMNET_FOLD`` spellings accepted per fold level.
_FOLD_LEVELS = {"none": 0, "off": 0, "0": 0,
                "stage": 1, "1": 1,
                "whole": 2, "2": 2}


def fold_level() -> int:
    """The active folding level (0, 1, or 2).

    * **0** — every stage is its own scheduled event (``PMNET_NO_FOLD=1``
      or ``PMNET_FOLD=none``).
    * **1** — stage folding: unimpaired channels and the PMNet MAT
      pipeline fold consecutive deterministic delays into single
      scheduled events (``PMNET_FOLD=stage``).
    * **2** — whole-request folding (the default): on top of stage
      folding, uncontended request legs extend across component
      boundaries — channel arrival chains run straight into the device
      pipeline or the client's receive stack, elided timeout timers,
      and inline completion dispatch (``PMNET_FOLD=whole``).

    Every level produces byte-identical results (same virtual times,
    same RNG draws, same tie-breaks); only the executed-event count
    changes.  ``tests/integration/test_fold_identity`` holds that claim
    to account.  Read at component construction time: toggling the
    variables affects deployments built afterwards, not ones already
    wired.
    """
    if os.environ.get("PMNET_NO_FOLD", "0") not in ("", "0"):
        return 0
    name = os.environ.get("PMNET_FOLD", "whole").strip().lower()
    try:
        return _FOLD_LEVELS[name]
    except KeyError:
        raise ConfigurationError(
            f"PMNET_FOLD must be one of {sorted(set(_FOLD_LEVELS))}, "
            f"got {name!r}") from None


def folding_enabled() -> bool:
    """Whether the stage-level latency-folded fast paths are active."""
    return fold_level() >= 1


def whole_request_folding_enabled() -> bool:
    """Whether the cross-component whole-request folds are active."""
    return fold_level() >= 2


#: ``PMNET_KERNEL`` spellings accepted per scheduler backend.
_KERNEL_BACKENDS = ("heap", "tiered", "compiled")


def kernel_backend() -> str:
    """The active event-scheduler backend (``heap`` or ``tiered``).

    * ``heap`` — the single binary heap of ``(time, seq, call)`` tuples
      (the pre-tiered scheduler, kept as the reference implementation).
    * ``tiered`` (the default) — the tiered scheduler: a FIFO "now lane"
      for same-instant events, a calendar of per-nanosecond buckets for
      timers within the near horizon, and the binary heap as the far
      tier.  Executes byte-identically to ``heap`` (same ``(time, seq)``
      total order, same ``executed_events``); only wall-clock changes.
    * ``compiled`` — hook point for a compiled (mypyc/Cython) backend:
      resolves to ``repro.sim.compiled`` when that module is available
      and falls back to ``tiered`` with a warning otherwise, so the
      knob is always safe to set.

    Read at :class:`~repro.sim.kernel.Simulator` construction time:
    toggling the variable affects simulators built afterwards, not ones
    already running.  ``tests/sim/test_scheduler_equivalence.py`` and
    the CI backend-identity job hold the identical-execution claim to
    account.
    """
    name = os.environ.get("PMNET_KERNEL", "tiered").strip().lower()
    if name not in _KERNEL_BACKENDS:
        raise ConfigurationError(
            f"PMNET_KERNEL must be one of {sorted(_KERNEL_BACKENDS)}, "
            f"got {name!r}")
    return name


#: Near-horizon width of the tiered scheduler's calendar, in ns.  Sized
#: to the deployment's short deterministic delays — link propagation
#: (100 ns), MTU serialization at 10 Gbps (~1.2 us), pipeline stages
#: (150-250 ns), client think time (600 ns) all land inside it — while
#: retransmission timeouts (1 ms), redo scrubbing (1.5 ms), and chaos
#: fault windows fall through to the far tier.
DEFAULT_KERNEL_HORIZON_NS = 4096


def kernel_horizon_ns() -> int:
    """Calendar width of the tiered backend (``PMNET_KERNEL_HORIZON``).

    Must be positive; values are rounded up by the queue to keep bucket
    arithmetic exact.  Purely a performance knob: any horizon executes
    the same event order.
    """
    raw = os.environ.get("PMNET_KERNEL_HORIZON", "").strip()
    if not raw:
        return DEFAULT_KERNEL_HORIZON_NS
    try:
        horizon = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"PMNET_KERNEL_HORIZON must be an integer, got {raw!r}") from None
    if horizon <= 0:
        raise ConfigurationError(
            f"PMNET_KERNEL_HORIZON must be positive, got {horizon}")
    return horizon

# ---------------------------------------------------------------------------
# Host network stacks
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StackProfile:
    """Latency model of one host's network stack (one direction each).

    ``send_ns``/``recv_ns`` are the fixed per-packet costs of pushing a
    packet down / up the stack (syscalls, softirq, protocol work).
    ``copy_ns_per_byte`` charges the payload memcpy at each crossing.
    ``dispatch_ns`` models the wakeup from stack to application thread
    (epoll + scheduler) and is paid once per request on the receive side
    of an application-level endpoint; busy-polling user stacks keep it
    tiny.  ``hiccup_probability``/``hiccup_ns`` add the rare long
    scheduler stall responsible for the latency tail.
    """

    name: str
    send_ns: int
    recv_ns: int
    copy_ns_per_byte: float
    dispatch_ns: int
    jitter_sigma: float = 0.10
    hiccup_probability: float = 0.0
    hiccup_ns: int = 0

    def validate(self) -> None:
        if min(self.send_ns, self.recv_ns, self.dispatch_ns) < 0:
            raise ConfigurationError(f"negative stack latency in {self.name}")
        if not 0.0 <= self.hiccup_probability <= 1.0:
            raise ConfigurationError(
                f"hiccup probability out of range in {self.name}")


#: Kernel UDP/TCP stack on a client machine (Haswell, Table II).
KERNEL_CLIENT_STACK = StackProfile(
    name="kernel-client",
    send_ns=microseconds(9.6),
    recv_ns=microseconds(9.2),
    copy_ns_per_byte=2.0,
    dispatch_ns=microseconds(0.8),
    jitter_sigma=0.10,
    hiccup_probability=0.002,
    hiccup_ns=microseconds(60),
)

#: Kernel UDP/TCP stack on the server machine (Cascade Lake, Table II).
KERNEL_SERVER_STACK = StackProfile(
    name="kernel-server",
    send_ns=microseconds(11.0),
    recv_ns=microseconds(13.0),
    copy_ns_per_byte=2.0,
    dispatch_ns=microseconds(8.0),
    jitter_sigma=0.14,
    hiccup_probability=0.008,
    hiccup_ns=microseconds(150),
)

#: libVMA user-space stack (client side): kernel bypass, busy polling.
VMA_CLIENT_STACK = StackProfile(
    name="vma-client",
    send_ns=microseconds(1.9),
    recv_ns=microseconds(1.8),
    copy_ns_per_byte=0.8,
    dispatch_ns=nanoseconds(200),
    jitter_sigma=0.05,
    hiccup_probability=0.0005,
    hiccup_ns=microseconds(20),
)

#: libVMA user-space stack (server side).  VMA removes the kernel and
#: the epoll wakeup, but the server still demultiplexes every flow and
#: copies into the application, so its per-packet cost shrinks ~2.5x
#: rather than 5x (Sec VI-B7: "the server-processing time is still a
#: major overhead").
VMA_SERVER_STACK = StackProfile(
    name="vma-server",
    send_ns=microseconds(4.8),
    recv_ns=microseconds(5.6),
    copy_ns_per_byte=1.0,
    dispatch_ns=microseconds(1.6),
    jitter_sigma=0.06,
    hiccup_probability=0.001,
    hiccup_ns=microseconds(25),
)

#: Extra fixed cost per request when a workload keeps its original TCP
#: framing (Redis/Twitter/TPCC baselines): connection state, ACK clocking,
#: and stream reassembly on both sides.  The paper reports that converting
#: these workloads to UDP costs ~9%, i.e. TCP is their best baseline.
TCP_EXTRA_PER_SIDE_NS = microseconds(3.2)

#: Slowdown factor the paper measured for TCP-to-UDP conversion (Sec VI-A3);
#: used by the ablation bench.
TCP_TO_UDP_CONVERSION_OVERHEAD = 0.09


# ---------------------------------------------------------------------------
# Links, switches, and the network fabric
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NetworkProfile:
    """Fabric parameters shared by all links and plain switches."""

    bandwidth_bps: float = 10e9              # 10 Gbps ports (Sec V-A)
    propagation_ns: int = nanoseconds(100)   # intra-rack fiber + PHY
    switch_forward_ns: int = nanoseconds(300)  # cut-through regular switch
    mtu_bytes: int = 1500                    # Sec IV-A3
    header_overhead_bytes: int = 46          # Ethernet+IP+UDP framing
    queue_capacity_packets: int = 512        # per output port

    def validate(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if self.mtu_bytes <= self.header_overhead_bytes:
            raise ConfigurationError("MTU must exceed framing overhead")


# ---------------------------------------------------------------------------
# Persistent memory (both in-network and server-side)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PMProfile:
    """A persistent-memory device's timing and capacity."""

    name: str
    write_latency_ns: int
    read_latency_ns: int
    bandwidth_bytes_per_s: float
    capacity_bytes: int

    def validate(self) -> None:
        if min(self.write_latency_ns, self.read_latency_ns) < 0:
            raise ConfigurationError(f"negative PM latency in {self.name}")
        if self.capacity_bytes <= 0:
            raise ConfigurationError(f"non-positive PM capacity in {self.name}")


#: The FPGA's battery-backed on-board DRAM used as in-network PM (Sec V-A:
#: 273 ns write via the slow DMA engine, 2.5 GB/s, 2 GB).
FPGA_PM = PMProfile(
    name="fpga-bbdram",
    write_latency_ns=273,
    read_latency_ns=150,
    bandwidth_bytes_per_s=2.5e9,
    capacity_bytes=2 * 1024 ** 3,
)

#: Server-side Intel DCPMM (Eq 2 uses ~100 ns; reads are ~300 ns media).
SERVER_PM = PMProfile(
    name="server-dcpmm",
    write_latency_ns=100,
    read_latency_ns=300,
    bandwidth_bytes_per_s=2.5e9,
    capacity_bytes=256 * 1024 ** 3,
)


@dataclass(frozen=True)
class LogConfig:
    """Sizing of the in-network request log and its access queues."""

    entry_bytes: int = 2048          # one MTU-sized packet + metadata slot
    num_entries: int = 65536         # ~BDP_Net worth of in-flight requests
    write_queue_bytes: int = 4096    # Sec V-A: 4 KB SRAM log queues
    read_queue_bytes: int = 4096
    #: Age after which a still-valid (never server-ACKed) entry is
    #: redone to the server.  This closes the tail-loss window: the
    #: client already holds a PMNet-ACK, so only the device can get the
    #: request to the server again (the log *is* the redo log).
    redo_timeout_ns: int = 1_500_000  # 1.5 ms >> any RTT
    #: Maximum entries redone per scrub pass (paces the replay).
    redo_batch: int = 32

    def validate(self) -> None:
        if self.entry_bytes <= 0 or self.num_entries <= 0:
            raise ConfigurationError("log entries must be positive-sized")
        if self.write_queue_bytes <= 0 or self.read_queue_bytes <= 0:
            raise ConfigurationError("log queues must be positive-sized")

    @property
    def capacity_bytes(self) -> int:
        return self.entry_bytes * self.num_entries


# ---------------------------------------------------------------------------
# The PMNet device pipeline
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PipelineProfile:
    """Per-stage costs of the match-action pipeline in the PMNet device."""

    ingress_ns: int = nanoseconds(250)    # parse + port/type match
    pm_stage_ns: int = nanoseconds(150)   # log-queue enqueue bookkeeping
    egress_ns: int = nanoseconds(250)     # rewrite + forward
    ack_generation_ns: int = nanoseconds(180)
    per_byte_ns: float = 3.0              # payload staging through the device

    def validate(self) -> None:
        if min(self.ingress_ns, self.pm_stage_ns, self.egress_ns,
               self.ack_generation_ns) < 0:
            raise ConfigurationError("negative pipeline stage cost")


# ---------------------------------------------------------------------------
# Server application behaviour
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ServerProfile:
    """Server application parameters (Table II: 20-core Cascade Lake)."""

    worker_cores: int = 20
    #: Processing cost of the *ideal request handler* of Sec VI-B1 — it
    #: acknowledges on reception without real work (socket round trip into
    #: user space plus response construction).
    ideal_handler_ns: int = microseconds(2.4)

    def validate(self) -> None:
        if self.worker_cores <= 0:
            raise ConfigurationError("server needs at least one worker core")


# ---------------------------------------------------------------------------
# Client behaviour
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClientProfile:
    """Client library parameters."""

    #: Per-request client application overhead (request generation,
    #: serialization in the driver) — closed-loop clients pay this between
    #: requests.
    think_time_ns: int = microseconds(0.6)
    #: Retransmission timeout for unacknowledged requests.
    timeout_ns: int = microseconds(1000)
    #: IPC cost (one way) between the application and a co-located logging
    #: process; used by the client-side logging alternative (Fig 17a).
    local_ipc_ns: int = microseconds(4.9)
    #: Local persistent-log write in the client-side logging alternative.
    local_log_write_ns: int = nanoseconds(300)

    def validate(self) -> None:
        if self.timeout_ns <= 0:
            raise ConfigurationError("client timeout must be positive")


# ---------------------------------------------------------------------------
# Aggregate system configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SystemConfig:
    """Everything a deployment builder needs to instantiate a system."""

    seed: int = 1
    network: NetworkProfile = field(default_factory=NetworkProfile)
    client_stack: StackProfile = KERNEL_CLIENT_STACK
    server_stack: StackProfile = KERNEL_SERVER_STACK
    network_pm: PMProfile = FPGA_PM
    server_pm: PMProfile = SERVER_PM
    log: LogConfig = field(default_factory=LogConfig)
    pipeline: PipelineProfile = field(default_factory=PipelineProfile)
    server: ServerProfile = field(default_factory=ServerProfile)
    client: ClientProfile = field(default_factory=ClientProfile)
    #: Default request payload size (Sec VI-A2: 100 B unless stated).
    payload_bytes: int = 100
    #: Clients in the full testbed (4 machines x 16 instances, Sec VI-A1).
    num_clients: int = 64

    def validate(self) -> None:
        """Check cross-field consistency; raise ConfigurationError if bad."""
        self.network.validate()
        self.client_stack.validate()
        self.server_stack.validate()
        self.network_pm.validate()
        self.server_pm.validate()
        self.log.validate()
        self.pipeline.validate()
        self.server.validate()
        self.client.validate()
        if self.payload_bytes <= 0:
            raise ConfigurationError("payload must be positive-sized")
        if self.num_clients <= 0:
            raise ConfigurationError("need at least one client")
        if self.log.capacity_bytes > self.network_pm.capacity_bytes:
            raise ConfigurationError(
                "log region larger than the device PM capacity")

    # Convenience constructors -------------------------------------------

    def with_vma(self) -> "SystemConfig":
        """The same system with libVMA user-space stacks on both sides."""
        return replace(self, client_stack=VMA_CLIENT_STACK,
                       server_stack=VMA_SERVER_STACK)

    def with_seed(self, seed: int) -> "SystemConfig":
        return replace(self, seed=seed)

    def with_payload(self, payload_bytes: int) -> "SystemConfig":
        return replace(self, payload_bytes=payload_bytes)

    def with_clients(self, num_clients: int) -> "SystemConfig":
        return replace(self, num_clients=num_clients)

    def quick_scale(self) -> "SystemConfig":
        """A calibrated small-scale variant for tests and quick runs.

        Shrinks only the *load* (client count) — never the latency
        constants — so every per-request number and every qualitative
        shape claim survives unchanged while integration fixtures run
        in seconds instead of minutes.  ``Scale.pick`` in
        :mod:`repro.experiments.common` derives its quick sizes from
        the same constant, and ``REPRO_FULL=1`` restores testbed scale
        there.
        """
        return replace(self, num_clients=QUICK_SCALE_CLIENTS)


#: Client count of the quick (test) profile.  8 clients is the smallest
#: load that still exercises multi-client queueing at the device and the
#: server worker pool (20 cores never saturate, exactly as at low load
#: on the testbed).
QUICK_SCALE_CLIENTS = 8

DEFAULT_CONFIG = SystemConfig()


def baseline_rtt_estimate(config: SystemConfig,
                          payload_bytes: Optional[int] = None,
                          handler_ns: Optional[int] = None) -> int:
    """Back-of-envelope RTT of the baseline Client-Server system.

    This is the analytic composition of the stage model (no queueing, no
    jitter); tests use it to sanity-check the simulator against the
    calibration, and the BDP module uses it for sizing.
    """
    payload = payload_bytes if payload_bytes is not None else config.payload_bytes
    handler = handler_ns if handler_ns is not None else config.server.ideal_handler_ns
    wire = config.network.propagation_ns
    serialization = _wire_time(config, payload)
    ack_serialization = _wire_time(config, 16)
    copy = round(payload * config.client_stack.copy_ns_per_byte)
    server_copy = round(payload * config.server_stack.copy_ns_per_byte)
    request_path = (config.client_stack.send_ns + copy
                    + wire + serialization
                    + config.network.switch_forward_ns
                    + wire + serialization
                    + config.server_stack.recv_ns + server_copy
                    + config.server_stack.dispatch_ns)
    response_path = (handler
                     + config.server_stack.send_ns
                     + wire + ack_serialization
                     + config.network.switch_forward_ns
                     + wire + ack_serialization
                     + config.client_stack.recv_ns
                     + config.client_stack.dispatch_ns)
    return request_path + response_path


def pmnet_rtt_estimate(config: SystemConfig,
                       payload_bytes: Optional[int] = None) -> int:
    """Analytic RTT of an update acknowledged by a PMNet ToR switch."""
    payload = payload_bytes if payload_bytes is not None else config.payload_bytes
    wire = config.network.propagation_ns
    serialization = _wire_time(config, payload)
    ack_serialization = _wire_time(config, 16)
    copy = round(payload * config.client_stack.copy_ns_per_byte)
    device = (config.pipeline.ingress_ns + config.pipeline.pm_stage_ns
              + config.pipeline.egress_ns + config.pipeline.ack_generation_ns
              + round(payload * config.pipeline.per_byte_ns)
              + config.network_pm.write_latency_ns
              + _pm_bandwidth_time(config, payload))
    return (config.client_stack.send_ns + copy
            + wire + serialization
            + device
            + wire + ack_serialization
            + config.client_stack.recv_ns
            + config.client_stack.dispatch_ns)


def _wire_time(config: SystemConfig, payload_bytes: int) -> int:
    from repro.sim.clock import transmission_delay
    frame = payload_bytes + config.network.header_overhead_bytes
    return transmission_delay(frame, config.network.bandwidth_bps)


def _pm_bandwidth_time(config: SystemConfig, payload_bytes: int) -> int:
    return round(payload_bytes / config.network_pm.bandwidth_bytes_per_s
                 * 1e9)
