"""Exporters: the ``pmnet-repro-metrics/1`` JSON schema, Prometheus
text format, and the shared ``pmnet-repro-bench/1`` report envelope.

The JSON payload is the machine-readable face of one instrumented run:
every registered instrument's unified summary plus the span-derived
lifecycle breakdown.  :func:`validate_metrics` checks a payload against
the schema *and* its arithmetic invariant (per group, stage sums equal
the end-to-end total) — CI's metrics-export smoke job runs it on a
fresh ``pmnet-repro metrics`` emission.

The Prometheus exporter is deliberately plain text-format output
(counters and gauges as single samples, histograms as summaries with
exact quantiles); :func:`parse_prometheus` parses it back so tests can
round-trip JSON ↔ Prometheus values.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import asdict, is_dataclass
from typing import Dict, Iterable, List, Optional, Tuple

#: Schema tag on every metrics JSON payload.
METRICS_SCHEMA = "pmnet-repro-metrics/1"

#: Schema tag on every benchmark report envelope.
BENCH_SCHEMA = "pmnet-repro-bench/1"

_INSTRUMENT_KINDS = ("counter", "gauge", "histogram", "meter", "timeseries")

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
_PROM_LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>[-+0-9.eE]+|NaN)$")


def config_digest(config: object) -> str:
    """A short stable digest of a configuration dataclass.

    Identifies which calibration constants produced a report, so two
    reports are comparable only when their digests match.
    """
    payload = asdict(config) if is_dataclass(config) else config
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# pmnet-repro-metrics/1
# ----------------------------------------------------------------------
def metrics_payload(summaries: List[dict], span_report: dict,
                    **meta: object) -> dict:
    """Assemble one ``pmnet-repro-metrics/1`` payload."""
    payload = {
        "schema": METRICS_SCHEMA,
        "instruments": summaries,
        "spans": span_report,
    }
    payload.update(meta)
    return payload


def validate_metrics(payload: dict) -> List[str]:
    """Validate a metrics payload; returns a list of problems (empty =
    valid).  Checks the schema shape and the telescoping invariant."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    if payload.get("schema") != METRICS_SCHEMA:
        problems.append(
            f"schema is {payload.get('schema')!r}, expected {METRICS_SCHEMA!r}")
    instruments = payload.get("instruments")
    if not isinstance(instruments, list):
        problems.append("instruments is not a list")
        instruments = []
    seen: set = set()
    for index, summary in enumerate(instruments):
        if not isinstance(summary, dict):
            problems.append(f"instruments[{index}] is not an object")
            continue
        name = summary.get("name")
        kind = summary.get("kind")
        if not name or not isinstance(name, str):
            problems.append(f"instruments[{index}] has no name")
        elif name in seen:
            problems.append(f"duplicate instrument name {name!r}")
        else:
            seen.add(name)
        if kind not in _INSTRUMENT_KINDS:
            problems.append(
                f"instruments[{index}] ({name!r}) has unknown kind {kind!r}")
    spans = payload.get("spans")
    if not isinstance(spans, dict):
        problems.append("spans is not an object")
        return problems
    for field in ("count", "dropped", "groups"):
        if field not in spans:
            problems.append(f"spans.{field} is missing")
    for gi, group in enumerate(spans.get("groups") or []):
        stages = group.get("stages", [])
        stage_sum = sum(stage.get("total_ns", 0) for stage in stages)
        end_to_end = group.get("end_to_end", {}).get("total_ns")
        if end_to_end is None:
            problems.append(f"spans.groups[{gi}] has no end_to_end total")
        elif stage_sum != end_to_end:
            problems.append(
                f"spans.groups[{gi}]: stage sum {stage_sum} != "
                f"end-to-end total {end_to_end}")
        if len(stages) != max(0, len(group.get("signature", [])) - 1):
            problems.append(
                f"spans.groups[{gi}]: {len(stages)} stages do not match "
                f"signature of {len(group.get('signature', []))} milestones")
    return problems


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------
def _prom_name(name: str, prefix: str) -> str:
    return f"{prefix}_{_PROM_NAME_RE.sub('_', name)}"


def to_prometheus(summaries: Iterable[dict], prefix: str = "pmnet") -> str:
    """Render unified instrument summaries as Prometheus text format."""
    lines: List[str] = []
    for summary in summaries:
        name = _prom_name(summary["name"], prefix)
        kind = summary["kind"]
        if kind == "counter":
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {summary['value']}")
        elif kind == "gauge":
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {summary['value']}")
            lines.append(f"# TYPE {name}_highwater gauge")
            lines.append(f"{name}_highwater {summary['highwater']}")
        elif kind == "histogram":
            # Exact quantiles -> Prometheus summary type.
            lines.append(f"# TYPE {name} summary")
            count = summary["count"]
            if count:
                lines.append(f'{name}{{quantile="0.5"}} {summary["p50"]}')
                lines.append(f'{name}{{quantile="0.99"}} {summary["p99"]}')
                lines.append(f"{name}_sum {summary['mean'] * count}")
            else:
                lines.append(f"{name}_sum 0")
            lines.append(f"{name}_count {count}")
        elif kind == "meter":
            lines.append(f"# TYPE {name}_count counter")
            lines.append(f"{name}_count {summary['count']}")
            ops = summary.get("ops_per_second")
            if ops is not None:
                lines.append(f"# TYPE {name}_ops_per_second gauge")
                lines.append(f"{name}_ops_per_second {ops}")
    return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus(text: str) -> Dict[Tuple[str, str], float]:
    """Parse text-format samples back into ``{(name, labels): value}``.

    ``labels`` is the raw label string (``''`` when absent).  Enough of
    a parser for the export round-trip tests and smoke validation; not
    a general Prometheus client.
    """
    samples: Dict[Tuple[str, str], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _PROM_LINE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable Prometheus sample line: {line!r}")
        key = (match.group("name"), match.group("labels") or "")
        samples[key] = float(match.group("value"))
    return samples


# ----------------------------------------------------------------------
# pmnet-repro-bench/1: the shared benchmark report envelope
# ----------------------------------------------------------------------
def bench_envelope(bench_id: str, payload: dict, quick: bool = True,
                   config: Optional[object] = None) -> dict:
    """Wrap one benchmark result in the common report envelope.

    All ``bench-*`` subcommands and ``profile`` emit this shape instead
    of their historical ad-hoc top-level dicts; the benchmark-specific
    result lives unchanged under ``payload``.
    """
    if config is None:
        from repro.config import SystemConfig
        config = SystemConfig()
    return {
        "schema": BENCH_SCHEMA,
        "id": bench_id,
        "config_digest": config_digest(config),
        "quick": quick,
        "payload": payload,
    }


def validate_bench_report(report: dict) -> List[str]:
    """Validate a benchmark report envelope; returns problems (empty =
    valid)."""
    problems: List[str] = []
    if not isinstance(report, dict):
        return ["report is not an object"]
    if report.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema is {report.get('schema')!r}, expected {BENCH_SCHEMA!r}")
    if not report.get("id"):
        problems.append("id is missing")
    if not isinstance(report.get("config_digest"), str):
        problems.append("config_digest is missing")
    if not isinstance(report.get("quick"), bool):
        problems.append("quick is not a bool")
    if not isinstance(report.get("payload"), dict):
        problems.append("payload is not an object")
    return problems


def write_bench_report(bench_id: str, payload: dict, path: str,
                       quick: bool = True,
                       config: Optional[object] = None) -> str:
    """Write one enveloped benchmark report as JSON; returns the path."""
    report = bench_envelope(bench_id, payload, quick=quick, config=config)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
