"""The metrics registry: explicit instrument registration.

Components used to be *scanned* for instruments (the reflection walk in
:func:`repro.sim.monitor.component_summary`); now each instrumented
component declares what it measures through an ``instruments()``
protocol method and registers into one :class:`MetricsRegistry` per
deployment when observability is attached.  The registry owns nothing
but references — instruments stay live on their components, so the hot
paths keep their direct ``counter.increment()`` calls and the registry
adds zero per-event cost.

Registration is explicit and name-checked: two instruments with the
same name in one registry is a wiring bug and raises
:class:`DuplicateInstrumentError` immediately instead of silently
shadowing a metric in the export.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Protocol

from repro.sim.monitor import Counter, Gauge, LatencyRecorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class Histogram(LatencyRecorder):
    """A stage-latency histogram: a :class:`LatencyRecorder` registered
    as a first-class instrument.

    Sample-exact (no bucketing): the simulations are small enough that
    exact percentiles beat sketch accuracy, and the Prometheus exporter
    renders it as a summary (quantiles + ``_sum`` + ``_count``).
    """

    kind = "histogram"


class Instrument(Protocol):
    """What the registry requires: a name, a kind, and a summary."""

    name: str
    kind: str

    def summary(self) -> dict:  # pragma: no cover - protocol
        ...


class Instrumented(Protocol):
    """A component exposing its instruments explicitly."""

    def instruments(self) -> Iterable[Instrument]:  # pragma: no cover
        ...


class DuplicateInstrumentError(ValueError):
    """Two instruments tried to register under the same name."""


class MetricsRegistry:
    """All instruments of one deployment, keyed by unique name."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    # ------------------------------------------------------------------
    def register(self, instrument: Instrument) -> Instrument:
        """Register one instrument; its name must be unique and non-empty."""
        name = instrument.name
        if not name:
            raise ValueError("cannot register an unnamed instrument")
        existing = self._instruments.get(name)
        if existing is not None:
            if existing is instrument:
                return instrument  # re-registration of the same object is a no-op
            raise DuplicateInstrumentError(
                f"instrument name {name!r} is already registered "
                f"({existing!r} vs {instrument!r})")
        self._instruments[name] = instrument
        return instrument

    def register_component(self, component: Instrumented) -> None:
        """Register everything a component declares via ``instruments()``."""
        for instrument in component.instruments():
            self.register(instrument)

    # ------------------------------------------------------------------
    # Factories: create-and-register in one call.
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        counter = Counter(name)
        self.register(counter)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = Gauge(name)
        self.register(gauge)
        return gauge

    def histogram(self, name: str) -> Histogram:
        histogram = Histogram(name)
        self.register(histogram)
        return histogram

    # ------------------------------------------------------------------
    def get(self, name: str) -> Instrument:
        return self._instruments[name]

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def instruments(self) -> List[Instrument]:
        return [self._instruments[name] for name in self.names()]

    def summaries(self) -> List[dict]:
        """Every instrument's unified ``{"name", "kind", ...}`` summary,
        sorted by name (a deterministic export order)."""
        return [instrument.summary() for instrument in self.instruments()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetricsRegistry instruments={len(self)}>"


def register_with_sim(sim: "Simulator", component: Instrumented) -> None:
    """Register a component's instruments if the simulator carries an
    :class:`~repro.obs.context.Observability` with a registry.

    This is the one hook instrumented components call from their
    constructors; with no observability attached (the default) it is a
    single attribute check and the component pays nothing.
    """
    obs = getattr(sim, "obs", None)
    if obs is not None and obs.registry is not None:
        obs.registry.register_component(component)
