"""Unified observability: metrics registry, lifecycle spans, exporters.

See ``docs/observability.md`` for the full API tour.  The package
replaces three disjoint mechanisms — reflection-scanned counters
(:func:`repro.sim.monitor.component_summary`), the mutable
``GLOBAL_TRACER`` module global, and ad-hoc benchmark JSON shapes —
with one explicit, injected surface:

* :class:`MetricsRegistry` — components register typed instruments
  (``Counter``, ``Gauge``, :class:`Histogram`) via the
  ``instruments()`` protocol.
* :class:`SpanRecorder` — request-lifecycle and recovery-replay spans,
  recorded fold-compatibly and result-neutrally.
* Exporters — ``pmnet-repro-metrics/1`` JSON, Prometheus text format,
  and the shared ``pmnet-repro-bench/1`` benchmark envelope.
"""

from repro.obs.context import Observability
from repro.obs.export import (
    BENCH_SCHEMA,
    METRICS_SCHEMA,
    bench_envelope,
    config_digest,
    metrics_payload,
    parse_prometheus,
    to_prometheus,
    validate_bench_report,
    validate_metrics,
    write_bench_report,
)
from repro.obs.registry import (
    DuplicateInstrumentError,
    Histogram,
    MetricsRegistry,
    register_with_sim,
)
from repro.obs.spans import (
    Span,
    SpanRecorder,
    lifecycle_groups,
    spans_for,
    stage_deltas,
)

__all__ = [
    "Observability",
    "MetricsRegistry", "Histogram", "DuplicateInstrumentError",
    "register_with_sim",
    "Span", "SpanRecorder", "spans_for", "lifecycle_groups", "stage_deltas",
    "METRICS_SCHEMA", "BENCH_SCHEMA",
    "metrics_payload", "validate_metrics",
    "to_prometheus", "parse_prometheus",
    "bench_envelope", "validate_bench_report", "write_bench_report",
    "config_digest",
]
