"""Request-lifecycle spans: per-request stage timestamps.

A :class:`SpanRecorder` collects, per request, the ordered list of
``(stage, time_ns)`` milestones the request passed on its way through
the system — client send, switch forward, PMNet log write, PMNet-ACK,
server handler, server-ACK, log invalidate, completion — plus recovery
replay spans.  The design constraints (both load-bearing):

* **Result-neutral.**  Recording never schedules events, draws
  randomness, or touches component state: it appends a tuple to a list.
  A run with spans on is byte-identical to the same run with spans off,
  and the PR 3 folded packet path is unaffected because every hook
  sits on a callback that executes — at the same virtual instant — in
  both the folded and unfolded timelines (arrival handlers and
  end-of-chain callbacks, never the intermediate hops folding elides).
* **Zero-cost-when-off.**  Components resolve the recorder once at
  construction (``spans_for(sim)``); with observability absent or spans
  disabled they hold ``None`` and the hot paths pay one ``is not None``
  check.

Stage timestamps of one request telescope: the sum of consecutive stage
deltas between ``client_send`` and ``completed`` equals the end-to-end
latency *exactly* (integer nanoseconds, no estimation) — which is what
lets ``pmnet-repro metrics`` reproduce Fig 2's breakdown from spans and
cross-check it against the driver's measured latencies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

# Canonical stage names.  Request-path milestones:
CLIENT_SEND = "client_send"
SWITCH_FORWARD = "switch_forward"      # request-direction switch hop
SWITCH_RETURN = "switch_return"        # ACK/response-direction switch hop
LOG_WRITE = "log_write"                # PMNet PM-access stage ran
PMNET_ACK = "pmnet_ack"                # log write durable, early ACK made
SERVER_HANDLER = "server_handler"      # server applied the operation
SERVER_ACK = "server_ack"              # server-ACK (invalidates logs en route)
SERVER_RESPONSE = "server_response"    # read/bypass response sent
LOG_INVALIDATE = "log_invalidate"      # device dropped the log entry
CLIENT_COMPLETE = "client_complete"    # client library saw persistence
COMPLETED = "completed"                # application woke up (dispatch cost)

# Recovery replay milestones:
REPLAY_START = "replay_start"
REPLAY_RESEND = "replay_resend"
REPLAY_DONE = "replay_done"

#: Span kinds.
REQUEST = "request"
RECOVERY = "recovery"


class Span:
    """One request's (or replay's) ordered milestone list."""

    __slots__ = ("key", "kind", "events")

    def __init__(self, key: Hashable, kind: str = REQUEST) -> None:
        self.key = key
        self.kind = kind
        #: ``(stage, time_ns)`` in recording order.  The simulator clock
        #: is monotonic, so this is also chronological order.
        self.events: List[Tuple[str, int]] = []

    @property
    def start_ns(self) -> Optional[int]:
        return self.events[0][1] if self.events else None

    @property
    def end_ns(self) -> Optional[int]:
        return self.events[-1][1] if self.events else None

    def stages(self) -> List[str]:
        return [stage for stage, _time in self.events]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Span {self.key!r} {self.kind} events={len(self.events)}>"


class SpanRecorder:
    """Collects :class:`Span` milestones when enabled.

    ``capacity`` bounds the number of *spans* retained; milestones for
    already-open spans are always recorded so every retained span stays
    complete (a truncated span would silently corrupt the breakdown).
    Refused span openings count in :attr:`dropped`.
    """

    def __init__(self, enabled: bool = True,
                 capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self.dropped = 0
        self._spans: Dict[Hashable, Span] = {}

    def record(self, key: Hashable, stage: str, time_ns: int,
               kind: str = REQUEST) -> None:
        """Append one milestone (no-op when disabled)."""
        if not self.enabled:
            return
        span = self._spans.get(key)
        if span is None:
            if self.capacity is not None and len(self._spans) >= self.capacity:
                self.dropped += 1
                return
            span = Span(key, kind)
            self._spans[key] = span
        span.events.append((stage, time_ns))

    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> Optional[Span]:
        return self._spans.get(key)

    def spans(self, kind: Optional[str] = None) -> List[Span]:
        if kind is None:
            return list(self._spans.values())
        return [span for span in self._spans.values() if span.kind == kind]

    def __len__(self) -> int:
        return len(self._spans)

    def clear(self) -> None:
        self._spans.clear()
        self.dropped = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return (f"<SpanRecorder {state} spans={len(self._spans)} "
                f"dropped={self.dropped}>")


def spans_for(sim: "Simulator") -> Optional[SpanRecorder]:
    """The simulator's span recorder, or ``None`` when recording is off.

    Components call this once at construction and keep the result; a
    ``None`` means the per-event hook is a single falsy check.
    """
    obs = getattr(sim, "obs", None)
    if obs is None:
        return None
    spans = obs.spans
    if spans is None or not spans.enabled:
        return None
    return spans


def lifecycle_groups(recorder: SpanRecorder,
                     start_stage: str = CLIENT_SEND,
                     end_stage: str = COMPLETED) -> Tuple[List[dict], int]:
    """Aggregate request spans into per-signature stage breakdowns.

    Each complete span is cut to the window from its first
    ``start_stage`` to the first ``end_stage`` after it; spans sharing
    the same stage signature (the tuple of stage names in that window)
    aggregate together.  Within one group, ``sum(stage total_ns) ==
    end_to_end total_ns`` holds exactly by telescoping — the exporters
    validate it and the metrics CLI refuses to emit a breakdown that
    violates it.

    Note that under early acknowledgement (PMNet-ACK) the server-side
    milestones can land *inside* the client's completion window; they
    then appear as stages of the signature.  The decomposition stays an
    exact partition of the end-to-end latency — the deltas are simply
    time-to-next-milestone, whichever path the milestone belongs to.

    Returns ``(groups, incomplete)`` where ``incomplete`` counts request
    spans without a full window (e.g. still in flight at run end).
    """
    buckets: Dict[Tuple[str, ...], dict] = {}
    incomplete = 0
    for span in recorder.spans(kind=REQUEST):
        events = span.events
        start = next((i for i, (stage, _t) in enumerate(events)
                      if stage == start_stage), None)
        if start is None:
            incomplete += 1
            continue
        end = next((i for i, (stage, _t) in enumerate(events)
                    if stage == end_stage and i > start), None)
        if end is None:
            incomplete += 1
            continue
        window = events[start:end + 1]
        signature = tuple(stage for stage, _t in window)
        bucket = buckets.get(signature)
        if bucket is None:
            bucket = {"signature": signature, "requests": 0,
                      "stage_totals": [0] * (len(signature) - 1),
                      "end_to_end_total": 0}
            buckets[signature] = bucket
        bucket["requests"] += 1
        totals = bucket["stage_totals"]
        for i in range(len(window) - 1):
            totals[i] += window[i + 1][1] - window[i][1]
        bucket["end_to_end_total"] += window[-1][1] - window[0][1]

    groups = []
    for signature in sorted(buckets, key=lambda s: (-buckets[s]["requests"], s)):
        bucket = buckets[signature]
        n = bucket["requests"]
        stages = [{"from": signature[i], "to": signature[i + 1],
                   "total_ns": total, "mean_ns": total / n}
                  for i, total in enumerate(bucket["stage_totals"])]
        groups.append({
            "signature": list(signature),
            "requests": n,
            "stages": stages,
            "end_to_end": {"total_ns": bucket["end_to_end_total"],
                           "mean_ns": bucket["end_to_end_total"] / n},
        })
    return groups, incomplete


def stage_deltas(recorder: SpanRecorder,
                 start_stage: str = CLIENT_SEND,
                 end_stage: str = COMPLETED) -> Dict[Tuple[str, str], List[int]]:
    """Raw per-request deltas per ``(from, to)`` transition, merged over
    all signature groups — feeds the per-stage :class:`Histogram`s."""
    deltas: Dict[Tuple[str, str], List[int]] = {}
    for span in recorder.spans(kind=REQUEST):
        events = span.events
        start = next((i for i, (stage, _t) in enumerate(events)
                      if stage == start_stage), None)
        if start is None:
            continue
        end = next((i for i, (stage, _t) in enumerate(events)
                    if stage == end_stage and i > start), None)
        if end is None:
            continue
        for i in range(start, end):
            key = (events[i][0], events[i + 1][0])
            deltas.setdefault(key, []).append(events[i + 1][1] - events[i][1])
    return deltas
