"""The observability bundle injected into a :class:`Simulator`.

One :class:`Observability` object carries the three mechanisms that
used to be disjoint — the metrics registry, the span recorder, and the
tracer — so a deployment builder attaches all of them with one
argument::

    obs = Observability(spans=True)
    deployment = build(DeploymentSpec(placement="switch"), config,
                       obs=obs)
    ...
    obs.registry.summaries()     # every component's instruments
    obs.spans.spans()            # request lifecycle spans

With no bundle attached (the default everywhere), components register
nothing and record nothing: observability is strictly opt-in and the
simulated results are byte-identical either way.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanRecorder
from repro.sim.trace import Tracer


class Observability:
    """Registry + spans + tracer, attached to one simulation."""

    def __init__(self, spans: bool = True, trace: bool = False,
                 span_capacity: Optional[int] = None,
                 trace_capacity: Optional[int] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.spans = SpanRecorder(enabled=spans, capacity=span_capacity)
        self.tracer = Tracer(enabled=trace, capacity=trace_capacity)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Observability instruments={len(self.registry)} "
                f"spans={len(self.spans)} trace="
                f"{'on' if self.tracer.enabled else 'off'}>")
