"""Exception hierarchy for the PMNet reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to discriminate the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """Misuse of the discrete-event kernel (e.g. scheduling in the past)."""


class ProcessError(SimulationError):
    """A simulated process failed or was used after termination."""


class NetworkError(ReproError):
    """Base class for network-substrate errors."""


class AddressError(NetworkError):
    """Unknown or malformed network address."""

    def __init__(self, address: object) -> None:
        super().__init__(f"unknown or malformed address: {address!r}")
        self.address = address


class RoutingError(NetworkError):
    """No route exists between two nodes of the topology."""


class LinkDown(NetworkError):
    """A packet was offered to a link whose endpoint device has failed."""


class ProtocolError(ReproError):
    """Malformed PMNet packet, header, or protocol state violation."""


class HeaderError(ProtocolError):
    """A PMNet header failed to parse or validate."""


class FragmentationError(ProtocolError):
    """Reassembly of an MTU-fragmented request failed."""


class SessionError(ProtocolError):
    """Invalid use of a PMNet session (e.g. send after close)."""


class PMError(ReproError):
    """Base class for persistent-memory substrate errors."""


class LogFull(PMError):
    """The in-network log region has no free entry for a new request."""


class LogCollision(PMError):
    """The HashVal of a new request collides with an occupied entry."""


class CrashedDeviceError(PMError):
    """An operation was attempted on a crashed (failed) device."""


class WorkloadError(ReproError):
    """A workload handler received a malformed or inapplicable request."""


class KeyNotFound(WorkloadError):
    """A read/delete addressed a key that is not in the store."""

    def __init__(self, key: object) -> None:
        super().__init__(f"key not found: {key!r}")
        self.key = key


class TransactionAborted(WorkloadError):
    """A TPC-C transaction aborted (e.g. lock conflict)."""


class ConfigurationError(ReproError):
    """Inconsistent or out-of-range experiment configuration."""


class ExperimentError(ReproError):
    """An experiment harness failed to produce a result."""
