"""Statistical helpers for experiment post-processing."""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


def mean(samples: Sequence[float]) -> float:
    if not samples:
        raise ValueError("mean of empty sample set")
    return sum(samples) / len(samples)


def percentile(samples: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile (matches LatencyRecorder.percentile)."""
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    ordered = sorted(samples)
    if pct == 0.0:
        return ordered[0]
    rank = math.ceil(pct / 100.0 * len(ordered))
    return ordered[rank - 1]


def stddev(samples: Sequence[float]) -> float:
    if len(samples) < 2:
        raise ValueError("stddev needs at least two samples")
    mu = mean(samples)
    return math.sqrt(sum((x - mu) ** 2 for x in samples) / (len(samples) - 1))


def geometric_mean(values: Sequence[float]) -> float:
    """Geomean — the right average for speedup ratios."""
    if not values:
        raise ValueError("geomean of empty sample set")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup(baseline: float, improved: float) -> float:
    """How many times faster ``improved`` is (>1 means faster)."""
    if improved <= 0:
        raise ValueError("improved metric must be positive")
    return baseline / improved


def cdf_points(samples: Sequence[float],
               points: int = 100) -> List[Tuple[float, float]]:
    """Empirical CDF downsampled to ``points`` quantiles."""
    if not samples:
        return []
    ordered = sorted(samples)
    n = len(ordered)
    out = []
    for i in range(points):
        frac = (i + 1) / points
        idx = min(n - 1, math.ceil(frac * n) - 1)
        out.append((ordered[idx], frac))
    return out


def crossover_fraction(curve_a: Sequence[Tuple[float, float]],
                       curve_b: Sequence[Tuple[float, float]],
                       tolerance: float = 0.05) -> float:
    """The CDF fraction where two latency curves converge.

    Used to locate Fig 20b's "knee": the percentile beyond which PMNet-
    without-cache latency approaches the baseline.  Returns 1.0 if the
    curves never converge within tolerance.
    """
    for (value_a, frac), (value_b, _frac_b) in zip(curve_a, curve_b):
        if value_b <= 0:
            continue
        if abs(value_a - value_b) / value_b <= tolerance:
            return frac
    return 1.0
