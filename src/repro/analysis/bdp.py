"""Bandwidth-delay-product sizing (Sec V-A, Equations 1 and 2).

Reproduces the paper's two sizing arguments:

* Eq 1 — the in-network PM only needs to hold the requests in flight
  during one (conservative) RTT: ``BDP_Net = RTT x BW ~= 5 Mbit`` at
  10 Gbps with a 500 us ceiling.
* Eq 2 — the SRAM log queue decouples the slower PM from line rate and
  needs only ``PMLatency x BW ~= 1 kbit`` (4 KB is comfortably enough).

Sec VII extends both to 100 Gbps; :func:`scaling_table` regenerates that
discussion's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class BDPResult:
    """One sizing computation."""

    bandwidth_bps: float
    delay_s: float
    bits: float

    @property
    def bytes(self) -> float:
        return self.bits / 8


def network_bdp(rtt_s: float = 500e-6, bandwidth_bps: float = 10e9
                ) -> BDPResult:
    """Eq 1: PM capacity needed for all in-flight update requests."""
    if rtt_s <= 0 or bandwidth_bps <= 0:
        raise ValueError("RTT and bandwidth must be positive")
    return BDPResult(bandwidth_bps, rtt_s, rtt_s * bandwidth_bps)


def pm_queue_bdp(pm_latency_s: float = 100e-9, bandwidth_bps: float = 10e9
                 ) -> BDPResult:
    """Eq 2: SRAM log-queue size that hides the PM access latency."""
    if pm_latency_s <= 0 or bandwidth_bps <= 0:
        raise ValueError("latency and bandwidth must be positive")
    return BDPResult(bandwidth_bps, pm_latency_s, pm_latency_s * bandwidth_bps)


def scaling_table(bandwidths_gbps: List[float] = None) -> List[dict]:
    """The Sec VII scaling discussion as rows of sizing numbers."""
    if bandwidths_gbps is None:
        bandwidths_gbps = [10.0, 25.0, 40.0, 100.0]
    rows = []
    for gbps in bandwidths_gbps:
        bw = gbps * 1e9
        net = network_bdp(bandwidth_bps=bw)
        queue = pm_queue_bdp(bandwidth_bps=bw)
        rows.append({
            "bandwidth_gbps": gbps,
            "pm_capacity_mbit": net.bits / 1e6,
            "pm_capacity_mbytes": net.bytes / 1e6,
            "log_queue_kbit": queue.bits / 1e3,
            "log_queue_bytes": queue.bytes,
        })
    return rows
