"""Plain-text rendering of experiment results (tables and series).

The benchmark harness prints its figures/tables through these helpers so
every experiment's output has the same, diffable shape.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, points: Sequence[Tuple[Any, Any]],
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render an (x, y) series the way a figure's data appendix would."""
    lines = [f"{name}  ({x_label} -> {y_label})"]
    for x, y in points:
        lines.append(f"  {_fmt(x):>12}  {_fmt(y)}")
    return "\n".join(lines)


def format_cdf(name: str, curve: Sequence[Tuple[float, float]],
               unit: str = "us", picks: Sequence[float] = (0.5, 0.9, 0.99)
               ) -> str:
    """Summarize a CDF curve at the interesting percentiles."""
    lines = [f"{name} CDF"]
    for pick in picks:
        value = _value_at(curve, pick)
        lines.append(f"  p{int(pick * 100):<3d} {value:10.2f} {unit}")
    return "\n".join(lines)


def _value_at(curve: Sequence[Tuple[float, float]], fraction: float) -> float:
    for value, frac in curve:
        if frac >= fraction:
            return value
    return curve[-1][0] if curve else float("nan")


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    return str(value)


def dict_rows(dicts: List[Dict[str, Any]],
              keys: Sequence[str]) -> List[List[Any]]:
    """Project a list of dicts onto ordered rows (for format_table)."""
    return [[d.get(key) for key in keys] for d in dicts]
