"""A PMTest-style persistence-ordering checker for PMNet traces.

The paper's related-work section points at PM testing frameworks
(PMTest, Agamotto, Jaaru) and suggests adapting them "to validate not
only the ordering in one application but also the persist ordering
among clients and servers" — and leaves it as future work.  This module
is that adaptation: it consumes a :class:`~repro.sim.trace.Tracer` from
an instrumented run and checks the end-to-end persistence rules that
make in-network data persistence sound:

* **R1 ack-after-persist** — a device may emit a PMNet-ACK only after
  it logged the same request durably.
* **R2 no-lost-ack** — every client-completed update is eventually
  processed by the server (requires the run to have quiesced).
* **R3 invalidate-after-commit** — a device invalidates a log entry
  only after the server committed (server-ACKed) that request.
* **R4 exactly-once** — the server processes each update (session,
  seq) at most once, replay or not.
* **R5 session-order** — the server processes each session's updates
  in strictly increasing SeqNum order.
* **R6 completion-honesty** — a client completion "via pmnet" implies
  at least one device logged the request.

Usage::

    tracer = Tracer(enabled=True)
    deployment = build(DeploymentSpec(placement="switch"), config,
                       tracer=tracer)
    ...run...
    violations = PersistenceChecker(tracer).check()
    assert not violations
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.sim.trace import TraceRecord, Tracer


@dataclass(frozen=True)
class Violation:
    """One broken persistence rule."""

    rule: str
    description: str
    record: Optional[TraceRecord] = None

    def __str__(self) -> str:
        where = f" at {self.record}" if self.record else ""
        return f"[{self.rule}] {self.description}{where}"


class PersistenceChecker:
    """Validates the R1-R6 rules over one run's trace."""

    def __init__(self, tracer: Tracer,
                 expect_quiesced: bool = True) -> None:
        self.tracer = tracer
        #: When False, R2 is skipped (the run was cut short, so
        #: unprocessed-but-logged updates are legitimate).
        self.expect_quiesced = expect_quiesced

    # ------------------------------------------------------------------
    def check(self) -> List[Violation]:
        """Run every rule; returns all violations (empty = clean)."""
        violations: List[Violation] = []
        violations.extend(self._check_ack_after_persist())
        if self.expect_quiesced:
            violations.extend(self._check_no_lost_ack())
        violations.extend(self._check_invalidate_after_commit())
        violations.extend(self._check_exactly_once())
        violations.extend(self._check_session_order())
        violations.extend(self._check_completion_honesty())
        return violations

    # -- R1 ---------------------------------------------------------------
    def _check_ack_after_persist(self) -> List[Violation]:
        violations = []
        logged_by_device: Dict[Tuple[str, int], int] = {}
        for record in self.tracer.records:
            key = (record.component, record.details.get("req"))
            if record.event == "update_logged":
                logged_by_device.setdefault(key, record.time_ns)
            elif record.event == "pmnet_ack":
                logged_at = logged_by_device.get(key)
                if logged_at is None or logged_at > record.time_ns:
                    violations.append(Violation(
                        "R1", f"device {record.component} ACKed request "
                        f"{key[1]} it never durably logged", record))
        return violations

    # -- R2 ---------------------------------------------------------------
    def _check_no_lost_ack(self) -> List[Violation]:
        violations = []
        processed: Set[int] = {
            record.details.get("req")
            for record in self.tracer.filter(event="processed")}
        for record in self.tracer.filter(event="completed"):
            if not record.details.get("update"):
                continue
            if not record.details.get("ok", True):
                continue
            req = record.details.get("req")
            if req not in processed:
                violations.append(Violation(
                    "R2", f"client-completed update {req} was never "
                    "processed by the server", record))
        return violations

    # -- R3 ---------------------------------------------------------------
    def _check_invalidate_after_commit(self) -> List[Violation]:
        violations = []
        committed_at: Dict[int, int] = {}
        for record in self.tracer.records:
            req = record.details.get("req")
            if record.event == "server_ack":
                committed_at.setdefault(req, record.time_ns)
            elif record.event == "log_invalidated":
                commit_time = committed_at.get(req)
                if commit_time is None or commit_time > record.time_ns:
                    violations.append(Violation(
                        "R3", f"device {record.component} invalidated "
                        f"request {req} before any server commit", record))
        return violations

    # -- R4 ---------------------------------------------------------------
    def _check_exactly_once(self) -> List[Violation]:
        violations = []
        seen: Set[Tuple[int, int]] = set()
        for record in self.tracer.filter(event="processed"):
            if not record.details.get("update"):
                continue
            key = (record.details.get("session"), record.details.get("seq"))
            if key in seen:
                violations.append(Violation(
                    "R4", f"update (session={key[0]}, seq={key[1]}) "
                    "processed twice", record))
            seen.add(key)
        return violations

    # -- R5 ---------------------------------------------------------------
    def _check_session_order(self) -> List[Violation]:
        violations = []
        last_seq: Dict[int, int] = {}
        for record in self.tracer.filter(event="processed"):
            if not record.details.get("update"):
                continue
            session = record.details.get("session")
            seq = record.details.get("seq")
            previous = last_seq.get(session, -1)
            if seq <= previous:
                violations.append(Violation(
                    "R5", f"session {session} processed seq {seq} after "
                    f"seq {previous}", record))
            last_seq[session] = max(previous, seq)
        return violations

    # -- R6 ---------------------------------------------------------------
    def _check_completion_honesty(self) -> List[Violation]:
        violations = []
        logged_reqs: Set[int] = {
            record.details.get("req")
            for record in self.tracer.filter(event="update_logged")}
        for record in self.tracer.filter(event="completed"):
            if record.details.get("via") != "pmnet":
                continue
            req = record.details.get("req")
            if req not in logged_reqs:
                violations.append(Violation(
                    "R6", f"client completed request {req} via PMNet but "
                    "no device ever logged it", record))
        return violations

    # ------------------------------------------------------------------
    def report(self) -> str:
        """Human-readable verdict."""
        violations = self.check()
        if not violations:
            events = len(self.tracer.records)
            return (f"persistence check clean: {events} trace events, "
                    "rules R1-R6 hold")
        lines = [f"persistence check FAILED: {len(violations)} violation(s)"]
        lines.extend(str(violation) for violation in violations)
        return "\n".join(lines)
