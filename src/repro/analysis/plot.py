"""ASCII plotting: render figure data in a terminal.

The benchmark harness prints numeric rows; for eyeballing shapes (the
Fig 16 latency spike, the Fig 20 CDF knee) a quick terminal plot beats
a table.  No plotting dependency needed offline.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: Glyphs assigned to series in order.
_MARKS = "ox+*#@%&"


def ascii_plot(series: Dict[str, Sequence[Tuple[float, float]]],
               width: int = 64, height: int = 16,
               x_label: str = "x", y_label: str = "y",
               title: str = "") -> str:
    """Scatter-plot named (x, y) series on a character grid.

    >>> print(ascii_plot({"a": [(0, 0), (1, 1)]}, width=8, height=4))
    ... # doctest: +SKIP
    """
    points = [(x, y) for curve in series.values() for x, y in curve]
    if not points:
        raise ValueError("nothing to plot")
    xs = [x for x, _y in points]
    ys = [y for _x, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (name, curve) in enumerate(series.items()):
        mark = _MARKS[index % len(_MARKS)]
        for x, y in curve:
            column = round((x - x_min) / x_span * (width - 1))
            row = height - 1 - round((y - y_min) / y_span * (height - 1))
            grid[row][column] = mark
    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_max:g}"
    bottom_label = f"{y_min:g}"
    margin = max(len(top_label), len(bottom_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(margin)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * margin + "+" + "-" * width)
    lines.append(" " * (margin + 1)
                 + f"{x_min:g}".ljust(width - 8)
                 + f"{x_max:g}".rjust(8))
    lines.append(" " * (margin + 1) + f"{x_label} vs {y_label}")
    legend = "  ".join(f"{_MARKS[i % len(_MARKS)]}={name}"
                       for i, name in enumerate(series))
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines)


def ascii_cdf(curves: Dict[str, Sequence[Tuple[float, float]]],
              width: int = 64, height: int = 16,
              unit: str = "us", title: str = "") -> str:
    """Plot latency CDFs: x = latency, y = cumulative fraction."""
    return ascii_plot(curves, width=width, height=height,
                      x_label=f"latency ({unit})", y_label="fraction",
                      title=title)


def ascii_bars(values: Dict[str, float], width: int = 48,
               title: str = "", unit: str = "") -> str:
    """Horizontal bar chart (for speedup comparisons)."""
    if not values:
        raise ValueError("nothing to plot")
    peak = max(values.values())
    if peak <= 0:
        raise ValueError("bar values must include a positive maximum")
    label_width = max(len(name) for name in values)
    lines = [title] if title else []
    for name, value in values.items():
        bar = "#" * max(1, round(value / peak * width))
        lines.append(f"{name.ljust(label_width)} |{bar} {value:g}{unit}")
    return "\n".join(lines)
