"""Latency breakdown of an update request (Fig 2).

Decomposes the baseline round trip into the paper's four stages —
client network stack, network, server network stack (kernel), and
server request processing (user space) — from the same stage constants
the simulator charges, plus a measured cross-check that the composition
matches what the simulation actually produces end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import SystemConfig, baseline_rtt_estimate
from repro.sim.clock import transmission_delay


@dataclass(frozen=True)
class Breakdown:
    """Stage-by-stage composition of one round trip (nanoseconds)."""

    client_stack_ns: int
    network_ns: int
    server_stack_ns: int
    server_processing_ns: int

    @property
    def total_ns(self) -> int:
        return (self.client_stack_ns + self.network_ns
                + self.server_stack_ns + self.server_processing_ns)

    def fractions(self) -> Dict[str, float]:
        total = self.total_ns
        return {
            "client_stack": self.client_stack_ns / total,
            "network": self.network_ns / total,
            "server_stack": self.server_stack_ns / total,
            "server_processing": self.server_processing_ns / total,
        }

    @property
    def server_side_fraction(self) -> float:
        """The paper's headline: server stack + processing share (~70 %)."""
        return (self.server_stack_ns
                + self.server_processing_ns) / self.total_ns


def update_request_breakdown(config: SystemConfig,
                             handler_ns: Optional[int] = None,
                             payload_bytes: Optional[int] = None
                             ) -> Breakdown:
    """Compose the baseline RTT from its stages (Fig 2)."""
    payload = payload_bytes if payload_bytes is not None \
        else config.payload_bytes
    handler = handler_ns if handler_ns is not None \
        else config.server.ideal_handler_ns
    copy_out = round(payload * config.client_stack.copy_ns_per_byte)
    copy_in = round(payload * config.server_stack.copy_ns_per_byte)
    client_stack = (config.client_stack.send_ns + copy_out
                    + config.client_stack.recv_ns
                    + config.client_stack.dispatch_ns)
    wire = config.network.propagation_ns
    request_serialization = transmission_delay(
        payload + config.network.header_overhead_bytes,
        config.network.bandwidth_bps)
    ack_serialization = transmission_delay(
        16 + config.network.header_overhead_bytes,
        config.network.bandwidth_bps)
    network = (2 * config.network.switch_forward_ns + 4 * wire
               + 2 * request_serialization + 2 * ack_serialization)
    server_stack = (config.server_stack.recv_ns + copy_in
                    + config.server_stack.dispatch_ns
                    + config.server_stack.send_ns)
    breakdown = Breakdown(
        client_stack_ns=client_stack,
        network_ns=network,
        server_stack_ns=server_stack,
        server_processing_ns=handler,
    )
    # The composition must equal the analytic RTT estimate exactly:
    # both are derived from the same constants, so any drift is a bug.
    estimate = baseline_rtt_estimate(config, payload, handler)
    if abs(breakdown.total_ns - estimate) > 2:
        raise AssertionError(
            f"breakdown {breakdown.total_ns} != estimate {estimate}")
    return breakdown
