"""Analysis: statistics, the Fig 2 breakdown, BDP sizing, reporting."""

from repro.analysis.bdp import BDPResult, network_bdp, pm_queue_bdp, scaling_table
from repro.analysis.breakdown import Breakdown, update_request_breakdown
from repro.analysis.persistcheck import PersistenceChecker, Violation
from repro.analysis.report import (
    dict_rows,
    format_cdf,
    format_series,
    format_table,
)
from repro.analysis.stats import (
    cdf_points,
    crossover_fraction,
    geometric_mean,
    mean,
    percentile,
    speedup,
    stddev,
)

__all__ = [
    "network_bdp", "pm_queue_bdp", "scaling_table", "BDPResult",
    "Breakdown", "update_request_breakdown",
    "PersistenceChecker", "Violation",
    "format_table", "format_series", "format_cdf", "dict_rows",
    "mean", "percentile", "stddev", "geometric_mean", "speedup",
    "cdf_points", "crossover_fraction",
]
