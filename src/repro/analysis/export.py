"""Export experiment results to JSON/CSV for external plotting.

The experiment result objects each know how to ``format()`` themselves
for a terminal; this module gives them a data path out — stable JSON
documents (with provenance) and flat CSV series — so figures can be
re-plotted in a notebook without re-running the simulation.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, is_dataclass
from typing import Any, Dict, List, Sequence

from repro import __version__


def result_to_dict(result: Any) -> Dict[str, Any]:
    """A JSON-compatible dict of any experiment result object."""
    if is_dataclass(result) and not isinstance(result, type):
        body = asdict(result)
    elif hasattr(result, "__dict__"):
        body = dict(result.__dict__)
    else:
        raise TypeError(f"cannot export {type(result).__name__}")
    return _jsonable(body)


def export_json(result: Any, experiment_id: str = "",
                indent: int = 2) -> str:
    """Serialize a result with provenance metadata."""
    document = {
        "experiment": experiment_id,
        "repro_version": __version__,
        "result": result_to_dict(result),
    }
    return json.dumps(document, indent=indent, sort_keys=True)


def export_csv(rows: Sequence[Sequence[Any]],
               headers: Sequence[str]) -> str:
    """Flat CSV for one table of an experiment."""
    if rows and any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must match the header width")
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    writer.writerows(rows)
    return buffer.getvalue()


def series_to_csv(series: Dict[str, Sequence[tuple]],
                  x_label: str = "x", y_label: str = "y") -> str:
    """Long-format CSV of named (x, y) series (one row per point)."""
    rows: List[List[Any]] = []
    for name, curve in series.items():
        for x, y in curve:
            rows.append([name, x, y])
    return export_csv(rows, ["series", x_label, y_label])


def _jsonable(value: Any) -> Any:
    """Recursively coerce to JSON-compatible types.

    Non-string dict keys become strings (tuples render as
    ``"a|b"``); objects with a ``summary()`` (latency recorders) export
    their summaries; anything else falls back to ``repr``.
    """
    if isinstance(value, dict):
        return {_key(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "summary"):
        try:
            return _jsonable(value.summary())
        except ValueError:
            return None  # empty recorder
    if is_dataclass(value) and not isinstance(value, type):
        return _jsonable(asdict(value))
    return repr(value)


def _key(key: Any) -> str:
    if isinstance(key, str):
        return key
    if isinstance(key, tuple):
        return "|".join(str(part) for part in key)
    return str(key)
