"""Figure 19: application throughput, normalized to Client-Server.

Eight workloads (five PMDK stores, PM-Redis, Twitter, TPC-C) are driven
closed-loop at update ratios 100/75/50/25 %; each point reports PMNet
throughput divided by the Client-Server baseline's.  Paper claims:
~4.31x average at 100 % updates, shrinking as the read share grows
(PMNet only accelerates updates).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Sequence

from repro.analysis.report import format_table
from repro.analysis.stats import geometric_mean
from repro.config import SystemConfig
from repro.experiments.common import Scale
from repro.experiments.deploy import DeploymentSpec, build
from repro.experiments.driver import run_closed_loop, run_sessions
from repro.experiments.jobs import JobResult, JobSpec, execute_serial
from repro.host.stackmodel import TCP, UDP
from repro.workloads import tpcc, twitter
from repro.workloads.handlers import StructureHandler
from repro.workloads.pmdk.btree import PMBTree
from repro.workloads.pmdk.ctree import PMCTree
from repro.workloads.pmdk.hashmap import PMHashmap
from repro.workloads.pmdk.rbtree import PMRBTree
from repro.workloads.pmdk.skiplist import PMSkiplist
from repro.workloads.redis import RedisHandler
from repro.workloads.tpcc import TPCCHandler
from repro.workloads.twitter import TwitterHandler
from repro.workloads.ycsb import YCSBConfig, make_op_maker

UPDATE_RATIOS = (1.0, 0.75, 0.5, 0.25)
QUICK_RATIOS = (1.0, 0.5)


def _structure_spec(factory: Callable) -> dict:
    return {"handler": lambda: StructureHandler(factory()),
            "baseline_transport": UDP, "kind": "kv"}


#: Workload registry: how to build the handler and drive the clients.
WORKLOADS: Dict[str, dict] = {
    "btree": _structure_spec(PMBTree),
    "ctree": _structure_spec(PMCTree),
    "rbtree": _structure_spec(PMRBTree),
    "hashmap": _structure_spec(PMHashmap),
    "skiplist": _structure_spec(PMSkiplist),
    "redis": {"handler": RedisHandler, "baseline_transport": TCP,
              "kind": "kv"},
    "twitter": {"handler": TwitterHandler, "baseline_transport": TCP,
                "kind": "session", "session": twitter.session},
    "tpcc": {"handler": TPCCHandler, "baseline_transport": TCP,
             "kind": "session", "session": tpcc.session},
}


@dataclass
class Fig19Result:
    #: workload -> update ratio -> normalized throughput (pmnet/baseline).
    normalized: Dict[str, Dict[float, float]]
    #: workload -> update ratio -> absolute ops/s per design.
    absolute: Dict[str, Dict[float, Dict[str, float]]]

    def average_speedup(self, ratio: float = 1.0) -> float:
        values = [ratios[ratio] for ratios in self.normalized.values()
                  if ratio in ratios]
        return geometric_mean(values)

    def format(self) -> str:
        ratios = sorted({r for d in self.normalized.values() for r in d},
                        reverse=True)
        headers = ["workload"] + [f"{int(r * 100)}% upd" for r in ratios]
        rows: List[List[object]] = []
        for name, by_ratio in self.normalized.items():
            rows.append([name] + [round(by_ratio.get(r, float("nan")), 2)
                                  for r in ratios])
        body = format_table(
            headers, rows,
            title="Fig 19 — PMNet throughput normalized to Client-Server")
        avg = self.average_speedup(1.0)
        return (f"{body}\n\ngeomean speedup at 100% updates: {avg:.2f}x  "
                f"(paper mean: 4.31x)")


def _drive(deployment, spec: dict, scale: Scale, update_ratio: float,
           payload: int):
    if spec["kind"] == "kv":
        op_maker = make_op_maker(YCSBConfig(update_ratio=update_ratio,
                                            payload_bytes=payload))
        return run_closed_loop(deployment, op_maker,
                               requests_per_client=scale.requests_per_client,
                               warmup_requests=scale.warmup)
    session = partial(_session_wrapper, spec["session"], scale,
                      update_ratio, payload)
    return run_sessions(deployment, session, warmup_requests=scale.warmup)


def _session_wrapper(session_fn, scale: Scale, update_ratio: float,
                     payload: int, index: int, api, rng):
    count = scale.requests_per_client + scale.warmup
    if session_fn is twitter.session:
        return session_fn(index, api, rng, requests=count,
                          update_ratio=update_ratio, payload_bytes=payload,
                          population=max(64, scale.clients))
    return session_fn(index, api, rng, transactions=count,
                      update_ratio=update_ratio, payload_bytes=payload)


def jobs(config: SystemConfig = None, quick: bool = True,  # type: ignore[assignment]
         workloads=None, ratios=None) -> List[JobSpec]:
    """One job per (workload, update ratio, design) point.

    Splitting the baseline and the PMNet run into separate jobs doubles
    the fan-out; each builds its own deployment, exactly as the serial
    loop did, so the normalized ratio is unchanged.
    """
    cfg = config if config is not None else SystemConfig()
    quick = Scale.resolve_quick(quick)
    selected = workloads or list(WORKLOADS)
    selected_ratios = ratios or (QUICK_RATIOS if quick else UPDATE_RATIOS)
    return [JobSpec(experiment="fig19",
                    point=f"workload={name}/ratio={ratio}/design={design}",
                    params={"workload": name, "ratio": ratio,
                            "design": design},
                    seed=cfg.seed, quick=quick, config=config)
            for name in selected for ratio in selected_ratios
            for design in ("client-server", "pmnet-switch")]


def run_point(spec: JobSpec) -> float:
    """Absolute throughput (ops/s) of one workload/ratio/design point."""
    cfg = spec.resolved_config()
    scale = Scale.exact(spec.quick)
    workload = WORKLOADS[spec.params["workload"]]
    ratio = spec.params["ratio"]
    if spec.params["design"] == "client-server":
        spec_deploy = DeploymentSpec(
            placement="none", transport=workload["baseline_transport"])
    else:
        spec_deploy = DeploymentSpec(placement="switch")
    deployment = build(spec_deploy, cfg.with_clients(scale.clients),
                       handler=workload["handler"]())
    stats = _drive(deployment, workload, scale, ratio, cfg.payload_bytes)
    return stats.ops_per_second()


def assemble(results: Sequence[JobResult]) -> Fig19Result:
    ops: Dict[tuple, float] = {}
    order: Dict[tuple, None] = {}
    for result in results:
        params = result.spec.params
        order[(params["workload"], params["ratio"])] = None
        ops[(params["workload"], params["ratio"],
             params["design"])] = result.value
    normalized: Dict[str, Dict[float, float]] = {}
    absolute: Dict[str, Dict[float, Dict[str, float]]] = {}
    for name, ratio in order:
        base_ops = ops[(name, ratio, "client-server")]
        pmnet_ops = ops[(name, ratio, "pmnet-switch")]
        normalized.setdefault(name, {})[ratio] = pmnet_ops / base_ops
        absolute.setdefault(name, {})[ratio] = {
            "client-server": base_ops, "pmnet-switch": pmnet_ops}
    return Fig19Result(normalized, absolute)


def run(config: SystemConfig = None, quick: bool = True,  # type: ignore[assignment]
        workloads=None, ratios=None) -> Fig19Result:
    return assemble(execute_serial(jobs(config, quick, workloads, ratios),
                                   run_point))
