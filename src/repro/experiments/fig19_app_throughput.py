"""Figure 19: application throughput, normalized to Client-Server.

Eight workloads (five PMDK stores, PM-Redis, Twitter, TPC-C) are driven
closed-loop at update ratios 100/75/50/25 %; each point reports PMNet
throughput divided by the Client-Server baseline's.  Paper claims:
~4.31x average at 100 % updates, shrinking as the read share grows
(PMNet only accelerates updates).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List

from repro.analysis.report import format_table
from repro.analysis.stats import geometric_mean
from repro.config import SystemConfig
from repro.experiments.common import Scale
from repro.experiments.deploy import build_client_server, build_pmnet_switch
from repro.experiments.driver import run_closed_loop, run_sessions
from repro.host.stackmodel import TCP, UDP
from repro.workloads import tpcc, twitter
from repro.workloads.handlers import StructureHandler
from repro.workloads.pmdk.btree import PMBTree
from repro.workloads.pmdk.ctree import PMCTree
from repro.workloads.pmdk.hashmap import PMHashmap
from repro.workloads.pmdk.rbtree import PMRBTree
from repro.workloads.pmdk.skiplist import PMSkiplist
from repro.workloads.redis import RedisHandler
from repro.workloads.tpcc import TPCCHandler
from repro.workloads.twitter import TwitterHandler
from repro.workloads.ycsb import YCSBConfig, make_op_maker

UPDATE_RATIOS = (1.0, 0.75, 0.5, 0.25)
QUICK_RATIOS = (1.0, 0.5)


def _structure_spec(factory: Callable) -> dict:
    return {"handler": lambda: StructureHandler(factory()),
            "baseline_transport": UDP, "kind": "kv"}


#: Workload registry: how to build the handler and drive the clients.
WORKLOADS: Dict[str, dict] = {
    "btree": _structure_spec(PMBTree),
    "ctree": _structure_spec(PMCTree),
    "rbtree": _structure_spec(PMRBTree),
    "hashmap": _structure_spec(PMHashmap),
    "skiplist": _structure_spec(PMSkiplist),
    "redis": {"handler": RedisHandler, "baseline_transport": TCP,
              "kind": "kv"},
    "twitter": {"handler": TwitterHandler, "baseline_transport": TCP,
                "kind": "session", "session": twitter.session},
    "tpcc": {"handler": TPCCHandler, "baseline_transport": TCP,
             "kind": "session", "session": tpcc.session},
}


@dataclass
class Fig19Result:
    #: workload -> update ratio -> normalized throughput (pmnet/baseline).
    normalized: Dict[str, Dict[float, float]]
    #: workload -> update ratio -> absolute ops/s per design.
    absolute: Dict[str, Dict[float, Dict[str, float]]]

    def average_speedup(self, ratio: float = 1.0) -> float:
        values = [ratios[ratio] for ratios in self.normalized.values()
                  if ratio in ratios]
        return geometric_mean(values)

    def format(self) -> str:
        ratios = sorted({r for d in self.normalized.values() for r in d},
                        reverse=True)
        headers = ["workload"] + [f"{int(r * 100)}% upd" for r in ratios]
        rows: List[List[object]] = []
        for name, by_ratio in self.normalized.items():
            rows.append([name] + [round(by_ratio.get(r, float("nan")), 2)
                                  for r in ratios])
        body = format_table(
            headers, rows,
            title="Fig 19 — PMNet throughput normalized to Client-Server")
        avg = self.average_speedup(1.0)
        return (f"{body}\n\ngeomean speedup at 100% updates: {avg:.2f}x  "
                f"(paper mean: 4.31x)")


def _drive(deployment, spec: dict, scale: Scale, update_ratio: float,
           payload: int):
    if spec["kind"] == "kv":
        op_maker = make_op_maker(YCSBConfig(update_ratio=update_ratio,
                                            payload_bytes=payload))
        return run_closed_loop(deployment, op_maker,
                               requests_per_client=scale.requests_per_client,
                               warmup_requests=scale.warmup)
    session = partial(_session_wrapper, spec["session"], scale,
                      update_ratio, payload)
    return run_sessions(deployment, session, warmup_requests=scale.warmup)


def _session_wrapper(session_fn, scale: Scale, update_ratio: float,
                     payload: int, index: int, api, rng):
    count = scale.requests_per_client + scale.warmup
    if session_fn is twitter.session:
        return session_fn(index, api, rng, requests=count,
                          update_ratio=update_ratio, payload_bytes=payload,
                          population=max(64, scale.clients))
    return session_fn(index, api, rng, transactions=count,
                      update_ratio=update_ratio, payload_bytes=payload)


def run(config: SystemConfig = None, quick: bool = True,  # type: ignore[assignment]
        workloads=None, ratios=None) -> Fig19Result:
    cfg = config if config is not None else SystemConfig()
    scale = Scale.pick(quick)
    selected = workloads or list(WORKLOADS)
    selected_ratios = ratios or (QUICK_RATIOS if quick else UPDATE_RATIOS)
    normalized: Dict[str, Dict[float, float]] = {}
    absolute: Dict[str, Dict[float, Dict[str, float]]] = {}
    for name in selected:
        spec = WORKLOADS[name]
        normalized[name] = {}
        absolute[name] = {}
        for ratio in selected_ratios:
            baseline = build_client_server(
                cfg.with_clients(scale.clients), handler=spec["handler"](),
                transport=spec["baseline_transport"])
            base_stats = _drive(baseline, spec, scale, ratio,
                                cfg.payload_bytes)
            pmnet = build_pmnet_switch(
                cfg.with_clients(scale.clients), handler=spec["handler"]())
            pmnet_stats = _drive(pmnet, spec, scale, ratio,
                                 cfg.payload_bytes)
            base_ops = base_stats.ops_per_second()
            pmnet_ops = pmnet_stats.ops_per_second()
            normalized[name][ratio] = pmnet_ops / base_ops
            absolute[name][ratio] = {"client-server": base_ops,
                                     "pmnet-switch": pmnet_ops}
    return Fig19Result(normalized, absolute)
