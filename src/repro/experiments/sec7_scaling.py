"""Section VII: reaching higher network bandwidths.

The paper argues PMNet scales to 100 Gbps because (a) the log queue
only needs to grow with the PM-latency BDP (1.25 kB at 100 G) and (b)
the PM only holds in-flight requests (tens of MB).  This experiment
*runs* that argument end to end: for each port speed it sizes the log
queue from Eq 2, scales the PM bandwidth with the projected media
improvements the paper cites (NVDIMM/persistent-cache/STT-RAM), and
stress-drives the device, reporting achieved bandwidth, latency, and
whether the pipeline ever had to bypass logging.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

from repro.analysis.bdp import pm_queue_bdp
from repro.analysis.report import format_table
from repro.config import SystemConfig
from repro.experiments.common import Scale
from repro.experiments.deploy import DeploymentSpec, build
from repro.experiments.driver import run_closed_loop
from repro.experiments.jobs import JobResult, JobSpec, execute_serial
from repro.workloads.kv import OpKind, Operation

PAYLOAD = 1000

#: Port speeds from the Sec VII discussion.
BANDWIDTHS_GBPS = (10.0, 25.0, 40.0, 100.0)


@dataclass
class Sec7Result:
    #: gbps -> (queue bytes used, achieved Gbps, mean latency us,
    #:          queue-busy bypass count)
    rows: Dict[float, Tuple[int, float, float, int]]

    def achieved(self, gbps: float) -> float:
        return self.rows[gbps][1]

    def bypasses(self, gbps: float) -> int:
        return self.rows[gbps][3]

    def format(self) -> str:
        table: List[List[object]] = []
        for gbps, (queue, achieved, latency, bypasses) in sorted(
                self.rows.items()):
            table.append([gbps, queue, round(achieved, 2),
                          round(latency, 2), bypasses])
        body = format_table(
            ["port Gbps", "log queue B (Eq 2)", "achieved Gbps",
             "mean latency us", "queue bypasses"],
            table,
            title="Sec VII — PMNet at higher port speeds")
        return (f"{body}\nThe BDP-sized queue keeps logging essentially "
                "at line rate at every speed (bypass fraction < 1%).")


def jobs(config: SystemConfig = None, quick: bool = True,  # type: ignore[assignment]
         bandwidths_gbps=BANDWIDTHS_GBPS) -> List[JobSpec]:
    """One job per port speed."""
    cfg = config if config is not None else SystemConfig()
    quick = Scale.resolve_quick(quick)
    return [JobSpec(experiment="sec7", point=f"gbps={gbps}",
                    params={"gbps": gbps},
                    seed=cfg.seed, quick=quick, config=config)
            for gbps in bandwidths_gbps]


def run_point(spec: JobSpec) -> Tuple[int, float, float, int]:
    """(queue bytes, achieved Gbps, latency us, bypasses) at one speed."""
    cfg = spec.resolved_config()
    base_clients = 32 if spec.quick else 64
    requests = 40 if spec.quick else 200
    gbps = spec.params["gbps"]

    def op_maker(ci: int, ri: int, rng):
        return Operation(OpKind.SET, key=(ci, ri), value=b"x"), PAYLOAD

    wire_bits = 8 * (PAYLOAD + cfg.network.header_overhead_bytes + 11)
    bandwidth = gbps * 1e9
    # Offered load must scale with the port: closed-loop clients
    # are RTT-bound, so saturating a faster port needs more of them.
    clients = round(base_clients * gbps / 10.0)
    # Eq 2 sizing, with generous headroom exactly as Sec V-A used
    # 4 KB against a 1 kbit minimum.
    queue_bytes = max(4096, 4 * round(pm_queue_bdp(
        pm_latency_s=cfg.network_pm.write_latency_ns * 1e-9,
        bandwidth_bps=bandwidth).bytes))
    # Faster ports come with the faster PM media Sec VII cites.
    pm_scale = bandwidth / 10e9
    sized = replace(
        cfg.with_clients(clients).with_payload(PAYLOAD),
        network=replace(cfg.network, bandwidth_bps=bandwidth),
        network_pm=replace(
            cfg.network_pm,
            bandwidth_bytes_per_s=cfg.network_pm.bandwidth_bytes_per_s
            * pm_scale),
        log=replace(cfg.log, write_queue_bytes=queue_bytes,
                    read_queue_bytes=queue_bytes))
    deployment = build(DeploymentSpec(placement="switch"), sized)
    stats = run_closed_loop(deployment, op_maker, requests, 6)
    achieved = stats.ops_per_second() * wire_bits / 1e9
    device = deployment.devices[0]
    return (queue_bytes, achieved,
            stats.update_latencies.mean() / 1000.0,
            int(device.log.bypassed_queue_busy))


def assemble(results: Sequence[JobResult]) -> Sec7Result:
    return Sec7Result({result.spec.params["gbps"]: result.value
                       for result in results})


def run(config: SystemConfig = None, quick: bool = True,  # type: ignore[assignment]
        bandwidths_gbps=BANDWIDTHS_GBPS) -> Sec7Result:
    return assemble(execute_serial(jobs(config, quick, bandwidths_gbps),
                                   run_point))
