"""Deployment builders: wire complete client-network-server systems.

These reproduce the paper's three design points (Sec VI-A4) plus the
replication and caching variants:

* ``build_client_server``  — the baseline: clients - switch - server.
* ``build_pmnet_switch``   — PMNet as the ToR switch (with the regular
  merge switch of Sec VI-A1 between the clients and the FPGA).
* ``build_pmnet_nic``      — PMNet as a bump-in-the-wire NIC at the
  server (short wire to the host, like the SmartNIC setup).

Every builder returns a :class:`Deployment` holding the simulator and
every component, so experiments and tests can drive and inspect the
system uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.config import SystemConfig
from repro.core.pmnet_device import PMNetDevice
from repro.core.replication import (
    NO_PMNET,
    ReplicationPolicy,
    build_pmnet_chain,
)
from repro.host.client import PMNetClient
from repro.host.handler import IdealHandler, RequestHandler
from repro.host.node import HostNode
from repro.host.server import PMNetServer
from repro.host.stackmodel import UDP, HostStack
from repro.net.switch import Switch
from repro.net.topology import Topology
from repro.obs.context import Observability
from repro.protocol.session import SessionAllocator
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer


@dataclass
class Deployment:
    """A fully wired simulated system."""

    sim: Simulator
    config: SystemConfig
    topology: Topology
    clients: List[PMNetClient]
    server: PMNetServer
    devices: List[PMNetDevice] = field(default_factory=list)
    switches: List[Switch] = field(default_factory=list)
    tracer: Optional[Tracer] = None
    #: The observability bundle attached to the simulator (``None`` when
    #: the run is uninstrumented — the zero-cost default).
    obs: Optional[Observability] = None
    #: Additional shard servers in multi-server deployments (the
    #: ``server`` field holds shard 0).
    extra_servers: List[PMNetServer] = field(default_factory=list)

    @property
    def servers(self) -> List[PMNetServer]:
        return [self.server] + self.extra_servers

    @property
    def pmnet_names(self) -> List[str]:
        return [device.name for device in self.devices]

    def open_all_sessions(self) -> None:
        for client in self.clients:
            client.start_session()


def _make_server(sim: Simulator, topology: Topology, config: SystemConfig,
                 handler: Optional[RequestHandler], transport: str,
                 tracer: Optional[Tracer]) -> PMNetServer:
    stack = HostStack(sim, "server", config.server_stack, transport)
    host = HostNode(sim, "server", stack)
    topology.add(host)
    if handler is None:
        handler = IdealHandler(config.server.ideal_handler_ns)
    return PMNetServer(sim, host, handler, config, tracer=tracer)


def _make_clients(sim: Simulator, topology: Topology, config: SystemConfig,
                  attach_to: object, policy: ReplicationPolicy,
                  transport: str, tracer: Optional[Tracer]
                  ) -> List[PMNetClient]:
    allocator = SessionAllocator()
    clients = []
    for index in range(config.num_clients):
        name = f"client{index}"
        stack = HostStack(sim, name, config.client_stack, transport)
        host = HostNode(sim, name, stack)
        topology.add(host)
        topology.connect(host, attach_to)  # type: ignore[arg-type]
        clients.append(PMNetClient(sim, host, config, "server", allocator,
                                   policy=policy, tracer=tracer))
    return clients


def build_client_server(config: SystemConfig,
                        handler: Optional[RequestHandler] = None,
                        transport: str = UDP,
                        tracer: Optional[Tracer] = None,
                        obs: Optional[Observability] = None) -> Deployment:
    """The baseline Client-Server system: clients - switch - server."""
    sim = Simulator(seed=config.seed, obs=obs)
    topology = Topology(sim, config.network)
    switch = Switch(sim, "tor", config.network)
    topology.add(switch)
    server = _make_server(sim, topology, config, handler, transport, tracer)
    topology.connect(switch, server.host)
    clients = _make_clients(sim, topology, config, switch, NO_PMNET,
                            transport, tracer)
    topology.compute_routes()
    return Deployment(sim=sim, config=config, topology=topology,
                      clients=clients, server=server, switches=[switch],
                      tracer=tracer, obs=obs)


def build_pmnet_switch(config: SystemConfig,
                       handler: Optional[RequestHandler] = None,
                       replication: int = 1,
                       enable_cache: bool = False,
                       transport: str = UDP,
                       tracer: Optional[Tracer] = None,
                       obs: Optional[Observability] = None) -> Deployment:
    """PMNet in the ToR switch position (Sec VI-A1).

    ``replication > 1`` places that many PMNet switches in series
    (Fig 9a) and makes every client wait for all of their ACKs.
    """
    sim = Simulator(seed=config.seed, obs=obs)
    topology = Topology(sim, config.network)
    merge = Switch(sim, "merge", config.network)
    topology.add(merge)
    chain = build_pmnet_chain(sim, topology, config, replication,
                              mode="switch", enable_cache=enable_cache,
                              tracer=tracer)
    topology.connect(merge, chain[0])
    server = _make_server(sim, topology, config, handler, transport, tracer)
    topology.connect(chain[-1], server.host)
    policy = ReplicationPolicy(acks_required=replication)
    clients = _make_clients(sim, topology, config, merge, policy,
                            transport, tracer)
    topology.compute_routes()
    return Deployment(sim=sim, config=config, topology=topology,
                      clients=clients, server=server, devices=chain,
                      switches=[merge], tracer=tracer, obs=obs)


def build_pmnet_nic(config: SystemConfig,
                    handler: Optional[RequestHandler] = None,
                    enable_cache: bool = False,
                    transport: str = UDP,
                    tracer: Optional[Tracer] = None,
                    obs: Optional[Observability] = None) -> Deployment:
    """PMNet as the server's bump-in-the-wire NIC (Sec VI-A1).

    The device sits right next to the host, so its link to the server
    has near-zero propagation delay.
    """
    sim = Simulator(seed=config.seed, obs=obs)
    # The NIC-to-host hop is a short board-level wire.
    short_wire = replace(config.network, propagation_ns=20)
    topology = Topology(sim, config.network)
    tor = Switch(sim, "tor", config.network)
    topology.add(tor)
    nic = PMNetDevice(sim, "pmnet-nic", config, mode="nic",
                      enable_cache=enable_cache, tracer=tracer)
    topology.add(nic)
    topology.connect(tor, nic)
    server = _make_server(sim, topology, config, handler, transport, tracer)
    # Swap in the short-wire profile for the NIC-host link only.
    saved = topology.profile
    topology.profile = short_wire
    topology.connect(nic, server.host)
    topology.profile = saved
    clients = _make_clients(sim, topology, config, tor,
                            ReplicationPolicy(acks_required=1),
                            transport, tracer)
    topology.compute_routes()
    return Deployment(sim=sim, config=config, topology=topology,
                      clients=clients, server=server, devices=[nic],
                      switches=[tor], tracer=tracer, obs=obs)


def build_sharded(config: SystemConfig, num_servers: int,
                  handler_factory=None,
                  transport: str = UDP,
                  tracer: Optional[Tracer] = None,
                  obs: Optional[Observability] = None) -> Deployment:
    """A sharded store: N servers behind one PMNet ToR switch.

    Each client is a :class:`~repro.host.sharded.ShardedClient` with one
    session (and ordered update stream) per shard; the single PMNet
    device logs traffic for every shard and replays each server's
    entries only to that server on recovery.
    """
    from repro.host.sharded import ShardedClient

    if num_servers <= 0:
        raise ValueError("need at least one shard server")
    sim = Simulator(seed=config.seed, obs=obs)
    topology = Topology(sim, config.network)
    merge = Switch(sim, "merge", config.network)
    topology.add(merge)
    device = PMNetDevice(sim, "pmnet1", config, mode="switch",
                         tracer=tracer)
    topology.add(device)
    topology.connect(merge, device)
    servers: List[PMNetServer] = []
    for index in range(num_servers):
        name = f"server{index}" if index else "server"
        stack = HostStack(sim, name, config.server_stack, transport)
        host = HostNode(sim, name, stack)
        topology.add(host)
        topology.connect(device, host)
        handler = (handler_factory() if handler_factory is not None
                   else IdealHandler(config.server.ideal_handler_ns))
        servers.append(PMNetServer(sim, host, handler, config,
                                   tracer=tracer))
    allocator = SessionAllocator()
    clients = []
    server_names = [server.host.name for server in servers]
    for index in range(config.num_clients):
        name = f"client{index}"
        stack = HostStack(sim, name, config.client_stack, transport)
        host = HostNode(sim, name, stack)
        topology.add(host)
        topology.connect(host, merge)
        clients.append(ShardedClient(sim, host, config, server_names,
                                     allocator, tracer=tracer))
    topology.compute_routes()
    return Deployment(sim=sim, config=config, topology=topology,
                      clients=clients, server=servers[0],
                      devices=[device], switches=[merge], tracer=tracer,
                      obs=obs, extra_servers=servers[1:])
