"""Declarative deployments: describe a system, then ``build(spec)`` it.

A :class:`DeploymentSpec` names *what* to stand up — racks, device
placement, chain length, shards, cache, per-tier network profiles — and
:func:`build` wires it: the paper's three single-rack design points
(Sec VI-A4), the sharded single-ToR store, and the multi-rack
spine/leaf fabric with cross-switch chain replication
(:mod:`repro.net.fabric`).  The spec is frozen and JSON-round-trippable
(:meth:`DeploymentSpec.to_params`), so experiment jobs and the chaos
engine can ship deployments across process boundaries; live objects
(handlers, tracers, observability) stay arguments of :func:`build`.

The four historical builders — ``build_client_server``,
``build_pmnet_switch``, ``build_pmnet_nic``, ``build_sharded`` — remain
as shims that construct the equivalent spec (with a DeprecationWarning);
their wiring is reproduced exactly, so traces and tables are
byte-identical.

Every build returns a :class:`Deployment` holding the simulator and
every component, so experiments and tests can drive and inspect the
system uniformly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.config import SystemConfig
from repro.core.pmnet_device import PMNetDevice
from repro.core.replication import (
    NO_PMNET,
    ReplicationPolicy,
    build_pmnet_chain,
)
from repro.host.client import PMNetClient
from repro.host.handler import IdealHandler, RequestHandler
from repro.host.node import HostNode
from repro.host.server import PMNetServer
from repro.host.stackmodel import UDP, HostStack
from repro.net.switch import Switch
from repro.net.topology import Topology
from repro.obs.context import Observability
from repro.protocol.session import SessionAllocator
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer

#: Valid values of :attr:`DeploymentSpec.placement`.
PLACEMENTS = ("none", "switch", "nic")


@dataclass(frozen=True)
class DeploymentSpec:
    """A declarative description of one simulated system.

    Single-rack shapes (``racks == 1``) reproduce the legacy builders;
    ``racks > 1`` stands up the spine/leaf fabric with consistent-hash
    sharding and cross-rack chain replication.
    """

    #: Number of racks.  1 = the classic one-ToR star shapes.
    racks: int = 1
    #: Number of spine switches interconnecting the racks (fabric only).
    spines: int = 1
    #: Where the PMNet device sits: ``"none"`` (baseline client-server),
    #: ``"switch"`` (ToR position), or ``"nic"`` (bump-in-the-wire at
    #: the server; single-rack only).
    placement: str = "switch"
    #: Replication strength.  Single-rack: devices in series under one
    #: ToR (Fig 9a), clients wait for all their ACKs.  Fabric: the
    #: cross-rack chain length; the tail's single ACK completes.
    chain_length: int = 1
    #: PMNet devices per rack (fabric only): the primary sits between
    #: leaf and servers; extras hang off the leaf as chain members.
    devices_per_rack: int = 1
    #: Shard servers per rack.  Single-rack with > 1 builds the sharded
    #: single-ToR store.
    servers_per_rack: int = 1
    #: Client hosts per rack; ``None`` = ``config.num_clients``.
    clients_per_rack: Optional[int] = None
    #: Enable the in-network read cache on the devices.
    enable_cache: bool = False
    #: Transport for every host stack.
    transport: str = UDP
    #: Propagation delay of the NIC-to-host board trace (placement
    #: ``"nic"``).
    nic_wire_ns: int = 20
    #: Propagation delay override for leaf-spine links (fabric); ``None``
    #: = the topology-wide profile (cross-rack hop cost knob).
    spine_propagation_ns: Optional[int] = None
    #: Virtual points per member on the consistent-hash ring (fabric).
    ring_replicas: int = 32
    #: Control-plane polling period (fabric only); ``None`` = no control
    #: plane.  When set, :func:`build` attaches an *unstarted*
    #: :class:`~repro.control.balancer.ControlPlane` as
    #: ``deployment.control`` — callers add policies and start it.
    control_period_ns: Optional[int] = None

    def __post_init__(self) -> None:
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"placement must be one of {PLACEMENTS}, "
                f"got {self.placement!r}")
        if self.racks < 1 or self.spines < 1:
            raise ValueError("racks and spines must be >= 1")
        if (self.chain_length < 1 or self.devices_per_rack < 1
                or self.servers_per_rack < 1):
            raise ValueError("chain_length, devices_per_rack and "
                             "servers_per_rack must be >= 1")
        if self.clients_per_rack is not None and self.clients_per_rack < 1:
            raise ValueError("clients_per_rack must be >= 1")
        if self.ring_replicas < 1:
            raise ValueError("ring_replicas must be >= 1")
        if self.control_period_ns is not None:
            if self.control_period_ns <= 0:
                raise ValueError("control_period_ns must be positive")
            if self.racks == 1:
                raise ValueError("the control plane runs over the "
                                 "multi-rack fabric (racks > 1)")
        if self.racks > 1:
            if self.placement != "switch":
                raise ValueError(
                    "the fabric places devices at the leaf (switch) "
                    f"position, not {self.placement!r}")
            total_devices = self.racks * self.devices_per_rack
            if self.chain_length > total_devices:
                raise ValueError(
                    f"chain length {self.chain_length} exceeds the "
                    f"{total_devices} devices in the fabric")
        else:
            if self.placement == "none" and (self.chain_length > 1
                                             or self.enable_cache):
                raise ValueError(
                    "the baseline has no PMNet device to replicate or "
                    "cache on")
            if self.placement == "nic" and self.chain_length > 1:
                raise ValueError("NIC placement holds a single device")
            if self.servers_per_rack > 1 and self.placement != "switch":
                raise ValueError(
                    "the single-rack sharded store needs the ToR (switch) "
                    "placement")
            if self.servers_per_rack > 1 and self.chain_length > 1:
                raise ValueError(
                    "single-rack sharding and device chaining are "
                    "separate shapes; use racks > 1 for chained shards")

    # ------------------------------------------------------------------
    def to_params(self) -> Dict[str, object]:
        """A JSON-safe dict round-trippable via :meth:`from_params`."""
        return {
            "racks": self.racks,
            "spines": self.spines,
            "placement": self.placement,
            "chain_length": self.chain_length,
            "devices_per_rack": self.devices_per_rack,
            "servers_per_rack": self.servers_per_rack,
            "clients_per_rack": self.clients_per_rack,
            "enable_cache": self.enable_cache,
            "transport": self.transport,
            "nic_wire_ns": self.nic_wire_ns,
            "spine_propagation_ns": self.spine_propagation_ns,
            "ring_replicas": self.ring_replicas,
            "control_period_ns": self.control_period_ns,
        }

    @classmethod
    def from_params(cls, params: Dict[str, object]) -> "DeploymentSpec":
        return cls(**params)  # type: ignore[arg-type]


@dataclass
class Deployment:
    """A fully wired simulated system."""

    sim: Simulator
    config: SystemConfig
    topology: Topology
    clients: List[PMNetClient]
    server: PMNetServer
    devices: List[PMNetDevice] = field(default_factory=list)
    switches: List[Switch] = field(default_factory=list)
    tracer: Optional[Tracer] = None
    #: The observability bundle attached to the simulator (``None`` when
    #: the run is uninstrumented — the zero-cost default).
    obs: Optional[Observability] = None
    #: Additional shard servers in multi-server deployments (the
    #: ``server`` field holds shard 0).
    extra_servers: List[PMNetServer] = field(default_factory=list)
    #: The spec this deployment was built from (``None`` for hand-wired
    #: systems).
    spec: Optional[DeploymentSpec] = None
    #: Fabric deployments: server name -> replication chain of device
    #: names, head first, tail last.
    chains: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: Fabric deployments: the placement ring and rack layout
    #: (:class:`repro.net.fabric.FabricInfo`).
    fabric: Optional[object] = None
    #: The attached control plane
    #: (:class:`~repro.control.balancer.ControlPlane`), if any.
    control: Optional[object] = None

    @property
    def servers(self) -> List[PMNetServer]:
        return [self.server] + self.extra_servers

    @property
    def pmnet_names(self) -> List[str]:
        return [device.name for device in self.devices]

    def recovery_devices(self, server_name: str) -> List[str]:
        """Which devices a recovering server should poll.

        In the fabric the server polls its chain — the tail holds every
        acknowledged entry, and the chain-walked invalidations settle
        the upstream members' resend engines; single-rack shapes poll
        every device, as before.
        """
        chain = self.chains.get(server_name)
        if chain:
            return list(chain)
        return self.pmnet_names

    def open_all_sessions(self) -> None:
        for client in self.clients:
            client.start_session()


# ----------------------------------------------------------------------
# Shared wiring pieces
# ----------------------------------------------------------------------
def _make_server(sim: Simulator, topology: Topology, config: SystemConfig,
                 handler: Optional[RequestHandler], transport: str,
                 tracer: Optional[Tracer]) -> PMNetServer:
    stack = HostStack(sim, "server", config.server_stack, transport)
    host = HostNode(sim, "server", stack)
    topology.add(host)
    if handler is None:
        handler = IdealHandler(config.server.ideal_handler_ns)
    return PMNetServer(sim, host, handler, config, tracer=tracer)


def _make_clients(sim: Simulator, topology: Topology, config: SystemConfig,
                  attach_to: object, policy: ReplicationPolicy,
                  transport: str, tracer: Optional[Tracer]
                  ) -> List[PMNetClient]:
    allocator = SessionAllocator()
    clients = []
    for index in range(config.num_clients):
        name = f"client{index}"
        stack = HostStack(sim, name, config.client_stack, transport)
        host = HostNode(sim, name, stack)
        topology.add(host)
        topology.connect(host, attach_to)  # type: ignore[arg-type]
        clients.append(PMNetClient(sim, host, config, "server", allocator,
                                   policy=policy, tracer=tracer))
    return clients


# ----------------------------------------------------------------------
# The one entry point
# ----------------------------------------------------------------------
def build(spec: DeploymentSpec, config: SystemConfig,
          handler: Optional[RequestHandler] = None,
          handler_factory=None,
          transport: Optional[str] = None,
          tracer: Optional[Tracer] = None,
          obs: Optional[Observability] = None) -> Deployment:
    """Wire the system a :class:`DeploymentSpec` describes.

    ``handler`` serves single-server shapes; multi-server shapes take a
    ``handler_factory`` (each shard gets its own instance).  ``transport``
    overrides ``spec.transport`` when given (convenience for callers
    holding only a transport constant).
    """
    if handler is not None and handler_factory is not None:
        raise ValueError("pass handler or handler_factory, not both")
    if transport is not None and transport != spec.transport:
        spec = replace(spec, transport=transport)
    if spec.racks > 1:
        from repro.net.fabric import build_fabric

        deployment = build_fabric(spec, config,
                                  handler_factory=handler_factory,
                                  handler=handler, tracer=tracer, obs=obs)
        if spec.control_period_ns is not None:
            from repro.control.balancer import attach_control_plane

            attach_control_plane(deployment,
                                 period_ns=spec.control_period_ns)
        return deployment
    if spec.servers_per_rack > 1:
        return _build_single_rack_sharded(spec, config, handler_factory,
                                          handler, tracer, obs)
    if handler is None and handler_factory is not None:
        handler = handler_factory()
    if spec.placement == "none":
        return _build_baseline(spec, config, handler, tracer, obs)
    if spec.placement == "nic":
        return _build_nic(spec, config, handler, tracer, obs)
    return _build_tor_chain(spec, config, handler, tracer, obs)


def _build_baseline(spec: DeploymentSpec, config: SystemConfig,
                    handler: Optional[RequestHandler],
                    tracer: Optional[Tracer],
                    obs: Optional[Observability]) -> Deployment:
    """The baseline Client-Server system: clients - switch - server."""
    sim = Simulator(seed=config.seed, obs=obs)
    topology = Topology(sim, config.network)
    switch = Switch(sim, "tor", config.network)
    topology.add(switch)
    server = _make_server(sim, topology, config, handler, spec.transport,
                          tracer)
    topology.connect(switch, server.host)
    clients = _make_clients(sim, topology, config, switch, NO_PMNET,
                            spec.transport, tracer)
    topology.compute_routes()
    return Deployment(sim=sim, config=config, topology=topology,
                      clients=clients, server=server, switches=[switch],
                      tracer=tracer, obs=obs, spec=spec)


def _build_tor_chain(spec: DeploymentSpec, config: SystemConfig,
                     handler: Optional[RequestHandler],
                     tracer: Optional[Tracer],
                     obs: Optional[Observability]) -> Deployment:
    """PMNet in the ToR switch position (Sec VI-A1); ``chain_length > 1``
    places that many PMNet switches in series (Fig 9a) and makes every
    client wait for all of their ACKs."""
    sim = Simulator(seed=config.seed, obs=obs)
    topology = Topology(sim, config.network)
    merge = Switch(sim, "merge", config.network)
    topology.add(merge)
    chain = build_pmnet_chain(sim, topology, config, spec.chain_length,
                              mode="switch", enable_cache=spec.enable_cache,
                              tracer=tracer)
    topology.connect(merge, chain[0])
    server = _make_server(sim, topology, config, handler, spec.transport,
                          tracer)
    topology.connect(chain[-1], server.host)
    policy = ReplicationPolicy(acks_required=spec.chain_length)
    clients = _make_clients(sim, topology, config, merge, policy,
                            spec.transport, tracer)
    topology.compute_routes()
    return Deployment(sim=sim, config=config, topology=topology,
                      clients=clients, server=server, devices=chain,
                      switches=[merge], tracer=tracer, obs=obs, spec=spec)


def _build_nic(spec: DeploymentSpec, config: SystemConfig,
               handler: Optional[RequestHandler],
               tracer: Optional[Tracer],
               obs: Optional[Observability]) -> Deployment:
    """PMNet as the server's bump-in-the-wire NIC (Sec VI-A1): the
    device sits right next to the host, so its link to the server has
    near-zero propagation delay."""
    sim = Simulator(seed=config.seed, obs=obs)
    topology = Topology(sim, config.network)
    tor = Switch(sim, "tor", config.network)
    topology.add(tor)
    nic = PMNetDevice(sim, "pmnet-nic", config, mode="nic",
                      enable_cache=spec.enable_cache, tracer=tracer)
    topology.add(nic)
    topology.connect(tor, nic)
    server = _make_server(sim, topology, config, handler, spec.transport,
                          tracer)
    # The NIC-to-host hop is a short board-level wire.
    short_wire = replace(config.network, propagation_ns=spec.nic_wire_ns)
    topology.connect(nic, server.host, profile=short_wire)
    clients = _make_clients(sim, topology, config, tor,
                            ReplicationPolicy(acks_required=1),
                            spec.transport, tracer)
    topology.compute_routes()
    return Deployment(sim=sim, config=config, topology=topology,
                      clients=clients, server=server, devices=[nic],
                      switches=[tor], tracer=tracer, obs=obs, spec=spec)


def _build_single_rack_sharded(spec: DeploymentSpec, config: SystemConfig,
                               handler_factory,
                               handler: Optional[RequestHandler],
                               tracer: Optional[Tracer],
                               obs: Optional[Observability]) -> Deployment:
    """A sharded store: N servers behind one PMNet ToR switch.

    Each client is a :class:`~repro.host.sharded.ShardedClient` with one
    session (and ordered update stream) per shard; the single PMNet
    device logs traffic for every shard and replays each server's
    entries only to that server on recovery.
    """
    from repro.host.sharded import ShardedClient

    if handler is not None:
        raise ValueError("sharded shapes need a handler_factory, each "
                         "server gets its own handler instance")
    sim = Simulator(seed=config.seed, obs=obs)
    topology = Topology(sim, config.network)
    merge = Switch(sim, "merge", config.network)
    topology.add(merge)
    device = PMNetDevice(sim, "pmnet1", config, mode="switch",
                         tracer=tracer)
    topology.add(device)
    topology.connect(merge, device)
    servers: List[PMNetServer] = []
    for index in range(spec.servers_per_rack):
        name = f"server{index}" if index else "server"
        stack = HostStack(sim, name, config.server_stack, spec.transport)
        host = HostNode(sim, name, stack)
        topology.add(host)
        topology.connect(device, host)
        shard_handler = (handler_factory() if handler_factory is not None
                         else IdealHandler(config.server.ideal_handler_ns))
        servers.append(PMNetServer(sim, host, shard_handler, config,
                                   tracer=tracer))
    allocator = SessionAllocator()
    clients = []
    server_names = [server.host.name for server in servers]
    for index in range(config.num_clients):
        name = f"client{index}"
        stack = HostStack(sim, name, config.client_stack, spec.transport)
        host = HostNode(sim, name, stack)
        topology.add(host)
        topology.connect(host, merge)
        clients.append(ShardedClient(sim, host, config, server_names,
                                     allocator, tracer=tracer))
    topology.compute_routes()
    return Deployment(sim=sim, config=config, topology=topology,
                      clients=clients, server=servers[0],
                      devices=[device], switches=[merge], tracer=tracer,
                      obs=obs, extra_servers=servers[1:], spec=spec)


# ----------------------------------------------------------------------
# Deprecated builder shims (byte-identical to their spec equivalents)
# ----------------------------------------------------------------------
def _warn_legacy(name: str, spec: DeploymentSpec) -> None:
    warnings.warn(
        f"{name}() is deprecated: call build(DeploymentSpec("
        f"placement={spec.placement!r}, ...), config) instead",
        DeprecationWarning, stacklevel=3)


def build_client_server(config: SystemConfig,
                        handler: Optional[RequestHandler] = None,
                        transport: str = UDP,
                        tracer: Optional[Tracer] = None,
                        obs: Optional[Observability] = None) -> Deployment:
    """Deprecated shim for the baseline spec (placement ``"none"``)."""
    spec = DeploymentSpec(placement="none", transport=transport)
    _warn_legacy("build_client_server", spec)
    return build(spec, config, handler=handler, tracer=tracer, obs=obs)


def build_pmnet_switch(config: SystemConfig,
                       handler: Optional[RequestHandler] = None,
                       replication: int = 1,
                       enable_cache: bool = False,
                       transport: str = UDP,
                       tracer: Optional[Tracer] = None,
                       obs: Optional[Observability] = None) -> Deployment:
    """Deprecated shim for the ToR spec (placement ``"switch"``)."""
    spec = DeploymentSpec(placement="switch", chain_length=replication,
                          enable_cache=enable_cache, transport=transport)
    _warn_legacy("build_pmnet_switch", spec)
    return build(spec, config, handler=handler, tracer=tracer, obs=obs)


def build_pmnet_nic(config: SystemConfig,
                    handler: Optional[RequestHandler] = None,
                    enable_cache: bool = False,
                    transport: str = UDP,
                    tracer: Optional[Tracer] = None,
                    obs: Optional[Observability] = None) -> Deployment:
    """Deprecated shim for the NIC spec (placement ``"nic"``)."""
    spec = DeploymentSpec(placement="nic", enable_cache=enable_cache,
                          transport=transport)
    _warn_legacy("build_pmnet_nic", spec)
    return build(spec, config, handler=handler, tracer=tracer, obs=obs)


def build_sharded(config: SystemConfig, num_servers: int,
                  handler_factory=None,
                  transport: str = UDP,
                  tracer: Optional[Tracer] = None,
                  obs: Optional[Observability] = None) -> Deployment:
    """Deprecated shim for the single-ToR sharded spec."""
    spec = DeploymentSpec(placement="switch", servers_per_rack=num_servers,
                          transport=transport)
    _warn_legacy("build_sharded", spec)
    return build(spec, config, handler_factory=handler_factory,
                 tracer=tracer, obs=obs)
