"""Fan experiment jobs across cores with a ``ProcessPoolExecutor``.

Every sweep point of every figure is an independent, deterministic
simulation (see :mod:`repro.experiments.jobs`), so the whole
reproduction parallelizes the way NetChain/Blizzard-style evaluations
fan out across machines — here, across worker processes.  Each worker
rebuilds its own deployment from the picklable spec, so results are
bit-identical to the serial path regardless of scheduling order; the
caller reassembles tables from the collected values in spec order.

``run_jobs`` is the single entry point: it consults the optional
on-disk :class:`~repro.experiments.cache.ResultCache` first, runs the
misses inline (``jobs=1``, the serial reference path) or in a pool,
stores fresh values back, and reports per-job completion through a
``progress`` callback.  Job failures never abort the batch: they come
back as :class:`~repro.experiments.jobs.JobResult` records with
``error`` set, matching the CLI's keep-going behaviour.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, List, Optional, Sequence

from repro.experiments.cache import ResultCache
from repro.experiments.jobs import JobResult, JobSpec

ProgressFn = Callable[[JobResult], None]


def default_jobs() -> int:
    """The default worker count: every core the container offers."""
    return os.cpu_count() or 1


def execute_job(spec: JobSpec) -> JobResult:
    """Run one spec through its experiment's ``run_point`` (timed).

    Top-level so a pool worker can receive it by name; dispatches
    through the registry inside the call, so only the spec crosses the
    process boundary.  Exceptions are folded into the result's
    ``error`` field — a failed point must not take down a batch that
    has hours of other points in flight.
    """
    from repro.experiments.registry import get
    started = time.perf_counter()
    try:
        value = get(spec.experiment).run_point(spec)
    except Exception as error:
        return JobResult(spec=spec, value=None,
                         elapsed_s=time.perf_counter() - started,
                         error=repr(error))
    return JobResult(spec=spec, value=value,
                     elapsed_s=time.perf_counter() - started)


def run_jobs(specs: Sequence[JobSpec],
             jobs: Optional[int] = None,
             cache: Optional[ResultCache] = None,
             progress: Optional[ProgressFn] = None) -> List[JobResult]:
    """Execute specs (cache-aware), returning results in spec order.

    ``jobs=1`` runs everything inline in the calling process — that is
    the serial reference path the parallel output must match byte for
    byte.  ``jobs=None`` uses every core.
    """
    workers = jobs if jobs is not None else default_jobs()
    results: List[Optional[JobResult]] = [None] * len(specs)
    pending: List[int] = []
    for index, spec in enumerate(specs):
        if cache is not None:
            hit, value = cache.get(spec)
            if hit:
                results[index] = JobResult(spec=spec, value=value,
                                           cached=True)
                if progress is not None:
                    progress(results[index])
                continue
        pending.append(index)

    def finish(index: int, result: JobResult) -> None:
        results[index] = result
        if cache is not None and result.error is None:
            cache.put(result.spec, result.value)
        if progress is not None:
            progress(result)

    if workers <= 1 or len(pending) <= 1:
        for index in pending:
            finish(index, execute_job(specs[index]))
    elif pending:
        with ProcessPoolExecutor(
                max_workers=min(workers, len(pending))) as pool:
            futures = {pool.submit(execute_job, specs[index]): index
                       for index in pending}
            for future in as_completed(futures):
                finish(futures[future], future.result())
    return results  # type: ignore[return-value]  # every slot is filled


def failed(results: Sequence[JobResult]) -> List[JobResult]:
    """The subset of results that errored, in spec order."""
    return [result for result in results if result.error is not None]
