"""Figure 20: request-latency CDFs with and without the read cache.

Three systems — Client-Server, PMNet, PMNet+cache — serve a zipfian
GET/SET mix at 100 % and 50 % update ratios.  Claims to reproduce:

* at 100 % updates PMNet's whole CDF sits far left of the baseline
  (3.23x better p99);
* at 50 % updates PMNet-without-cache has a knee near the 50th
  percentile (reads still pay the full RTT), while PMNet+cache keeps
  improving past it (cache hits are sub-RTT);
* with caching the mean is ~3.36x better than Client-Server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.report import format_cdf
from repro.config import SystemConfig
from repro.experiments.common import Scale
from repro.experiments.deploy import build_client_server, build_pmnet_switch
from repro.experiments.driver import RunStats, run_closed_loop
from repro.workloads.handlers import StructureHandler
from repro.workloads.pmdk.hashmap import PMHashmap
from repro.workloads.ycsb import YCSBConfig, make_op_maker

UPDATE_RATIOS = (1.0, 0.5)
#: A hot keyspace so the in-network cache sees real hit rates, like the
#: paper's key-value workloads.
POPULATION = 512
ZIPF_THETA = 0.9


@dataclass
class Fig20Result:
    #: (system, update_ratio) -> latency stats.
    stats: Dict[Tuple[str, float], RunStats]
    cache_hit_rate: Dict[float, float]

    def mean_ratio(self, ratio: float, system: str = "pmnet+cache") -> float:
        base = self.stats[("client-server", ratio)].all_latencies.mean()
        return base / self.stats[(system, ratio)].all_latencies.mean()

    def p99_ratio(self, ratio: float, system: str = "pmnet") -> float:
        base = self.stats[("client-server", ratio)].all_latencies.p99()
        return base / self.stats[(system, ratio)].all_latencies.p99()

    def knee_fraction(self, ratio: float = 0.5,
                      system: str = "pmnet") -> float:
        """Where a system's CDF leaves the sub-RTT regime.

        Fig 20b's knee: the fraction of requests served at PMNet-ACK
        latency before the curve jumps to full-RTT (server-path) reads.
        Measured as the first fraction whose latency exceeds twice the
        curve's 25th percentile.
        """
        curve = self.stats[(system, ratio)].all_latencies.cdf(200)
        sub_rtt = 2 * self.stats[(system, ratio)].all_latencies.percentile(25)
        for value, fraction in curve:
            if value >= sub_rtt:
                return fraction
        return 1.0

    def format(self) -> str:
        parts: List[str] = ["Fig 20 — latency CDFs (us)"]
        for (system, ratio), stats in sorted(self.stats.items()):
            curve = [(v / 1000.0, f)
                     for v, f in stats.all_latencies.cdf(100)]
            parts.append(format_cdf(f"{system} @ {int(ratio * 100)}% upd",
                                    curve))
        parts.append(
            f"mean speedup with cache @100%: {self.mean_ratio(1.0):.2f}x "
            f"(paper: 3.36x)")
        parts.append(
            f"p99 speedup PMNet @100%: {self.p99_ratio(1.0):.2f}x "
            f"(paper: 3.23x)")
        parts.append(
            f"knee of PMNet-no-cache @50%: p{100 * self.knee_fraction():.0f} "
            f"(paper: ~p50)")
        for ratio, hit_rate in self.cache_hit_rate.items():
            parts.append(f"cache hit rate @{int(ratio * 100)}% upd: "
                         f"{100 * hit_rate:.1f}%")
        return "\n".join(parts)


def run(config: SystemConfig = None, quick: bool = True,  # type: ignore[assignment]
        ratios=UPDATE_RATIOS) -> Fig20Result:
    cfg = config if config is not None else SystemConfig()
    scale = Scale.pick(quick)
    stats: Dict[Tuple[str, float], RunStats] = {}
    hit_rates: Dict[float, float] = {}
    for ratio in ratios:
        op_maker = make_op_maker(YCSBConfig(
            update_ratio=ratio, population=POPULATION,
            zipf_theta=ZIPF_THETA, payload_bytes=cfg.payload_bytes))
        baseline = build_client_server(cfg.with_clients(scale.clients),
                                       handler=StructureHandler(PMHashmap()))
        stats[("client-server", ratio)] = run_closed_loop(
            baseline, op_maker, scale.requests_per_client, scale.warmup)
        pmnet = build_pmnet_switch(cfg.with_clients(scale.clients),
                                   handler=StructureHandler(PMHashmap()))
        stats[("pmnet", ratio)] = run_closed_loop(
            pmnet, op_maker, scale.requests_per_client, scale.warmup)
        cached = build_pmnet_switch(cfg.with_clients(scale.clients),
                                    handler=StructureHandler(PMHashmap()),
                                    enable_cache=True)
        stats[("pmnet+cache", ratio)] = run_closed_loop(
            cached, op_maker, scale.requests_per_client, scale.warmup)
        hit_rates[ratio] = cached.devices[0].cache.hit_rate()
    return Fig20Result(stats, hit_rates)
