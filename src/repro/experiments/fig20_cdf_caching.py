"""Figure 20: request-latency CDFs with and without the read cache.

Three systems — Client-Server, PMNet, PMNet+cache — serve a zipfian
GET/SET mix at 100 % and 50 % update ratios.  Claims to reproduce:

* at 100 % updates PMNet's whole CDF sits far left of the baseline
  (3.23x better p99);
* at 50 % updates PMNet-without-cache has a knee near the 50th
  percentile (reads still pay the full RTT), while PMNet+cache keeps
  improving past it (cache hits are sub-RTT);
* with caching the mean is ~3.36x better than Client-Server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_cdf
from repro.config import SystemConfig
from repro.experiments.common import Scale
from repro.experiments.deploy import DeploymentSpec, build
from repro.experiments.driver import RunStats, run_closed_loop
from repro.experiments.jobs import JobResult, JobSpec, execute_serial
from repro.workloads.handlers import StructureHandler
from repro.workloads.pmdk.hashmap import PMHashmap
from repro.workloads.ycsb import YCSBConfig, make_op_maker

UPDATE_RATIOS = (1.0, 0.5)
#: A hot keyspace so the in-network cache sees real hit rates, like the
#: paper's key-value workloads.
POPULATION = 512
ZIPF_THETA = 0.9


@dataclass
class Fig20Result:
    #: (system, update_ratio) -> latency stats.
    stats: Dict[Tuple[str, float], RunStats]
    cache_hit_rate: Dict[float, float]

    def mean_ratio(self, ratio: float, system: str = "pmnet+cache") -> float:
        base = self.stats[("client-server", ratio)].all_latencies.mean()
        return base / self.stats[(system, ratio)].all_latencies.mean()

    def p99_ratio(self, ratio: float, system: str = "pmnet") -> float:
        base = self.stats[("client-server", ratio)].all_latencies.p99()
        return base / self.stats[(system, ratio)].all_latencies.p99()

    def knee_fraction(self, ratio: float = 0.5,
                      system: str = "pmnet") -> float:
        """Where a system's CDF leaves the sub-RTT regime.

        Fig 20b's knee: the fraction of requests served at PMNet-ACK
        latency before the curve jumps to full-RTT (server-path) reads.
        Measured as the first fraction whose latency exceeds twice the
        curve's 25th percentile.
        """
        curve = self.stats[(system, ratio)].all_latencies.cdf(200)
        sub_rtt = 2 * self.stats[(system, ratio)].all_latencies.percentile(25)
        for value, fraction in curve:
            if value >= sub_rtt:
                return fraction
        return 1.0

    def format(self) -> str:
        parts: List[str] = ["Fig 20 — latency CDFs (us)"]
        for (system, ratio), stats in sorted(self.stats.items()):
            curve = [(v / 1000.0, f)
                     for v, f in stats.all_latencies.cdf(100)]
            parts.append(format_cdf(f"{system} @ {int(ratio * 100)}% upd",
                                    curve))
        parts.append(
            f"mean speedup with cache @100%: {self.mean_ratio(1.0):.2f}x "
            f"(paper: 3.36x)")
        parts.append(
            f"p99 speedup PMNet @100%: {self.p99_ratio(1.0):.2f}x "
            f"(paper: 3.23x)")
        parts.append(
            f"knee of PMNet-no-cache @50%: p{100 * self.knee_fraction():.0f} "
            f"(paper: ~p50)")
        for ratio, hit_rate in self.cache_hit_rate.items():
            parts.append(f"cache hit rate @{int(ratio * 100)}% upd: "
                         f"{100 * hit_rate:.1f}%")
        return "\n".join(parts)


SYSTEMS = ("client-server", "pmnet", "pmnet+cache")


def jobs(config: SystemConfig = None, quick: bool = True,  # type: ignore[assignment]
         ratios=UPDATE_RATIOS) -> List[JobSpec]:
    """One job per (update ratio, system) point."""
    cfg = config if config is not None else SystemConfig()
    quick = Scale.resolve_quick(quick)
    return [JobSpec(experiment="fig20",
                    point=f"ratio={ratio}/system={system}",
                    params={"ratio": ratio, "system": system},
                    seed=cfg.seed, quick=quick, config=config)
            for ratio in ratios for system in SYSTEMS]


def run_point(spec: JobSpec) -> Tuple[RunStats, Optional[float]]:
    """(latency stats, cache hit rate or None) for one system/ratio."""
    cfg = spec.resolved_config()
    scale = Scale.exact(spec.quick)
    system = spec.params["system"]
    op_maker = make_op_maker(YCSBConfig(
        update_ratio=spec.params["ratio"], population=POPULATION,
        zipf_theta=ZIPF_THETA, payload_bytes=cfg.payload_bytes))
    if system == "client-server":
        spec_deploy = DeploymentSpec(placement="none")
    else:
        spec_deploy = DeploymentSpec(placement="switch",
                                     enable_cache=(system == "pmnet+cache"))
    deployment = build(spec_deploy, cfg.with_clients(scale.clients),
                       handler=StructureHandler(PMHashmap()))
    stats = run_closed_loop(deployment, op_maker,
                            scale.requests_per_client, scale.warmup)
    hit_rate = (deployment.devices[0].cache.hit_rate()
                if system == "pmnet+cache" else None)
    return stats, hit_rate


def assemble(results: Sequence[JobResult]) -> Fig20Result:
    stats: Dict[Tuple[str, float], RunStats] = {}
    hit_rates: Dict[float, float] = {}
    for result in results:
        ratio = result.spec.params["ratio"]
        system = result.spec.params["system"]
        run_stats, hit_rate = result.value
        stats[(system, ratio)] = run_stats
        if hit_rate is not None:
            hit_rates[ratio] = hit_rate
    return Fig20Result(stats, hit_rates)


def run(config: SystemConfig = None, quick: bool = True,  # type: ignore[assignment]
        ratios=UPDATE_RATIOS) -> Fig20Result:
    return assemble(execute_serial(jobs(config, quick, ratios), run_point))
