"""Section VI-B6: recovering from server failures.

The paper's experiment: saturate the system so PMNet's log holds the
maximum number of pending requests, power-cut the server, restore it,
and measure (a) the average time to resend one logged request and (b)
the total recovery time (resend drain + application recovery).  Paper
numbers: ~67 us per resent request, ~4.4 s to drain a full log, 9.3 s
worst-case total — all far below a 2-3 minute server reboot.

A full 65k-entry drain is minutes of simulated-host CPU time, so the
default run scales the log down and reports per-request resend time,
from which the full-log drain time is extrapolated exactly the way the
paper's own arithmetic does (entries x per-request time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.report import format_table
from repro.config import SystemConfig
from repro.experiments.common import Scale
from repro.experiments.deploy import DeploymentSpec, build
from repro.experiments.jobs import JobResult, JobSpec, execute_serial
from repro.failure.injector import FailureInjector
from repro.sim.clock import microseconds, milliseconds, to_seconds
from repro.workloads.handlers import StructureHandler
from repro.workloads.kv import OpKind, Operation
from repro.workloads.pmdk.hashmap import PMHashmap


@dataclass
class RecoveryResult:
    logged_at_crash: int
    resent: int
    resend_window_ns: int
    app_recovery_ns: int
    total_recovery_ns: int
    durable: bool

    @property
    def per_request_resend_us(self) -> float:
        if self.resent == 0:
            return 0.0
        return self.resend_window_ns / self.resent / 1000.0

    def full_log_drain_seconds(self, entries: int = 65536) -> float:
        """Extrapolate draining a full log (the paper's 4.4 s point)."""
        return self.per_request_resend_us * entries / 1e6

    def format(self) -> str:
        rows = [
            ["logged entries at crash", self.logged_at_crash],
            ["entries resent", self.resent],
            ["per-request resend (us)",
             round(self.per_request_resend_us, 1)],
            ["app recovery (s)", round(to_seconds(self.app_recovery_ns), 3)],
            ["measured recovery total (s)",
             round(to_seconds(self.total_recovery_ns), 3)],
            ["extrapolated full-log drain (s)",
             round(self.full_log_drain_seconds(), 2)],
            ["every acked update recovered", self.durable],
        ]
        body = format_table(["metric", "value"], rows,
                            title="Sec VI-B6 — server failure recovery")
        return (f"{body}\n\npaper: ~67 us/request, ~4.4 s full drain, "
                "9.3 s worst-case total")


def jobs(config: Optional[SystemConfig] = None, quick: bool = True,
         clients: int = 8,
         requests_per_client: int = 120) -> List[JobSpec]:
    """The recovery scenario is one indivisible crash/restore run."""
    cfg = config if config is not None else SystemConfig()
    quick = Scale.resolve_quick(quick)
    return [JobSpec(experiment="sec6b6", point="crash-recover",
                    params={"clients": clients,
                            "requests_per_client": requests_per_client},
                    seed=cfg.seed, quick=quick, config=config)]


def run_point(spec: JobSpec) -> RecoveryResult:
    cfg = spec.resolved_config().with_clients(spec.params["clients"])
    requests_per_client = spec.params["requests_per_client"]
    if spec.quick:
        requests_per_client = min(requests_per_client, 80)
    handler = StructureHandler(PMHashmap())
    deployment = build(DeploymentSpec(placement="switch"), cfg,
                       handler=handler)
    sim = deployment.sim
    injector = FailureInjector(sim)
    acknowledged = {}

    def client_proc(index: int, client):
        for request_index in range(requests_per_client):
            key = (index, request_index)
            value = f"v{index}.{request_index}"
            completion = yield client.send_update(
                Operation(OpKind.SET, key=key, value=value))
            if completion.result.ok:
                acknowledged[key] = value

    deployment.open_all_sessions()
    for index, client in enumerate(deployment.clients):
        sim.spawn(client_proc(index, client), f"client{index}")

    # Crash early so most requests are still only in the PMNet log
    # (the paper's saturated worst case).
    crash_at = microseconds(120)
    injector.crash_server_at(deployment.server, crash_at)
    recover_at = crash_at + milliseconds(2)
    recovery_event = injector.recover_server_at(
        deployment.server, recover_at, deployment.pmnet_names)
    device = deployment.devices[0]
    logged_probe = {"count": 0}
    sim.schedule_at(recover_at - 1, lambda: logged_probe.update(
        count=device.log.durable_count))
    sim.run()
    assert recovery_event.triggered, "recovery never completed"
    engine = device.resend_engine
    resend_window = engine.duration_ns() or 0
    app_recovery = handler.recovery_cost_ns()
    durable = all(dict(handler.structure.items()).get(k) == v
                  for k, v in acknowledged.items())
    return RecoveryResult(
        logged_at_crash=logged_probe["count"],
        resent=int(engine.resends),
        resend_window_ns=resend_window,
        app_recovery_ns=app_recovery,
        total_recovery_ns=recovery_event.value,
        durable=durable,
    )


def assemble(results: Sequence[JobResult]) -> RecoveryResult:
    return results[0].value


def run(config: Optional[SystemConfig] = None, quick: bool = True,
        clients: int = 8, requests_per_client: int = 120) -> RecoveryResult:
    return assemble(execute_serial(
        jobs(config, quick, clients, requests_per_client), run_point))
