"""Figure 15: update latency of an ideal request handler vs payload size.

Paper observations to reproduce:
* PMNet-Switch / PMNet-NIC speed up a 50 B update by ~2.8-2.9x over the
  baseline, decaying to ~2.2x at 1000 B (per-byte costs grow on the
  device path);
* the absolute latency difference between the switch and NIC placements
  is negligible (< 1 us).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.report import format_table
from repro.config import SystemConfig
from repro.experiments.common import Scale
from repro.experiments.deploy import (
    build_client_server,
    build_pmnet_nic,
    build_pmnet_switch,
)
from repro.experiments.driver import run_closed_loop
from repro.workloads.kv import OpKind, Operation

PAYLOAD_SIZES = (50, 100, 250, 500, 1000)


@dataclass
class Fig15Result:
    #: design -> payload -> mean latency (us).
    latencies: Dict[str, Dict[int, float]]

    def speedup(self, design: str, payload: int) -> float:
        return (self.latencies["client-server"][payload]
                / self.latencies[design][payload])

    def switch_nic_gap_us(self, payload: int) -> float:
        return abs(self.latencies["pmnet-switch"][payload]
                   - self.latencies["pmnet-nic"][payload])

    def format(self) -> str:
        headers = ["payload B", "client-server us", "pmnet-switch us",
                   "pmnet-nic us", "switch speedup", "nic speedup"]
        rows: List[List[object]] = []
        for payload in sorted(self.latencies["client-server"]):
            rows.append([
                payload,
                round(self.latencies["client-server"][payload], 2),
                round(self.latencies["pmnet-switch"][payload], 2),
                round(self.latencies["pmnet-nic"][payload], 2),
                round(self.speedup("pmnet-switch", payload), 2),
                round(self.speedup("pmnet-nic", payload), 2),
            ])
        return format_table(
            headers, rows,
            title="Fig 15 — ideal-handler update latency vs payload size")


def run(config: SystemConfig = None, quick: bool = True,  # type: ignore[assignment]
        payloads=PAYLOAD_SIZES) -> Fig15Result:
    cfg = config if config is not None else SystemConfig()
    scale = Scale.pick(quick)
    # Latency microbenchmark: a single client, like the paper's Fig 15.
    requests = scale.requests_per_client * 2
    builders = {
        "client-server": build_client_server,
        "pmnet-switch": build_pmnet_switch,
        "pmnet-nic": build_pmnet_nic,
    }
    latencies: Dict[str, Dict[int, float]] = {name: {} for name in builders}
    for payload in payloads:
        payload_cfg = cfg.with_payload(payload).with_clients(1)

        def op_maker(ci: int, ri: int, rng, _size=payload):
            return (Operation(OpKind.SET, key=ri, value=b"x"), _size)

        for name, builder in builders.items():
            deployment = builder(payload_cfg)
            stats = run_closed_loop(deployment, op_maker,
                                    requests_per_client=requests,
                                    warmup_requests=scale.warmup)
            latencies[name][payload] = \
                stats.update_latencies.mean() / 1000.0
    return Fig15Result(latencies)
