"""Figure 15: update latency of an ideal request handler vs payload size.

Paper observations to reproduce:
* PMNet-Switch / PMNet-NIC speed up a 50 B update by ~2.8-2.9x over the
  baseline, decaying to ~2.2x at 1000 B (per-byte costs grow on the
  device path);
* the absolute latency difference between the switch and NIC placements
  is negligible (< 1 us).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.report import format_table
from repro.config import SystemConfig
from repro.experiments.common import Scale
from repro.experiments.deploy import DeploymentSpec, build
from repro.experiments.driver import run_closed_loop
from repro.experiments.jobs import JobResult, JobSpec, execute_serial
from repro.workloads.kv import OpKind, Operation

PAYLOAD_SIZES = (50, 100, 250, 500, 1000)

DESIGNS = {
    "client-server": DeploymentSpec(placement="none"),
    "pmnet-switch": DeploymentSpec(placement="switch"),
    "pmnet-nic": DeploymentSpec(placement="nic"),
}


@dataclass
class Fig15Result:
    #: design -> payload -> mean latency (us).
    latencies: Dict[str, Dict[int, float]]

    def speedup(self, design: str, payload: int) -> float:
        return (self.latencies["client-server"][payload]
                / self.latencies[design][payload])

    def switch_nic_gap_us(self, payload: int) -> float:
        return abs(self.latencies["pmnet-switch"][payload]
                   - self.latencies["pmnet-nic"][payload])

    def format(self) -> str:
        headers = ["payload B", "client-server us", "pmnet-switch us",
                   "pmnet-nic us", "switch speedup", "nic speedup"]
        rows: List[List[object]] = []
        for payload in sorted(self.latencies["client-server"]):
            rows.append([
                payload,
                round(self.latencies["client-server"][payload], 2),
                round(self.latencies["pmnet-switch"][payload], 2),
                round(self.latencies["pmnet-nic"][payload], 2),
                round(self.speedup("pmnet-switch", payload), 2),
                round(self.speedup("pmnet-nic", payload), 2),
            ])
        return format_table(
            headers, rows,
            title="Fig 15 — ideal-handler update latency vs payload size")


def jobs(config: SystemConfig = None, quick: bool = True,  # type: ignore[assignment]
         payloads=PAYLOAD_SIZES) -> List[JobSpec]:
    """One job per (payload, design) point."""
    cfg = config if config is not None else SystemConfig()
    quick = Scale.resolve_quick(quick)
    return [JobSpec(experiment="fig15",
                    point=f"payload={payload}/design={design}",
                    params={"payload": payload, "design": design},
                    seed=cfg.seed, quick=quick, config=config)
            for payload in payloads for design in DESIGNS]


def run_point(spec: JobSpec) -> float:
    """Mean update latency (us) of one design at one payload size."""
    cfg = spec.resolved_config()
    scale = Scale.exact(spec.quick)
    # Latency microbenchmark: a single client, like the paper's Fig 15.
    requests = scale.requests_per_client * 2
    payload = spec.params["payload"]
    payload_cfg = cfg.with_payload(payload).with_clients(1)

    def op_maker(ci: int, ri: int, rng, _size=payload):
        return (Operation(OpKind.SET, key=ri, value=b"x"), _size)

    deployment = build(DESIGNS[spec.params["design"]], payload_cfg)
    stats = run_closed_loop(deployment, op_maker,
                            requests_per_client=requests,
                            warmup_requests=scale.warmup)
    return stats.update_latencies.mean() / 1000.0


def assemble(results: Sequence[JobResult]) -> Fig15Result:
    latencies: Dict[str, Dict[int, float]] = {name: {} for name in DESIGNS}
    for result in results:
        params = result.spec.params
        latencies[params["design"]][params["payload"]] = result.value
    return Fig15Result(latencies)


def run(config: SystemConfig = None, quick: bool = True,  # type: ignore[assignment]
        payloads=PAYLOAD_SIZES) -> Fig15Result:
    return assemble(execute_serial(jobs(config, quick, payloads), run_point))
