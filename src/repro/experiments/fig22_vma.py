"""Figure 22: update throughput with an optimized network stack (libVMA).

Four designs — Client-Server and PMNet, each with the kernel stack and
with libVMA user-space stacks on both ends.  Claims: PMNet delivers
~3.08x better update throughput on the kernel stack and the benefit
*persists* (~3.56x) with libVMA, because PMNet also removes the server
processing wait, not just stack time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.report import format_table
from repro.config import SystemConfig
from repro.experiments.common import Scale
from repro.experiments.deploy import DeploymentSpec, build
from repro.experiments.driver import run_closed_loop
from repro.experiments.jobs import JobResult, JobSpec, execute_serial
from repro.workloads.kv import OpKind, Operation


@dataclass
class Fig22Result:
    #: design -> update throughput (ops/s).
    throughput: Dict[str, float]

    def speedup(self, vma: bool) -> float:
        suffix = "+vma" if vma else ""
        return (self.throughput[f"pmnet{suffix}"]
                / self.throughput[f"client-server{suffix}"])

    def format(self) -> str:
        headers = ["design", "ops/s"]
        rows = [[name, round(ops)] for name, ops in self.throughput.items()]
        body = format_table(
            headers, rows,
            title="Fig 22 — update throughput with optimized stacks")
        return (f"{body}\n\nPMNet speedup, kernel stack: "
                f"{self.speedup(False):.2f}x (paper: 3.08x); "
                f"with libVMA: {self.speedup(True):.2f}x (paper: 3.56x)")


#: Design points in the serial execution order.
DESIGNS = ("client-server", "pmnet", "client-server+vma", "pmnet+vma")


def jobs(config: SystemConfig = None,  # type: ignore[assignment]
         quick: bool = True) -> List[JobSpec]:
    """One job per stack/design combination."""
    cfg = config if config is not None else SystemConfig()
    quick = Scale.resolve_quick(quick)
    return [JobSpec(experiment="fig22", point=f"design={design}",
                    params={"design": design},
                    seed=cfg.seed, quick=quick, config=config)
            for design in DESIGNS]


def run_point(spec: JobSpec) -> float:
    """Update throughput (ops/s) of one stack/design combination."""
    cfg = spec.resolved_config()
    scale = Scale.exact(spec.quick)
    design = spec.params["design"]
    if design.endswith("+vma"):
        cfg = cfg.with_vma()
    placement = "switch" if design.startswith("pmnet") else "none"
    deployment = build(DeploymentSpec(placement=placement),
                       cfg.with_clients(scale.clients))

    def op_maker(ci: int, ri: int, rng):
        return (Operation(OpKind.SET, key=(ci, ri), value=b"x"),
                cfg.payload_bytes)

    stats = run_closed_loop(deployment, op_maker,
                            scale.requests_per_client, scale.warmup)
    return stats.ops_per_second()


def assemble(results: Sequence[JobResult]) -> Fig22Result:
    return Fig22Result({result.spec.params["design"]: result.value
                        for result in results})


def run(config: SystemConfig = None, quick: bool = True) -> Fig22Result:  # type: ignore[assignment]
    return assemble(execute_serial(jobs(config, quick), run_point))
