"""Figure 22: update throughput with an optimized network stack (libVMA).

Four designs — Client-Server and PMNet, each with the kernel stack and
with libVMA user-space stacks on both ends.  Claims: PMNet delivers
~3.08x better update throughput on the kernel stack and the benefit
*persists* (~3.56x) with libVMA, because PMNet also removes the server
processing wait, not just stack time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.report import format_table
from repro.config import SystemConfig
from repro.experiments.common import Scale
from repro.experiments.deploy import build_client_server, build_pmnet_switch
from repro.experiments.driver import run_closed_loop
from repro.workloads.kv import OpKind, Operation


@dataclass
class Fig22Result:
    #: design -> update throughput (ops/s).
    throughput: Dict[str, float]

    def speedup(self, vma: bool) -> float:
        suffix = "+vma" if vma else ""
        return (self.throughput[f"pmnet{suffix}"]
                / self.throughput[f"client-server{suffix}"])

    def format(self) -> str:
        headers = ["design", "ops/s"]
        rows = [[name, round(ops)] for name, ops in self.throughput.items()]
        body = format_table(
            headers, rows,
            title="Fig 22 — update throughput with optimized stacks")
        return (f"{body}\n\nPMNet speedup, kernel stack: "
                f"{self.speedup(False):.2f}x (paper: 3.08x); "
                f"with libVMA: {self.speedup(True):.2f}x (paper: 3.56x)")


def run(config: SystemConfig = None, quick: bool = True) -> Fig22Result:  # type: ignore[assignment]
    cfg = config if config is not None else SystemConfig()
    scale = Scale.pick(quick)

    def op_maker(ci: int, ri: int, rng):
        return (Operation(OpKind.SET, key=(ci, ri), value=b"x"),
                cfg.payload_bytes)

    points = {
        "client-server": build_client_server(cfg.with_clients(scale.clients)),
        "pmnet": build_pmnet_switch(cfg.with_clients(scale.clients)),
        "client-server+vma": build_client_server(
            cfg.with_vma().with_clients(scale.clients)),
        "pmnet+vma": build_pmnet_switch(
            cfg.with_vma().with_clients(scale.clients)),
    }
    throughput = {}
    for name, deployment in points.items():
        stats = run_closed_loop(deployment, op_maker,
                                scale.requests_per_client, scale.warmup)
        throughput[name] = stats.ops_per_second()
    return Fig22Result(throughput)
