"""The motivation experiment: sync vs async vs sync-over-PMNet.

Sec II-A's argument, run end to end:

* **sync / baseline** — the easy programming model, paying a full RTT
  per update;
* **async / baseline** — a windowed client hides the RTT (throughput
  recovers) but the application must manage in-flight state, failures,
  and completion tracking by hand;
* **sync / PMNet** — the easy model again, with the RTT collapsed by
  in-network persistence.

The claim to verify: sync-over-PMNet reaches the same order of
throughput as async-over-baseline — you keep the synchronous
programming model and still get the speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.report import format_table
from repro.config import SystemConfig
from repro.core.replication import NO_PMNET
from repro.experiments.common import Scale
from repro.experiments.deploy import DeploymentSpec, build
from repro.experiments.driver import run_closed_loop
from repro.experiments.jobs import JobResult, JobSpec, execute_serial
from repro.host.async_client import AsyncPMNetClient
from repro.workloads.handlers import StructureHandler
from repro.workloads.pmdk.hashmap import PMHashmap
from repro.workloads.kv import OpKind, Operation


@dataclass
class MotivationResult:
    #: design -> (ops/s, mean latency us)
    rows: Dict[str, tuple]

    def throughput(self, design: str) -> float:
        return self.rows[design][0]

    def latency(self, design: str) -> float:
        return self.rows[design][1]

    def format(self) -> str:
        table = [[name, round(ops), round(latency, 2)]
                 for name, (ops, latency) in self.rows.items()]
        body = format_table(["design", "ops/s", "mean latency us"], table,
                            title="Motivation — sync vs async vs "
                                  "sync-over-PMNet (Sec II-A)")
        sync_gain = (self.throughput("sync/pmnet")
                     / self.throughput("sync/baseline"))
        latency_vs_async = (self.latency("async/baseline")
                            / self.latency("sync/pmnet"))
        return (f"{body}\n"
                "async hides the RTT behind its window — throughput "
                "rises, but completion latency\n"
                "gets WORSE than even the sync baseline (requests queue "
                "behind the window) and the\n"
                "application must track every in-flight request.  "
                f"sync-over-PMNet keeps the easy\nmodel, gains "
                f"{sync_gain:.1f}x throughput, and beats async's "
                f"latency by {latency_vs_async:.1f}x.")


def _op_maker(payload: int):
    def maker(ci: int, ri: int, rng):
        return Operation(OpKind.SET, key=(ci, ri), value=b"x"), payload
    return maker


def _run_async_baseline(config: SystemConfig, requests: int,
                        window: int) -> tuple:
    deployment = build(DeploymentSpec(placement="none"), config,
                       handler=StructureHandler(PMHashmap()))
    sim = deployment.sim
    # Swap each client for the windowed variant (same host/session
    # machinery; the endpoint rebinds).
    async_clients = []
    for client in deployment.clients:
        client.host.endpoint = None
        replacement = AsyncPMNetClient(
            sim, client.host, config, "server", client.allocator,
            policy=NO_PMNET, window=window)
        async_clients.append(replacement)

    def producer(index, client):
        client.start_session()
        for i in range(requests):
            gate = client.submit(Operation(OpKind.SET, key=(index, i),
                                           value=b"x"),
                                 config.payload_bytes)
            if gate is not None:
                yield gate
            if config.client.think_time_ns:
                yield config.client.think_time_ns
        yield client.drain()

    for index, client in enumerate(async_clients):
        sim.spawn(producer(index, client), f"async{index}")
    sim.run()
    total_ops = sum(int(c.async_completions) for c in async_clients)
    assert total_ops == requests * len(async_clients)
    ops = sum(c.throughput.ops_per_second() for c in async_clients)
    mean_latency = (sum(c.latencies.mean() for c in async_clients)
                    / len(async_clients)) / 1000.0
    return ops, mean_latency


#: Design points in the serial execution order.
DESIGNS = ("sync/baseline", "async/baseline", "sync/pmnet")


def jobs(config: SystemConfig = None, quick: bool = True,  # type: ignore[assignment]
         window: int = 16) -> List[JobSpec]:
    """One job per programming-model/design combination."""
    cfg = config if config is not None else SystemConfig()
    quick = Scale.resolve_quick(quick)
    return [JobSpec(experiment="motivation", point=f"design={design}",
                    params={"design": design, "window": window},
                    seed=cfg.seed, quick=quick, config=config)
            for design in DESIGNS]


def run_point(spec: JobSpec) -> tuple:
    """(ops/s, mean latency us) of one programming-model point."""
    cfg = spec.resolved_config().with_clients(4 if spec.quick else 16)
    requests = 150 if spec.quick else 400
    design = spec.params["design"]
    if design == "async/baseline":
        return _run_async_baseline(cfg, requests, spec.params["window"])
    placement = "switch" if design == "sync/pmnet" else "none"
    stats = run_closed_loop(
        build(DeploymentSpec(placement=placement), cfg,
              handler=StructureHandler(PMHashmap())),
        _op_maker(cfg.payload_bytes), requests, 10)
    return (stats.ops_per_second(),
            stats.update_latencies.mean() / 1000.0)


def assemble(results: Sequence[JobResult]) -> MotivationResult:
    return MotivationResult({result.spec.params["design"]: result.value
                             for result in results})


def run(config: SystemConfig = None, quick: bool = True,  # type: ignore[assignment]
        window: int = 16) -> MotivationResult:
    return assemble(execute_serial(jobs(config, quick, window), run_point))
