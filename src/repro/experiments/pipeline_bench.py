"""End-to-end pipeline benchmark: events/request with folding on vs off.

Runs the Fig 16 stress shape (many closed-loop clients hammering the
PMNet-switch deployment with 1000 B updates) twice in one process —
once with the latency-folded fast paths active and once with
``PMNET_NO_FOLD=1`` semantics — with an
:class:`~repro.sim.profiler.EventProfiler` attached to each run.  The
result captures the whole point of the folded paths in three numbers:

* **events/request** in each mode (the fold removes intermediate hops),
* **requests/sec of wall clock** in each mode (fewer events -> faster), and
* **latencies_identical** — every per-request latency sample must be
  byte-identical across the modes, the folding correctness bar.

Two entry points use this module: ``pmnet-repro bench-pipeline``
(writes ``BENCH_pipeline.json``) and
``benchmarks/test_pipeline_events.py`` (guards the reduction floor).
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional

from repro.config import SystemConfig
from repro.experiments.deploy import build_pmnet_switch
from repro.experiments.driver import run_closed_loop
from repro.sim.profiler import EventProfiler
from repro.workloads.kv import OpKind, Operation

#: Result file emitted by ``pmnet-repro bench-pipeline``.
BENCH_RESULT_FILE = "BENCH_pipeline.json"

PAYLOAD = 1000


def _run_mode(no_fold: bool, clients: int, requests_per_client: int,
              seed: int, spans: bool = False) -> Dict[str, object]:
    """One measured run; folding is toggled via the same environment
    switch users have (read at deployment construction time).

    ``spans=True`` attaches an :class:`~repro.obs.context.Observability`
    with the span recorder enabled — the overhead-guarantee benchmark
    variant: latencies and event counts must not move.
    """
    from repro.obs.context import Observability

    previous = os.environ.get("PMNET_NO_FOLD")
    try:
        if no_fold:
            os.environ["PMNET_NO_FOLD"] = "1"
        else:
            os.environ.pop("PMNET_NO_FOLD", None)
        config = SystemConfig(seed=seed).with_clients(clients).with_payload(
            PAYLOAD)
        obs = Observability(spans=True) if spans else None
        deployment = build_pmnet_switch(config, obs=obs)
    finally:
        if previous is None:
            os.environ.pop("PMNET_NO_FOLD", None)
        else:
            os.environ["PMNET_NO_FOLD"] = previous

    profiler = EventProfiler()
    deployment.sim.attach_profiler(profiler)

    def op_maker(ci: int, ri: int, rng):
        return Operation(OpKind.SET, key=(ci, ri), value=b"x"), PAYLOAD

    started = time.perf_counter()
    stats = run_closed_loop(deployment, op_maker,
                            requests_per_client=requests_per_client,
                            warmup_requests=5)
    wall_seconds = time.perf_counter() - started
    requests = stats.update_latencies.count
    return {
        "mode": "no_fold" if no_fold else "fold",
        "requests": requests,
        "executed_events": deployment.sim.executed_events,
        "events_per_request": profiler.events_per_request(requests),
        "wall_seconds": wall_seconds,
        "requests_per_second": (requests / wall_seconds
                                if wall_seconds > 0 else 0.0),
        "top_call_sites": dict(profiler.top(10)),
        "latency_samples": stats.update_latencies.samples,
    }


def _best_of(no_fold: bool, clients: int, requests_per_client: int,
             seed: int, repeats: int, spans: bool = False) -> Dict[str, object]:
    """Repeat one mode, keeping the least-disturbed wall clock.

    Event counts and latency samples are deterministic — identical on
    every repeat — so only the wall-clock fields take the best-of-N
    microbenchmark reduction."""
    best = _run_mode(no_fold, clients, requests_per_client, seed, spans)
    for _ in range(repeats - 1):
        again = _run_mode(no_fold, clients, requests_per_client, seed, spans)
        if again["wall_seconds"] < best["wall_seconds"]:
            best["wall_seconds"] = again["wall_seconds"]
            best["requests_per_second"] = again["requests_per_second"]
    return best


def run_pipeline_benchmark(clients: int = 32, requests_per_client: int = 20,
                           seed: int = 0, repeats: int = 3,
                           spans: bool = False) -> Dict[str, object]:
    """Measure both modes; return the comparison (JSON-ready)."""
    if clients <= 0 or requests_per_client <= 0 or repeats <= 0:
        raise ValueError(
            "clients, requests_per_client, and repeats must be positive")
    fold = _best_of(False, clients, requests_per_client, seed, repeats, spans)
    no_fold = _best_of(True, clients, requests_per_client, seed, repeats,
                       spans)
    identical = fold.pop("latency_samples") == no_fold.pop("latency_samples")
    on = fold["events_per_request"]
    off = no_fold["events_per_request"]
    return {
        "benchmark": "pipeline_events",
        "clients": clients,
        "requests_per_client": requests_per_client,
        "seed": seed,
        "repeats": repeats,
        "spans": spans,
        "fold": fold,
        "no_fold": no_fold,
        "events_per_request_reduction": (off - on) / off if off else 0.0,
        "latencies_identical": identical,
    }


def write_result(result: Dict[str, object],
                 path: Optional[str] = None) -> str:
    """Write the enveloped benchmark report as JSON; return the path."""
    from repro.obs.export import write_bench_report

    target = path or BENCH_RESULT_FILE
    return write_bench_report('pipeline', result, target, quick=True)


def format_result(result: Dict[str, object]) -> str:
    fold = result["fold"]
    no_fold = result["no_fold"]
    reduction = result["events_per_request_reduction"]
    identical = ("identical" if result["latencies_identical"]
                 else "DIVERGED (bug!)")
    return "\n".join([
        f"pipeline events/request: {fold['events_per_request']:.2f} folded "
        f"vs {no_fold['events_per_request']:.2f} unfolded "
        f"({reduction:.1%} fewer)",
        f"wall-clock requests/sec: {fold['requests_per_second']:,.0f} folded "
        f"vs {no_fold['requests_per_second']:,.0f} unfolded",
        f"per-request latencies: {identical} across modes "
        f"({fold['requests']} requests, {result['clients']} clients)",
    ])
