"""End-to-end pipeline benchmark: events/request across fold levels.

Runs the Fig 16 stress shape (many closed-loop clients hammering the
PMNet-switch deployment with 1000 B updates) three times in one process
— once per fold level (``none``, ``stage``, ``whole``) — with an
:class:`~repro.sim.profiler.EventProfiler` attached to each run.  The
result captures the whole point of the folded paths in a few numbers:

* **events/request** at each level (each fold removes scheduled hops),
* **requests/sec of wall clock** at each level (fewer events -> faster),
* **latencies_identical** — every per-request latency sample must be
  byte-identical across all levels, the folding correctness bar, and
* **loadgen** — a flow-level closed-loop run with >= 10^4 modeled users
  proving the whole-request fold holds its event budget at user scale.

Two entry points use this module: ``pmnet-repro bench-pipeline``
(writes ``BENCH_pipeline.json``) and
``benchmarks/test_pipeline_events.py`` (guards the reduction floors).
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional

from repro.config import SystemConfig
from repro.experiments.deploy import DeploymentSpec, build
from repro.experiments.driver import run_closed_loop
from repro.sim.profiler import EventProfiler
from repro.workloads.kv import OpKind, Operation

#: Result file emitted by ``pmnet-repro bench-pipeline``.
BENCH_RESULT_FILE = "BENCH_pipeline.json"

PAYLOAD = 1000

#: The three fold levels, in ascending order of aggressiveness.
FOLD_MODES = ("none", "stage", "whole")

#: The loadgen leg must model at least this many users in one run.
LOADGEN_MIN_USERS = 10_000


def _run_mode(fold: str, clients: int, requests_per_client: int,
              seed: int, spans: bool = False) -> Dict[str, object]:
    """One measured run at fold level ``fold`` ("none"/"stage"/"whole");
    the level is toggled via the same ``PMNET_FOLD`` environment switch
    users have (read at deployment construction time).

    ``spans=True`` attaches an :class:`~repro.obs.context.Observability`
    with the span recorder enabled — the overhead-guarantee benchmark
    variant: latencies and event counts must not move.
    """
    from repro.obs.context import Observability

    if fold not in FOLD_MODES:
        raise ValueError(f"fold must be one of {FOLD_MODES}, got {fold!r}")
    previous = os.environ.get("PMNET_FOLD")
    previous_no_fold = os.environ.get("PMNET_NO_FOLD")
    try:
        os.environ.pop("PMNET_NO_FOLD", None)
        os.environ["PMNET_FOLD"] = fold
        config = SystemConfig(seed=seed).with_clients(clients).with_payload(
            PAYLOAD)
        obs = Observability(spans=True) if spans else None
        deployment = build(DeploymentSpec(placement="switch"), config,
                           obs=obs)
    finally:
        if previous is None:
            os.environ.pop("PMNET_FOLD", None)
        else:
            os.environ["PMNET_FOLD"] = previous
        if previous_no_fold is not None:
            os.environ["PMNET_NO_FOLD"] = previous_no_fold

    profiler = EventProfiler()
    deployment.sim.attach_profiler(profiler)

    def op_maker(ci: int, ri: int, rng):
        return Operation(OpKind.SET, key=(ci, ri), value=b"x"), PAYLOAD

    started = time.perf_counter()
    stats = run_closed_loop(deployment, op_maker,
                            requests_per_client=requests_per_client,
                            warmup_requests=5)
    wall_seconds = time.perf_counter() - started
    requests = stats.update_latencies.count
    return {
        "mode": fold,
        "requests": requests,
        "executed_events": deployment.sim.executed_events,
        "events_per_request": profiler.events_per_request(requests),
        "wall_seconds": wall_seconds,
        "requests_per_second": (requests / wall_seconds
                                if wall_seconds > 0 else 0.0),
        "top_call_sites": dict(profiler.top(10)),
        "kernel_stats": deployment.sim.kernel_stats(),
        "latency_samples": stats.update_latencies.samples,
    }


def _best_of(fold: str, clients: int, requests_per_client: int,
             seed: int, repeats: int, spans: bool = False) -> Dict[str, object]:
    """Repeat one fold level, keeping the least-disturbed wall clock.

    Event counts and latency samples are deterministic — identical on
    every repeat — so only the wall-clock fields take the best-of-N
    microbenchmark reduction."""
    best = _run_mode(fold, clients, requests_per_client, seed, spans)
    for _ in range(repeats - 1):
        again = _run_mode(fold, clients, requests_per_client, seed, spans)
        if again["wall_seconds"] < best["wall_seconds"]:
            best["wall_seconds"] = again["wall_seconds"]
            best["requests_per_second"] = again["requests_per_second"]
    return best


def _run_loadgen_floor(seed: int) -> Dict[str, object]:
    """The user-scale leg: >= 10^4 modeled closed-loop users through the
    flow-level generator, profiled under whole-request folding."""
    from repro.workloads.loadgen import LoadGenConfig, run_loadgen

    previous = os.environ.get("PMNET_FOLD")
    previous_no_fold = os.environ.get("PMNET_NO_FOLD")
    try:
        os.environ.pop("PMNET_NO_FOLD", None)
        os.environ["PMNET_FOLD"] = "whole"
        config = SystemConfig(seed=seed).with_payload(PAYLOAD)
        deployment = build(DeploymentSpec(placement="switch"), config)
    finally:
        if previous is None:
            os.environ.pop("PMNET_FOLD", None)
        else:
            os.environ["PMNET_FOLD"] = previous
        if previous_no_fold is not None:
            os.environ["PMNET_NO_FOLD"] = previous_no_fold

    profiler = EventProfiler()
    deployment.sim.attach_profiler(profiler)
    # window=8 keeps total in-flight at 512 (64 shards), comfortably
    # under the ~1.2k frames whose queueing delay would cross the 1 ms
    # client timeout and turn the measurement into a retransmission
    # storm; the other 9.5k users model think/wait state in O(1).
    loadgen = LoadGenConfig(mode="closed", users=LOADGEN_MIN_USERS,
                            total_requests=LOADGEN_MIN_USERS + 2_000,
                            window=8)
    result = run_loadgen(deployment, loadgen)
    return {
        "modeled_users": loadgen.users,
        "completed": result.completed,
        "events_per_request": profiler.events_per_request(result.completed),
        "ops_per_second": result.ops_per_second(),
        "sample_digest": result.digest(),
    }


def run_pipeline_benchmark(clients: int = 32, requests_per_client: int = 20,
                           seed: int = 0, repeats: int = 3,
                           spans: bool = False) -> Dict[str, object]:
    """Measure every fold level; return the comparison (JSON-ready)."""
    if clients <= 0 or requests_per_client <= 0 or repeats <= 0:
        raise ValueError(
            "clients, requests_per_client, and repeats must be positive")
    by_mode = {fold: _best_of(fold, clients, requests_per_client, seed,
                              repeats, spans)
               for fold in FOLD_MODES}
    samples = [mode.pop("latency_samples") for mode in by_mode.values()]
    identical = all(current == samples[0] for current in samples[1:])
    off = by_mode["none"]["events_per_request"]
    stage = by_mode["stage"]["events_per_request"]
    whole = by_mode["whole"]["events_per_request"]
    return {
        "benchmark": "pipeline_events",
        "clients": clients,
        "requests_per_client": requests_per_client,
        "seed": seed,
        "repeats": repeats,
        "spans": spans,
        # Historical key names: "fold" is the default (most aggressive)
        # level, "no_fold" the fully unfolded baseline.
        "fold": by_mode["whole"],
        "stage": by_mode["stage"],
        "no_fold": by_mode["none"],
        "events_per_request_reduction": (off - whole) / off if off else 0.0,
        "whole_vs_stage_reduction": ((stage - whole) / stage
                                     if stage else 0.0),
        "latencies_identical": identical,
        "loadgen": _run_loadgen_floor(seed),
    }


def write_result(result: Dict[str, object],
                 path: Optional[str] = None) -> str:
    """Write the enveloped benchmark report as JSON; return the path."""
    from repro.obs.export import write_bench_report

    target = path or BENCH_RESULT_FILE
    return write_bench_report('pipeline', result, target, quick=True)


def format_result(result: Dict[str, object]) -> str:
    fold = result["fold"]
    stage = result["stage"]
    no_fold = result["no_fold"]
    reduction = result["events_per_request_reduction"]
    whole_vs_stage = result["whole_vs_stage_reduction"]
    loadgen = result["loadgen"]
    identical = ("identical" if result["latencies_identical"]
                 else "DIVERGED (bug!)")
    return "\n".join([
        f"pipeline events/request: {fold['events_per_request']:.2f} whole "
        f"vs {stage['events_per_request']:.2f} stage "
        f"vs {no_fold['events_per_request']:.2f} unfolded "
        f"({reduction:.1%} fewer than unfolded, "
        f"{whole_vs_stage:.1%} fewer than stage)",
        f"wall-clock requests/sec: {fold['requests_per_second']:,.0f} whole "
        f"vs {no_fold['requests_per_second']:,.0f} unfolded",
        f"per-request latencies: {identical} across modes "
        f"({fold['requests']} requests, {result['clients']} clients)",
        f"loadgen floor: {loadgen['modeled_users']:,} modeled users, "
        f"{loadgen['events_per_request']:.2f} events/request",
    ])
