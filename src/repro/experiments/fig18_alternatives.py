"""Figure 18: PMNet vs client-side and server-side logging, +-replication.

Paper numbers (100 B payload, ideal handler):

===================  ==========  ===============
design               no repl us  3-way repl us
===================  ==========  ===============
client-side logging  10.4        41.61
PMNet                21.5        22.8
server-side logging  47.97       94.02
===================  ==========  ===============

The *shape* under test: client-side logging wins un-replicated (no
network stack at all) but collapses with replication; PMNet is nearly
replication-free; server-side logging is worst in both columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.report import format_table
from repro.baselines.deploy import build_client_logging, build_server_logging
from repro.config import SystemConfig
from repro.experiments.common import Scale
from repro.experiments.deploy import DeploymentSpec, build
from repro.experiments.driver import run_closed_loop
from repro.experiments.jobs import JobResult, JobSpec, execute_serial
from repro.workloads.kv import OpKind, Operation

#: Paper's reference numbers in microseconds, for the report.
PAPER_US = {
    ("client-log", 1): 10.4, ("client-log", 3): 41.61,
    ("pmnet", 1): 21.5, ("pmnet", 3): 22.8,
    ("server-log", 1): 47.97, ("server-log", 3): 94.02,
}


@dataclass
class Fig18Result:
    #: (design, replication) -> mean update latency (us).
    latencies: Dict[tuple, float]

    def format(self) -> str:
        headers = ["design", "replication", "measured us", "paper us"]
        rows = []
        for key in sorted(self.latencies):
            rows.append([key[0], key[1], round(self.latencies[key], 2),
                         PAPER_US.get(key, "-")])
        return format_table(
            headers, rows,
            title="Fig 18 — alternative logging designs (ideal handler)")


#: (design, replication) points, in the serial execution order.
POINTS = (("client-log", 1), ("client-log", 3), ("pmnet", 1), ("pmnet", 3),
          ("server-log", 1), ("server-log", 3))

def _build_pmnet(config, replication=1):
    return build(DeploymentSpec(placement="switch",
                                chain_length=replication), config)


_BUILDERS = {
    "client-log": build_client_logging,
    "pmnet": _build_pmnet,
    "server-log": build_server_logging,
}


def jobs(config: SystemConfig = None,  # type: ignore[assignment]
         quick: bool = True) -> List[JobSpec]:
    """One job per (design, replication) point."""
    cfg = config if config is not None else SystemConfig()
    quick = Scale.resolve_quick(quick)
    return [JobSpec(experiment="fig18",
                    point=f"design={design}/replication={replication}",
                    params={"design": design, "replication": replication},
                    seed=cfg.seed, quick=quick, config=config)
            for design, replication in POINTS]


def run_point(spec: JobSpec) -> float:
    """Mean update latency (us) of one logging design."""
    # Latency microbenchmark: few clients (replication needs 3 for the
    # client-side peers).
    cfg = spec.resolved_config().with_clients(3)
    requests = 120 if spec.quick else 400

    def op_maker(ci: int, ri: int, rng):
        return (Operation(OpKind.SET, key=(ci, ri), value=b"x"),
                cfg.payload_bytes)

    builder = _BUILDERS[spec.params["design"]]
    replication = spec.params["replication"]
    deployment = builder(cfg) if replication == 1 else builder(
        cfg, replication=replication)
    stats = run_closed_loop(deployment, op_maker,
                            requests_per_client=requests,
                            warmup_requests=10)
    return stats.update_latencies.mean() / 1000.0


def assemble(results: Sequence[JobResult]) -> Fig18Result:
    return Fig18Result({
        (result.spec.params["design"], result.spec.params["replication"]):
        result.value for result in results})


def run(config: SystemConfig = None, quick: bool = True) -> Fig18Result:  # type: ignore[assignment]
    return assemble(execute_serial(jobs(config, quick), run_point))
