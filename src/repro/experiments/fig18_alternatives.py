"""Figure 18: PMNet vs client-side and server-side logging, +-replication.

Paper numbers (100 B payload, ideal handler):

===================  ==========  ===============
design               no repl us  3-way repl us
===================  ==========  ===============
client-side logging  10.4        41.61
PMNet                21.5        22.8
server-side logging  47.97       94.02
===================  ==========  ===============

The *shape* under test: client-side logging wins un-replicated (no
network stack at all) but collapses with replication; PMNet is nearly
replication-free; server-side logging is worst in both columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.report import format_table
from repro.baselines.deploy import build_client_logging, build_server_logging
from repro.config import SystemConfig
from repro.experiments.deploy import build_pmnet_switch
from repro.experiments.driver import run_closed_loop
from repro.workloads.kv import OpKind, Operation

#: Paper's reference numbers in microseconds, for the report.
PAPER_US = {
    ("client-log", 1): 10.4, ("client-log", 3): 41.61,
    ("pmnet", 1): 21.5, ("pmnet", 3): 22.8,
    ("server-log", 1): 47.97, ("server-log", 3): 94.02,
}


@dataclass
class Fig18Result:
    #: (design, replication) -> mean update latency (us).
    latencies: Dict[tuple, float]

    def format(self) -> str:
        headers = ["design", "replication", "measured us", "paper us"]
        rows = []
        for key in sorted(self.latencies):
            rows.append([key[0], key[1], round(self.latencies[key], 2),
                         PAPER_US.get(key, "-")])
        return format_table(
            headers, rows,
            title="Fig 18 — alternative logging designs (ideal handler)")


def run(config: SystemConfig = None, quick: bool = True) -> Fig18Result:  # type: ignore[assignment]
    cfg = config if config is not None else SystemConfig()
    requests = 120 if quick else 400
    # Latency microbenchmark: few clients (replication needs 3 for the
    # client-side peers).
    cfg = cfg.with_clients(3)

    def op_maker(ci: int, ri: int, rng):
        return (Operation(OpKind.SET, key=(ci, ri), value=b"x"),
                cfg.payload_bytes)

    points = {
        ("client-log", 1): lambda: build_client_logging(cfg),
        ("client-log", 3): lambda: build_client_logging(cfg, replication=3),
        ("pmnet", 1): lambda: build_pmnet_switch(cfg),
        ("pmnet", 3): lambda: build_pmnet_switch(cfg, replication=3),
        ("server-log", 1): lambda: build_server_logging(cfg),
        ("server-log", 3): lambda: build_server_logging(cfg, replication=3),
    }
    latencies = {}
    for key, build in points.items():
        stats = run_closed_loop(build(), op_maker,
                                requests_per_client=requests,
                                warmup_requests=10)
        latencies[key] = stats.update_latencies.mean() / 1000.0
    return Fig18Result(latencies)
