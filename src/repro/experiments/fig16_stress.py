"""Figure 16: bandwidth vs latency under stress.

Clients scale up while sending 1000 B updates to an ideal handler.
Expected shape: latency stays flat while offered bandwidth is below the
10 Gbps port limit, then spikes as the bottleneck link saturates; both
PMNet placements sit below the baseline throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.report import format_table
from repro.config import SystemConfig
from repro.experiments.common import Scale
from repro.experiments.deploy import DeploymentSpec, build
from repro.experiments.driver import run_closed_loop
from repro.experiments.jobs import JobResult, JobSpec, execute_serial
from repro.workloads.kv import OpKind, Operation

PAYLOAD = 1000
CLIENT_COUNTS = (1, 2, 4, 8, 16, 32, 48, 64)

DESIGNS = {
    "client-server": DeploymentSpec(placement="none"),
    "pmnet-switch": DeploymentSpec(placement="switch"),
}


@dataclass
class Fig16Result:
    #: design -> list of (bandwidth_gbps, mean latency us) per client count.
    curves: Dict[str, List[Tuple[float, float]]]

    def saturation_bandwidth(self, design: str) -> float:
        """Highest observed bandwidth — should approach the 10 Gbps line."""
        return max(b for b, _l in self.curves[design])

    def latency_spike_ratio(self, design: str) -> float:
        """Last-point latency over first-point latency (the spike)."""
        first = self.curves[design][0][1]
        last = self.curves[design][-1][1]
        return last / first

    def format(self) -> str:
        headers = ["design", "clients", "offered Gbps", "mean latency us"]
        rows: List[List[object]] = []
        for design, curve in self.curves.items():
            for (bandwidth, latency), clients in zip(curve, CLIENT_COUNTS):
                rows.append([design, clients, round(bandwidth, 2),
                             round(latency, 2)])
        return format_table(headers, rows,
                            title="Fig 16 — bandwidth vs latency stress test")


def jobs(config: SystemConfig = None, quick: bool = True,  # type: ignore[assignment]
         client_counts=CLIENT_COUNTS) -> List[JobSpec]:
    """One job per (client count, design) point."""
    cfg = config if config is not None else SystemConfig()
    quick = Scale.resolve_quick(quick)
    return [JobSpec(experiment="fig16",
                    point=f"clients={clients}/design={design}",
                    params={"clients": clients, "design": design},
                    seed=cfg.seed, quick=quick, config=config)
            for clients in client_counts for design in DESIGNS]


def run_point(spec: JobSpec) -> Tuple[float, float]:
    """(offered bandwidth Gbps, mean update latency us) for one point."""
    cfg = spec.resolved_config().with_payload(PAYLOAD)
    requests = 60 if spec.quick else 200

    def op_maker(ci: int, ri: int, rng):
        return Operation(OpKind.SET, key=(ci, ri), value=b"x"), PAYLOAD

    wire_bits = 8 * (PAYLOAD + cfg.network.header_overhead_bytes
                     + 11)  # PMNet header rides in the payload
    deployment = build(DESIGNS[spec.params["design"]],
                       cfg.with_clients(spec.params["clients"]))
    stats = run_closed_loop(deployment, op_maker,
                            requests_per_client=requests,
                            warmup_requests=5)
    ops = stats.ops_per_second()
    return ops * wire_bits / 1e9, stats.update_latencies.mean() / 1000.0


def assemble(results: Sequence[JobResult]) -> Fig16Result:
    curves: Dict[str, List[Tuple[float, float]]] = {
        name: [] for name in DESIGNS}
    for result in results:
        curves[result.spec.params["design"]].append(result.value)
    return Fig16Result(curves)


def run(config: SystemConfig = None, quick: bool = True,  # type: ignore[assignment]
        client_counts=CLIENT_COUNTS) -> Fig16Result:
    return assemble(execute_serial(jobs(config, quick, client_counts),
                                   run_point))
