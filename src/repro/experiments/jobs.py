"""Job specs: every experiment sweep as self-contained, restartable units.

A figure of the paper's evaluation is a sweep of *independent,
deterministic* simulations (payload sizes in Fig 15, update ratios in
Fig 19, port speeds in Sec VII).  Each experiment module therefore
exposes three functions:

* ``jobs(config, quick, ...)`` — the sweep as a list of
  :class:`JobSpec`, each describing exactly one point;
* ``run_point(spec)`` — execute one point, building its own deployment
  from the spec (so the same-seed → bit-identical guarantee holds per
  job, no matter which process runs it);
* ``assemble(results)`` — reassemble the module's result object from
  the collected per-point values, in spec order, so the formatted
  table is byte-identical whether the points ran serially or fanned
  out across cores (:mod:`repro.experiments.parallel`).

``module.run()`` keeps its historical signature and is implemented as
``assemble(execute_serial(jobs(...)))`` — the serial path and the
parallel path share every line of per-point code.

Specs carry only picklable, JSON-canonicalizable state (primitives in
``params``, the frozen :class:`~repro.config.SystemConfig`), which is
what makes them safe to ship to worker processes and to hash into
on-disk cache keys (:mod:`repro.experiments.cache`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.config import SystemConfig


@dataclass(frozen=True)
class JobSpec:
    """One self-contained sweep point of one experiment."""

    #: Registry id of the experiment this point belongs to ("fig15").
    experiment: str
    #: Unique human-readable point label ("payload=50/design=pmnet-nic").
    point: str
    #: JSON-safe point parameters; ``run_point`` rebuilds everything
    #: (deployment, op maker, sweep knobs) from these.
    params: Dict[str, Any] = field(default_factory=dict)
    #: Simulator seed the point's deployment is built with.
    seed: int = 1
    #: Resolved scale profile (REPRO_FULL already folded in).
    quick: bool = True
    #: Base configuration; ``None`` means the calibrated default.
    config: Optional[SystemConfig] = None

    def resolved_config(self) -> SystemConfig:
        return self.config if self.config is not None else SystemConfig()


@dataclass
class JobResult:
    """What one executed (or cache-served) job hands back."""

    spec: JobSpec
    #: The module's per-point payload (a float, a row, a RunStats...).
    value: Any
    #: Wall-clock seconds spent simulating (0.0 for cache hits).
    elapsed_s: float = 0.0
    #: True when the value came from the on-disk result cache.
    cached: bool = False
    #: repr() of the exception if the point failed in a worker.
    error: Optional[str] = None


def canonical_spec(spec: JobSpec) -> str:
    """A canonical JSON encoding of a spec (stable across processes).

    Raises ``TypeError`` if ``params`` smuggles non-JSON-safe state —
    deliberately, since such a spec could not be faithfully hashed or
    shipped to a worker.
    """
    config = spec.config if spec.config is not None else SystemConfig()
    return json.dumps({
        "experiment": spec.experiment,
        "point": spec.point,
        "params": spec.params,
        "seed": spec.seed,
        "quick": spec.quick,
        "config": dataclasses.asdict(config),
    }, sort_keys=True)


def spec_key(spec: JobSpec, salt: str = "") -> str:
    """Content hash of a spec (plus a caller-supplied salt)."""
    digest = hashlib.sha256()
    digest.update(salt.encode("utf-8"))
    digest.update(canonical_spec(spec).encode("utf-8"))
    return digest.hexdigest()


def execute_serial(specs: Sequence[JobSpec],
                   run_point: Callable[[JobSpec], Any]) -> List[JobResult]:
    """Run a module's own specs inline, in order (the serial path).

    Exceptions propagate, exactly as the pre-harness ``run()`` loops
    did; only the parallel executor converts failures into per-job
    ``error`` records.
    """
    results = []
    for spec in specs:
        started = time.perf_counter()
        value = run_point(spec)
        results.append(JobResult(spec=spec, value=value,
                                 elapsed_s=time.perf_counter() - started))
    return results


def values(results: Sequence[JobResult]) -> List[Any]:
    """The payloads of a result list, in spec order."""
    return [result.value for result in results]


def by_point(results: Sequence[JobResult]) -> Dict[str, Any]:
    """Payloads keyed by point label (for order-insensitive assembly)."""
    return {result.spec.point: result.value for result in results}
