"""End-to-end wall-clock benchmark of the parallel experiment harness.

The sweep points of the evaluation are embarrassingly parallel (see
:mod:`repro.experiments.jobs`); this module measures how much of that
parallelism the harness actually converts into wall-clock speedup on
the current machine.  It flattens the selected experiments into one job
list, runs it twice — once with ``jobs=1`` (the serial reference path)
and once with the requested worker count — verifies the assembled
report text is byte-identical between the two, and reports both times
plus the speedup.

Two entry points use this module: ``pmnet-repro bench-experiments``
(writes ``BENCH_experiments.json``) and
``benchmarks/test_experiment_harness.py``.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence

from repro.experiments import registry
from repro.experiments.jobs import JobResult, JobSpec
from repro.experiments.parallel import default_jobs, failed, run_jobs

#: Result file emitted by ``pmnet-repro bench-experiments``.
BENCH_RESULT_FILE = "BENCH_experiments.json"

#: Default subset: the experiments that dominate ``run all`` wall time,
#: plus cheap ones so the job list has realistically uneven grain.
DEFAULT_EXPERIMENT_IDS = ("fig02", "fig15", "fig16", "fig18", "fig21",
                         "sec7", "ablations")


class ExperimentError(RuntimeError):
    """A benchmark run had failing jobs — timings would be meaningless."""


def _assemble_all(experiment_ids: Sequence[str],
                  results: Sequence[JobResult]) -> Dict[str, str]:
    """Per-experiment formatted text from one flattened result list."""
    errors = failed(results)
    if errors:
        summary = "; ".join(f"{r.spec.experiment}/{r.spec.point}: {r.error}"
                            for r in errors[:3])
        raise ExperimentError(
            f"{len(errors)} job(s) failed during benchmark: {summary}")
    outputs: Dict[str, str] = {}
    for experiment_id in experiment_ids:
        chunk = [r for r in results if r.spec.experiment == experiment_id]
        outputs[experiment_id] = registry.get(
            experiment_id).assemble(chunk)
    return outputs


def run_experiment_benchmark(
        experiment_ids: Optional[Sequence[str]] = None,
        jobs: Optional[int] = None,
        quick: bool = True) -> Dict[str, object]:
    """Serial-vs-parallel wall clock over the selected experiments.

    Both passes run uncached — the point is to time the simulations,
    not the pickle loader.  ``quick`` is accepted for symmetry with the
    experiment modules but the benchmark always uses the quick profile
    unless REPRO_FULL resolves otherwise inside ``jobs()``.
    """
    selected = list(experiment_ids or DEFAULT_EXPERIMENT_IDS)
    workers = jobs if jobs is not None else default_jobs()
    specs: List[JobSpec] = []
    for experiment_id in selected:
        specs.extend(registry.get(experiment_id).jobs(quick=quick))

    started = time.perf_counter()
    serial_results = run_jobs(specs, jobs=1)
    serial_seconds = time.perf_counter() - started
    serial_outputs = _assemble_all(selected, serial_results)

    started = time.perf_counter()
    parallel_results = run_jobs(specs, jobs=workers)
    parallel_seconds = time.perf_counter() - started
    parallel_outputs = _assemble_all(selected, parallel_results)

    identical = serial_outputs == parallel_outputs
    per_experiment = {
        experiment_id: {
            "jobs": sum(1 for s in specs
                        if s.experiment == experiment_id),
            "serial_seconds": round(sum(
                r.elapsed_s for r in serial_results
                if r.spec.experiment == experiment_id), 3),
        }
        for experiment_id in selected
    }
    return {
        "benchmark": "experiment_harness",
        "experiments": selected,
        "quick": quick,
        "jobs": workers,
        "job_count": len(specs),
        "cpu_count": os.cpu_count(),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": (serial_seconds / parallel_seconds
                    if parallel_seconds > 0 else 0.0),
        "outputs_identical": identical,
        "per_experiment": per_experiment,
    }


def write_result(result: Dict[str, object],
                 path: Optional[str] = None) -> str:
    """Write the enveloped benchmark report as JSON; return the path."""
    from repro.obs.export import write_bench_report

    target = path or BENCH_RESULT_FILE
    return write_bench_report('experiments', result, target, quick=bool(result.get("quick", True)))


def format_result(result: Dict[str, object]) -> str:
    return (f"experiment harness: {result['job_count']} jobs, "
            f"serial {result['serial_seconds']:.1f}s, "
            f"parallel(x{result['jobs']}) "
            f"{result['parallel_seconds']:.1f}s, "
            f"speedup {result['speedup']:.2f}x, "
            f"outputs identical: {result['outputs_identical']}")
