"""Ablations of PMNet's design choices (DESIGN.md section 4).

* ``log_queue_sizing`` — Sec V-A/VII: the BDP-sized SRAM log queue is
  what keeps the pipeline at line rate; shrinking it forces bypasses
  (requests forwarded without logging) under load.
* ``pm_latency_sensitivity`` — Sec VII: PMNet's client-visible latency
  tracks the in-network PM's write latency almost 1:1.
* ``log_capacity`` — Sec IV-B1: a full log silently degrades to
  forward-without-ack; clients fall back to server completions instead
  of failing.
* ``tcp_conversion`` — Sec VI-A3: converting a TCP workload to the
  UDP-based PMNet protocol costs ~9 %; the TCP baselines are therefore
  the strongest baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.config import TCP_TO_UDP_CONVERSION_OVERHEAD, SystemConfig
from repro.experiments.common import Scale
from repro.experiments.deploy import DeploymentSpec, build
from repro.experiments.driver import run_closed_loop
from repro.experiments.jobs import JobResult, JobSpec, execute_serial
from repro.host.stackmodel import TCP
from repro.workloads.handlers import StructureHandler
from repro.workloads.kv import OpKind, Operation
from repro.workloads.pmdk.hashmap import PMHashmap
from repro.workloads.redis import RedisHandler
from repro.workloads.ycsb import YCSBConfig, make_op_maker


def _set_op_maker(payload: int):
    def op_maker(ci: int, ri: int, rng):
        return Operation(OpKind.SET, key=(ci, ri), value=b"x"), payload
    return op_maker


@dataclass
class AblationResult:
    title: str
    headers: List[str]
    rows: List[List[object]]
    notes: str = ""

    def format(self) -> str:
        body = format_table(self.headers, self.rows, title=self.title)
        return f"{body}\n{self.notes}" if self.notes else body


def _log_queue_sizing_point(spec: JobSpec) -> List[object]:
    """One queue size under load -> a bypass-accounting table row."""
    cfg = spec.resolved_config()
    scale = Scale.exact(spec.quick)
    cfg = cfg.with_clients(max(scale.clients, 16)).with_payload(1000)
    size = spec.params["queue_bytes"]
    sized = replace(cfg, log=replace(cfg.log, write_queue_bytes=size))
    deployment = build(DeploymentSpec(placement="switch"), sized)
    stats = run_closed_loop(deployment, _set_op_maker(1000),
                            scale.requests_per_client, scale.warmup)
    device = deployment.devices[0]
    bypassed = int(device.log.bypassed_queue_busy)
    logged = int(device.log.logged)
    total = bypassed + logged
    return [size, logged, bypassed,
            round(100.0 * bypassed / total, 1) if total else 0.0,
            round(stats.update_latencies.mean() / 1000.0, 2)]


def log_queue_sizing(config: SystemConfig = None,  # type: ignore[assignment]
                     quick: bool = True,
                     queue_bytes: Tuple[int, ...] = (256, 1024, 4096, 16384)
                     ) -> AblationResult:
    """Shrinking the write log queue forces line-rate bypasses."""
    specs = jobs(config, quick, kinds=("log_queue_sizing",),
                 points={"log_queue_sizing": queue_bytes})
    return assemble(execute_serial(specs, run_point))["log_queue_sizing"]


def _pm_latency_point(spec: JobSpec) -> List[object]:
    """One PM write latency -> (write ns, client RTT us) row."""
    cfg = spec.resolved_config().with_clients(1)
    requests = 80 if spec.quick else 300
    write_ns = spec.params["write_latency_ns"]
    sized = replace(cfg, network_pm=replace(cfg.network_pm,
                                            write_latency_ns=write_ns))
    deployment = build(DeploymentSpec(placement="switch"), sized)
    stats = run_closed_loop(deployment, _set_op_maker(cfg.payload_bytes),
                            requests, 8)
    return [write_ns, round(stats.update_latencies.mean() / 1000.0, 2)]


def pm_latency_sensitivity(config: SystemConfig = None,  # type: ignore[assignment]
                           quick: bool = True,
                           latencies_ns: Tuple[int, ...] = (
                               100, 273, 500, 1000, 5000)) -> AblationResult:
    """Client-visible RTT vs the in-network PM write latency."""
    specs = jobs(config, quick, kinds=("pm_latency_sensitivity",),
                 points={"pm_latency_sensitivity": latencies_ns})
    return assemble(execute_serial(specs,
                                   run_point))["pm_latency_sensitivity"]


def _log_capacity_point(spec: JobSpec) -> List[object]:
    """One log capacity -> full-log bypass-accounting table row."""
    cfg = spec.resolved_config()
    scale = Scale.exact(spec.quick)
    cfg = cfg.with_clients(max(scale.clients, 8))
    # A deliberately slow handler keeps entries alive in the log.
    capacity = spec.params["num_entries"]
    sized = replace(cfg, log=replace(cfg.log, num_entries=capacity))
    deployment = build(DeploymentSpec(placement="switch"), sized,
                       handler=StructureHandler(PMHashmap()))
    stats = run_closed_loop(deployment, _set_op_maker(cfg.payload_bytes),
                            scale.requests_per_client, scale.warmup)
    device = deployment.devices[0]
    via = stats.completions_by_via
    return [
        capacity,
        int(device.log.bypassed_full),
        via.get("pmnet", 0),
        via.get("server", 0),
        round(stats.update_latencies.mean() / 1000.0, 2),
    ]


def log_capacity(config: SystemConfig = None,  # type: ignore[assignment]
                 quick: bool = True,
                 capacities: Tuple[int, ...] = (8, 64, 1024, 65536)
                 ) -> AblationResult:
    """A (nearly) full log bypasses silently; clients fall back."""
    specs = jobs(config, quick, kinds=("log_capacity",),
                 points={"log_capacity": capacities})
    return assemble(execute_serial(specs, run_point))["log_capacity"]


def tcp_conversion(config: SystemConfig = None,  # type: ignore[assignment]
                   quick: bool = True) -> AblationResult:
    """TCP baseline vs UDP-converted baseline for a Redis workload.

    The conversion library re-implements TCP's guarantees (ordering,
    retransmission buffers, stream framing) in user space over UDP
    (Sec IV-A2, similar to [96]) — so the converted app pays the same
    reliability work *plus* the emulation layer's bookkeeping.  That is
    why the paper measured the conversion as a net ~9% slowdown and
    kept native TCP as the stronger baseline.
    """
    specs = jobs(config, quick, kinds=("tcp_conversion",))
    return assemble(execute_serial(specs, run_point))["tcp_conversion"]


def _tcp_conversion_point(spec: JobSpec) -> float:
    """Throughput (ops/s) of the native or the converted Redis stack."""
    cfg = spec.resolved_config()
    scale = Scale.exact(spec.quick)
    op_maker = make_op_maker(YCSBConfig(update_ratio=1.0,
                                        payload_bytes=cfg.payload_bytes))
    sized = cfg.with_clients(scale.clients)
    if spec.params["variant"] == "udp":
        # Converted stack: TCP-equivalent reliability work still happens
        # (we keep the TCP per-side cost) and the shim inflates
        # per-packet stack time by the measured conversion overhead on
        # both hosts.
        inflation = 1 + 1.5 * TCP_TO_UDP_CONVERSION_OVERHEAD
        sized = replace(
            sized,
            client_stack=replace(
                sized.client_stack,
                send_ns=round(sized.client_stack.send_ns * inflation),
                recv_ns=round(sized.client_stack.recv_ns * inflation)),
            server_stack=replace(
                sized.server_stack,
                send_ns=round(sized.server_stack.send_ns * inflation),
                recv_ns=round(sized.server_stack.recv_ns * inflation)))
    stats = run_closed_loop(
        build(DeploymentSpec(placement="none", transport=TCP), sized,
              handler=RedisHandler()),
        op_maker, scale.requests_per_client, scale.warmup)
    return stats.ops_per_second()


#: Default sweep points per ablation kind, in the run_all order.
DEFAULT_POINTS: Dict[str, Tuple] = {
    "log_queue_sizing": (256, 1024, 4096, 16384),
    "pm_latency_sensitivity": (100, 273, 500, 1000, 5000),
    "log_capacity": (8, 64, 1024, 65536),
    "tcp_conversion": ("tcp", "udp"),
}

#: kind -> the JobSpec param name its sweep value lands in.
_PARAM_NAMES = {
    "log_queue_sizing": "queue_bytes",
    "pm_latency_sensitivity": "write_latency_ns",
    "log_capacity": "num_entries",
    "tcp_conversion": "variant",
}

_POINT_RUNNERS = {
    "log_queue_sizing": _log_queue_sizing_point,
    "pm_latency_sensitivity": _pm_latency_point,
    "log_capacity": _log_capacity_point,
    "tcp_conversion": _tcp_conversion_point,
}


def jobs(config: SystemConfig = None, quick: bool = True,  # type: ignore[assignment]
         kinds: Optional[Sequence[str]] = None,
         points: Optional[Dict[str, Tuple]] = None) -> List[JobSpec]:
    """One job per (ablation kind, sweep value) point."""
    cfg = config if config is not None else SystemConfig()
    quick = Scale.resolve_quick(quick)
    selected = kinds if kinds is not None else tuple(DEFAULT_POINTS)
    overrides = points or {}
    specs = []
    for kind in selected:
        param = _PARAM_NAMES[kind]
        for value in overrides.get(kind, DEFAULT_POINTS[kind]):
            specs.append(JobSpec(
                experiment="ablations", point=f"{kind}/{param}={value}",
                params={"kind": kind, param: value},
                seed=cfg.seed, quick=quick, config=config))
    return specs


def run_point(spec: JobSpec):
    return _POINT_RUNNERS[spec.params["kind"]](spec)


def _assemble_kind(kind: str, values: List) -> AblationResult:
    if kind == "log_queue_sizing":
        return AblationResult(
            title="Ablation — log queue sizing (1000 B updates, loaded)",
            headers=["queue bytes", "logged", "bypassed(queue)", "bypass %",
                     "mean latency us"],
            rows=values,
            notes="Sec V-A sizes the queue at the PM-latency BDP (4 KB); "
                  "smaller queues push requests onto the slow server path.")
    if kind == "pm_latency_sensitivity":
        return AblationResult(
            title="Ablation — in-network PM write latency sensitivity",
            headers=["PM write ns", "PMNet RTT us"],
            rows=values,
            notes="The FPGA's 273 ns DRAM write (Sec V-A) adds <2% of the "
                  "RTT; even 5 us media would keep PMNet well under the "
                  "baseline.")
    if kind == "log_capacity":
        return AblationResult(
            title="Ablation — log capacity (full-log bypass policy)",
            headers=["entries", "bypassed(full)", "via pmnet", "via server",
                     "mean latency us"],
            rows=values,
            notes="Sec IV-B1: when the log is full PMNet forwards without "
                  "acknowledging; correctness holds, latency degrades "
                  "toward the baseline.")
    # tcp_conversion: values are [tcp_ops, udp_ops] in jobs() order.
    tcp_ops, udp_ops = values
    rows = [
        ["tcp (native)", round(tcp_ops)],
        ["udp (converted)", round(udp_ops)],
        ["conversion slowdown %", round(100 * (tcp_ops / udp_ops - 1), 1)],
    ]
    return AblationResult(
        title="Ablation — TCP-to-UDP conversion overhead (Redis)",
        headers=["variant", "ops/s"],
        rows=rows,
        notes="Sec VI-A3 measured ~9%; the paper therefore keeps TCP as "
              "the best-performing baseline for Redis/Twitter/TPCC.")


def assemble(results: Sequence[JobResult]) -> Dict[str, AblationResult]:
    grouped: Dict[str, List] = {}
    for result in results:
        grouped.setdefault(result.spec.params["kind"],
                           []).append(result.value)
    return {kind: _assemble_kind(kind, values)
            for kind, values in grouped.items()}


def run_all(quick: bool = True) -> Dict[str, AblationResult]:
    return assemble(execute_serial(jobs(quick=quick), run_point))
