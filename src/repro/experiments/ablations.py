"""Ablations of PMNet's design choices (DESIGN.md section 4).

* ``log_queue_sizing`` — Sec V-A/VII: the BDP-sized SRAM log queue is
  what keeps the pipeline at line rate; shrinking it forces bypasses
  (requests forwarded without logging) under load.
* ``pm_latency_sensitivity`` — Sec VII: PMNet's client-visible latency
  tracks the in-network PM's write latency almost 1:1.
* ``log_capacity`` — Sec IV-B1: a full log silently degrades to
  forward-without-ack; clients fall back to server completions instead
  of failing.
* ``tcp_conversion`` — Sec VI-A3: converting a TCP workload to the
  UDP-based PMNet protocol costs ~9 %; the TCP baselines are therefore
  the strongest baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from repro.analysis.report import format_table
from repro.config import TCP_TO_UDP_CONVERSION_OVERHEAD, SystemConfig
from repro.experiments.common import Scale
from repro.experiments.deploy import build_client_server, build_pmnet_switch
from repro.experiments.driver import run_closed_loop
from repro.host.stackmodel import TCP
from repro.workloads.handlers import StructureHandler
from repro.workloads.kv import OpKind, Operation
from repro.workloads.pmdk.hashmap import PMHashmap
from repro.workloads.redis import RedisHandler
from repro.workloads.ycsb import YCSBConfig, make_op_maker


def _set_op_maker(payload: int):
    def op_maker(ci: int, ri: int, rng):
        return Operation(OpKind.SET, key=(ci, ri), value=b"x"), payload
    return op_maker


@dataclass
class AblationResult:
    title: str
    headers: List[str]
    rows: List[List[object]]
    notes: str = ""

    def format(self) -> str:
        body = format_table(self.headers, self.rows, title=self.title)
        return f"{body}\n{self.notes}" if self.notes else body


def log_queue_sizing(config: SystemConfig = None,  # type: ignore[assignment]
                     quick: bool = True,
                     queue_bytes: Tuple[int, ...] = (256, 1024, 4096, 16384)
                     ) -> AblationResult:
    """Shrinking the write log queue forces line-rate bypasses."""
    cfg = config if config is not None else SystemConfig()
    scale = Scale.pick(quick)
    cfg = cfg.with_clients(max(scale.clients, 16)).with_payload(1000)
    rows = []
    for size in queue_bytes:
        sized = replace(cfg, log=replace(cfg.log, write_queue_bytes=size))
        deployment = build_pmnet_switch(sized)
        stats = run_closed_loop(deployment, _set_op_maker(1000),
                                scale.requests_per_client, scale.warmup)
        device = deployment.devices[0]
        bypassed = int(device.log.bypassed_queue_busy)
        logged = int(device.log.logged)
        total = bypassed + logged
        rows.append([size, logged, bypassed,
                     round(100.0 * bypassed / total, 1) if total else 0.0,
                     round(stats.update_latencies.mean() / 1000.0, 2)])
    return AblationResult(
        title="Ablation — log queue sizing (1000 B updates, loaded)",
        headers=["queue bytes", "logged", "bypassed(queue)", "bypass %",
                 "mean latency us"],
        rows=rows,
        notes="Sec V-A sizes the queue at the PM-latency BDP (4 KB); "
              "smaller queues push requests onto the slow server path.")


def pm_latency_sensitivity(config: SystemConfig = None,  # type: ignore[assignment]
                           quick: bool = True,
                           latencies_ns: Tuple[int, ...] = (
                               100, 273, 500, 1000, 5000)) -> AblationResult:
    """Client-visible RTT vs the in-network PM write latency."""
    cfg = (config if config is not None else SystemConfig()).with_clients(1)
    requests = 80 if quick else 300
    rows = []
    for write_ns in latencies_ns:
        sized = replace(cfg, network_pm=replace(cfg.network_pm,
                                                write_latency_ns=write_ns))
        deployment = build_pmnet_switch(sized)
        stats = run_closed_loop(deployment, _set_op_maker(cfg.payload_bytes),
                                requests, 8)
        rows.append([write_ns,
                     round(stats.update_latencies.mean() / 1000.0, 2)])
    return AblationResult(
        title="Ablation — in-network PM write latency sensitivity",
        headers=["PM write ns", "PMNet RTT us"],
        rows=rows,
        notes="The FPGA's 273 ns DRAM write (Sec V-A) adds <2% of the "
              "RTT; even 5 us media would keep PMNet well under the "
              "baseline.")


def log_capacity(config: SystemConfig = None,  # type: ignore[assignment]
                 quick: bool = True,
                 capacities: Tuple[int, ...] = (8, 64, 1024, 65536)
                 ) -> AblationResult:
    """A (nearly) full log bypasses silently; clients fall back."""
    cfg = config if config is not None else SystemConfig()
    scale = Scale.pick(quick)
    cfg = cfg.with_clients(max(scale.clients, 8))
    # A deliberately slow handler keeps entries alive in the log.
    rows = []
    for capacity in capacities:
        sized = replace(cfg, log=replace(cfg.log, num_entries=capacity))
        deployment = build_pmnet_switch(
            sized, handler=StructureHandler(PMHashmap()))
        stats = run_closed_loop(deployment, _set_op_maker(cfg.payload_bytes),
                                scale.requests_per_client, scale.warmup)
        device = deployment.devices[0]
        via = stats.completions_by_via
        rows.append([
            capacity,
            int(device.log.bypassed_full),
            via.get("pmnet", 0),
            via.get("server", 0),
            round(stats.update_latencies.mean() / 1000.0, 2),
        ])
    return AblationResult(
        title="Ablation — log capacity (full-log bypass policy)",
        headers=["entries", "bypassed(full)", "via pmnet", "via server",
                 "mean latency us"],
        rows=rows,
        notes="Sec IV-B1: when the log is full PMNet forwards without "
              "acknowledging; correctness holds, latency degrades "
              "toward the baseline.")


def tcp_conversion(config: SystemConfig = None,  # type: ignore[assignment]
                   quick: bool = True) -> AblationResult:
    """TCP baseline vs UDP-converted baseline for a Redis workload.

    The conversion library re-implements TCP's guarantees (ordering,
    retransmission buffers, stream framing) in user space over UDP
    (Sec IV-A2, similar to [96]) — so the converted app pays the same
    reliability work *plus* the emulation layer's bookkeeping.  That is
    why the paper measured the conversion as a net ~9% slowdown and
    kept native TCP as the stronger baseline.
    """
    cfg = config if config is not None else SystemConfig()
    scale = Scale.pick(quick)
    op_maker = make_op_maker(YCSBConfig(update_ratio=1.0,
                                        payload_bytes=cfg.payload_bytes))
    sized = cfg.with_clients(scale.clients)
    tcp_stats = run_closed_loop(
        build_client_server(sized, handler=RedisHandler(), transport=TCP),
        op_maker, scale.requests_per_client, scale.warmup)
    # Converted stack: TCP-equivalent reliability work still happens (we
    # keep the TCP per-side cost) and the shim inflates per-packet stack
    # time by the measured conversion overhead on both hosts.
    inflation = 1 + 1.5 * TCP_TO_UDP_CONVERSION_OVERHEAD
    shim = replace(
        sized,
        client_stack=replace(
            sized.client_stack,
            send_ns=round(sized.client_stack.send_ns * inflation),
            recv_ns=round(sized.client_stack.recv_ns * inflation)),
        server_stack=replace(
            sized.server_stack,
            send_ns=round(sized.server_stack.send_ns * inflation),
            recv_ns=round(sized.server_stack.recv_ns * inflation)))
    udp_stats = run_closed_loop(
        build_client_server(shim, handler=RedisHandler(), transport=TCP),
        op_maker, scale.requests_per_client, scale.warmup)
    tcp_ops = tcp_stats.ops_per_second()
    udp_ops = udp_stats.ops_per_second()
    rows = [
        ["tcp (native)", round(tcp_ops)],
        ["udp (converted)", round(udp_ops)],
        ["conversion slowdown %", round(100 * (tcp_ops / udp_ops - 1), 1)],
    ]
    return AblationResult(
        title="Ablation — TCP-to-UDP conversion overhead (Redis)",
        headers=["variant", "ops/s"],
        rows=rows,
        notes="Sec VI-A3 measured ~9%; the paper therefore keeps TCP as "
              "the best-performing baseline for Redis/Twitter/TPCC.")


def run_all(quick: bool = True) -> Dict[str, AblationResult]:
    return {
        "log_queue_sizing": log_queue_sizing(quick=quick),
        "pm_latency_sensitivity": pm_latency_sensitivity(quick=quick),
        "log_capacity": log_capacity(quick=quick),
        "tcp_conversion": tcp_conversion(quick=quick),
    }
