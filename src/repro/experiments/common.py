"""Shared experiment plumbing: sizes, design points, result helpers."""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.config import QUICK_SCALE_CLIENTS, SystemConfig
from repro.experiments.deploy import DeploymentSpec, build
from repro.experiments.driver import OpMaker, RunStats, run_closed_loop
from repro.host.handler import RequestHandler


@dataclass(frozen=True)
class Scale:
    """How big to run an experiment.

    ``quick`` keeps unit/benchmark runs fast; ``full`` approaches the
    paper's testbed scale (64 clients).  The REPRO_FULL environment
    variable flips the default.
    """

    clients: int
    requests_per_client: int
    warmup: int

    @staticmethod
    def resolve_quick(quick: bool = True) -> bool:
        """Fold the REPRO_FULL environment override into ``quick``.

        Job specs call this once, at sweep-definition time, so a spec
        is self-contained: executing it later (possibly in a worker
        process) never re-consults the environment.
        """
        if os.environ.get("REPRO_FULL"):
            return False
        return quick

    @staticmethod
    def exact(quick: bool) -> "Scale":
        """The scale for ``quick`` with no environment override."""
        if quick:
            return Scale(clients=QUICK_SCALE_CLIENTS,
                         requests_per_client=80, warmup=8)
        return Scale(clients=64, requests_per_client=250, warmup=25)

    @staticmethod
    def pick(quick: bool = True) -> "Scale":
        return Scale.exact(Scale.resolve_quick(quick))

    def apply(self, config: SystemConfig) -> SystemConfig:
        """Size ``config`` for this scale (client count only)."""
        return config.with_clients(self.clients)


#: The paper's three design points (Sec VI-A4) as deployment specs.
DESIGN_POINTS: Dict[str, DeploymentSpec] = {
    "client-server": DeploymentSpec(placement="none"),
    "pmnet-switch": DeploymentSpec(placement="switch"),
    "pmnet-nic": DeploymentSpec(placement="nic"),
}


def run_design_point(design: str, config: SystemConfig, op_maker: OpMaker,
                     scale: Scale,
                     handler: Optional[RequestHandler] = None,
                     transport: str = "udp",
                     **spec_overrides) -> RunStats:
    """Build one design point, drive it closed-loop, return its stats."""
    spec = replace(DESIGN_POINTS[design], transport=transport,
                   **spec_overrides)
    deployment = build(spec, scale.apply(config), handler=handler)
    return run_closed_loop(deployment, op_maker,
                           requests_per_client=scale.requests_per_client,
                           warmup_requests=scale.warmup)
