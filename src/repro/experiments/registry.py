"""Registry mapping experiment ids to runnable entries.

Every table/figure of the paper's evaluation has an entry here; the CLI
and the benchmark harness both dispatch through it.

Each entry exposes the experiment at two granularities:

* ``run(quick=...)`` — the historical entry point: run the whole sweep
  serially and return the formatted report text.
* ``jobs``/``run_point``/``assemble`` — the job protocol: ``jobs()``
  enumerates the sweep as self-contained :class:`JobSpec`s,
  ``run_point`` executes one spec in any process, and ``assemble``
  turns the collected :class:`JobResult`s back into the *same*
  formatted text ``run`` would have produced.  The parallel harness
  (``repro.experiments.parallel``) and the result cache build on this.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache
from types import ModuleType
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.analysis.bdp import scaling_table
from repro.analysis.report import dict_rows, format_table
from repro.config import SystemConfig
from repro.experiments import (
    ablations,
    fig02_breakdown,
    fig07_ordering,
    fig15_payload_latency,
    fig16_stress,
    fig18_alternatives,
    fig19_app_throughput,
    fig20_cdf_caching,
    fig21_replication,
    fig22_vma,
    loadgen,
    motivation,
    multirack,
    rebalance,
    scaleout,
    sec6b6_recovery,
    sec7_scaling,
)
from repro.experiments.common import Scale
from repro.experiments.jobs import JobResult, JobSpec
from repro.failure import chaos


@dataclass(frozen=True)
class Experiment:
    """One reproducible experiment."""

    id: str
    description: str
    run: Callable[..., str]
    #: Enumerate the sweep: (config=None, quick=True) -> List[JobSpec].
    jobs: Callable[..., List[JobSpec]]
    #: Execute one spec; must be importable from a worker process.
    run_point: Callable[[JobSpec], Any]
    #: Collected results (in jobs() order) -> formatted report text.
    assemble: Callable[[Sequence[JobResult]], str]
    #: Backing module, for cache-key fingerprinting (None for builtins).
    module: Optional[ModuleType] = field(default=None, compare=False)


def _entry(experiment_id: str, description: str,
           module: ModuleType) -> Experiment:
    def runner(quick: bool = True) -> str:
        return module.run(quick=quick).format()

    def assembler(results: Sequence[JobResult]) -> str:
        return module.assemble(results).format()

    return Experiment(experiment_id, description, runner, module.jobs,
                      module.run_point, assembler, module)


def _fig02(quick: bool = True) -> str:
    return fig02_breakdown.run().format()


def _bdp_text() -> str:
    rows = scaling_table()
    keys = ["bandwidth_gbps", "pm_capacity_mbit", "pm_capacity_mbytes",
            "log_queue_kbit", "log_queue_bytes"]
    return format_table(
        ["BW Gbps", "PM Mbit", "PM MB", "queue kbit", "queue B"],
        dict_rows(rows, keys),
        title="Eq 1/2 — BDP sizing (Sec V-A, Sec VII)")


def _bdp(quick: bool = True) -> str:
    return _bdp_text()


def _bdp_jobs(config: Optional[SystemConfig] = None,
              quick: bool = True) -> List[JobSpec]:
    cfg = config if config is not None else SystemConfig()
    return [JobSpec(experiment="bdp", point="table", params={},
                    seed=cfg.seed, quick=Scale.resolve_quick(quick),
                    config=config)]


def _bdp_run_point(spec: JobSpec) -> str:
    return _bdp_text()


def _bdp_assemble(results: Sequence[JobResult]) -> str:
    return results[0].value


def _ablations(quick: bool = True) -> str:
    results = ablations.run_all(quick=quick)
    return "\n\n".join(result.format() for result in results.values())


def _ablations_assemble(results: Sequence[JobResult]) -> str:
    return "\n\n".join(result.format()
                       for result in ablations.assemble(results).values())


EXPERIMENTS: Dict[str, Experiment] = {
    "fig02": Experiment("fig02", "Latency breakdown of an update request",
                        _fig02, fig02_breakdown.jobs,
                        fig02_breakdown.run_point,
                        lambda rs: fig02_breakdown.assemble(rs).format(),
                        fig02_breakdown),
    "fig07": _entry("fig07", "Ordering under reorder/loss/failure",
                    fig07_ordering),
    "fig15": _entry("fig15", "Ideal-handler latency vs payload size",
                    fig15_payload_latency),
    "fig16": _entry("fig16", "Bandwidth vs latency stress test",
                    fig16_stress),
    "fig18": _entry("fig18", "Alternative logging designs",
                    fig18_alternatives),
    "fig19": _entry("fig19", "Application throughput vs update ratio",
                    fig19_app_throughput),
    "fig20": _entry("fig20", "Latency CDFs with read caching",
                    fig20_cdf_caching),
    "fig21": _entry("fig21", "3-way replication latency",
                    fig21_replication),
    "fig22": _entry("fig22", "Throughput with libVMA stacks", fig22_vma),
    "sec6b6": _entry("sec6b6", "Server failure recovery", sec6b6_recovery),
    "sec7": _entry("sec7", "Scaling to faster ports (Sec VII)",
                   sec7_scaling),
    "loadgen": _entry("loadgen",
                      "Flow-level load generator: closed/open-loop users",
                      loadgen),
    "motivation": _entry("motivation",
                         "Sync vs async vs sync-over-PMNet (Sec II-A)",
                         motivation),
    "multirack": _entry("multirack",
                        "Two-rack placement / cross-rack replication",
                        multirack),
    "rebalance": _entry("rebalance",
                        "Tail latency under live session migration "
                        "(drain / failover / hot-shard)",
                        rebalance),
    "scaleout": _entry("scaleout",
                       "Fabric tail latency vs shards/chain/hop cost "
                       "(10^4+ loadgen users)",
                       scaleout),
    "bdp": Experiment("bdp", "BDP sizing equations", _bdp, _bdp_jobs,
                      _bdp_run_point, _bdp_assemble),
    "ablations": Experiment("ablations", "Design-choice ablations",
                            _ablations, ablations.jobs, ablations.run_point,
                            _ablations_assemble, ablations),
    "chaos": Experiment("chaos",
                        "Seeded chaos sweep: random faults vs R1-R6 + "
                        "durability oracle",
                        chaos.run, chaos.jobs, chaos.run_point,
                        chaos.assemble, chaos),
}


def get(experiment_id: str) -> Experiment:
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}") from None


@lru_cache(maxsize=None)
def experiment_fingerprint(experiment_id: str) -> str:
    """Digest of the experiment's source, for cache invalidation.

    Editing an experiment module changes its fingerprint, which salts
    every cache key for that experiment — so stale cached sweep points
    are never reused after a code change.  Builtin entries (no backing
    module) use a constant.
    """
    entry = get(experiment_id)
    if entry.module is None or not getattr(entry.module, "__file__", None):
        return "builtin"
    with open(entry.module.__file__, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()[:16]
