"""Registry mapping experiment ids to runnable entries.

Every table/figure of the paper's evaluation has an entry here; the CLI
and the benchmark harness both dispatch through it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.analysis.bdp import scaling_table
from repro.analysis.report import dict_rows, format_table
from repro.experiments import (
    ablations,
    fig02_breakdown,
    fig07_ordering,
    fig15_payload_latency,
    fig16_stress,
    fig18_alternatives,
    fig19_app_throughput,
    fig20_cdf_caching,
    fig21_replication,
    fig22_vma,
    motivation,
    multirack,
    sec6b6_recovery,
    sec7_scaling,
)


@dataclass(frozen=True)
class Experiment:
    """One reproducible experiment."""

    id: str
    description: str
    run: Callable[..., str]


def _formatted(module) -> Callable[..., str]:
    def runner(quick: bool = True) -> str:
        return module.run(quick=quick).format()
    return runner


def _fig02(quick: bool = True) -> str:
    return fig02_breakdown.run().format()


def _bdp(quick: bool = True) -> str:
    rows = scaling_table()
    keys = ["bandwidth_gbps", "pm_capacity_mbit", "pm_capacity_mbytes",
            "log_queue_kbit", "log_queue_bytes"]
    return format_table(
        ["BW Gbps", "PM Mbit", "PM MB", "queue kbit", "queue B"],
        dict_rows(rows, keys),
        title="Eq 1/2 — BDP sizing (Sec V-A, Sec VII)")


def _ablations(quick: bool = True) -> str:
    results = ablations.run_all(quick=quick)
    return "\n\n".join(result.format() for result in results.values())


EXPERIMENTS: Dict[str, Experiment] = {
    "fig02": Experiment("fig02", "Latency breakdown of an update request",
                        _fig02),
    "fig07": Experiment("fig07", "Ordering under reorder/loss/failure",
                        _formatted(fig07_ordering)),
    "fig15": Experiment("fig15", "Ideal-handler latency vs payload size",
                        _formatted(fig15_payload_latency)),
    "fig16": Experiment("fig16", "Bandwidth vs latency stress test",
                        _formatted(fig16_stress)),
    "fig18": Experiment("fig18", "Alternative logging designs",
                        _formatted(fig18_alternatives)),
    "fig19": Experiment("fig19", "Application throughput vs update ratio",
                        _formatted(fig19_app_throughput)),
    "fig20": Experiment("fig20", "Latency CDFs with read caching",
                        _formatted(fig20_cdf_caching)),
    "fig21": Experiment("fig21", "3-way replication latency",
                        _formatted(fig21_replication)),
    "fig22": Experiment("fig22", "Throughput with libVMA stacks",
                        _formatted(fig22_vma)),
    "sec6b6": Experiment("sec6b6", "Server failure recovery",
                         _formatted(sec6b6_recovery)),
    "sec7": Experiment("sec7", "Scaling to faster ports (Sec VII)",
                       _formatted(sec7_scaling)),
    "motivation": Experiment("motivation",
                             "Sync vs async vs sync-over-PMNet (Sec II-A)",
                             _formatted(motivation)),
    "multirack": Experiment("multirack",
                            "Two-rack placement / cross-rack replication",
                            _formatted(multirack)),
    "bdp": Experiment("bdp", "BDP sizing equations", _bdp),
    "ablations": Experiment("ablations", "Design-choice ablations",
                            _ablations),
}


def get(experiment_id: str) -> Experiment:
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}") from None
