"""Load-generator experiment: flow-level users against the PMNet switch.

Two points per scale — one closed-loop (think-time users) and one
open-loop (Poisson arrivals) — driven through the shared job protocol
so the CLI, the parallel runner, and the determinism tests all execute
the same :class:`~repro.experiments.jobs.JobSpec`s.  The quick sweep
models a few thousand users; the full sweep models 10^5, the scale the
flow-level engine exists for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.report import format_table
from repro.config import SystemConfig
from repro.experiments.common import Scale
from repro.experiments.deploy import DeploymentSpec, build
from repro.experiments.jobs import JobResult, JobSpec, execute_serial
from repro.workloads.loadgen import LoadGenConfig, run_loadgen

#: The swept arrival processes, by point name.
QUICK_POINTS: Dict[str, LoadGenConfig] = {
    "closed": LoadGenConfig(mode="closed", users=2_000, total_requests=4_000,
                            window=64, warmup_requests=8),
    "open": LoadGenConfig(mode="open", total_requests=3_000,
                          mean_interarrival_ns=2_000, window=64,
                          warmup_requests=8),
}

FULL_POINTS: Dict[str, LoadGenConfig] = {
    "closed": LoadGenConfig(mode="closed", users=100_000,
                            total_requests=150_000, window=256,
                            warmup_requests=64),
    "open": LoadGenConfig(mode="open", total_requests=50_000,
                          mean_interarrival_ns=1_000, window=256,
                          warmup_requests=64),
}


@dataclass
class LoadGenExperimentResult:
    """Per-point totals plus the digests the identity tests compare."""

    #: point name -> summary dict (ops/s, latency, digest, ...).
    points: Dict[str, Dict[str, object]]

    def format(self) -> str:
        headers = ["point", "users", "requests", "ops/s", "mean us",
                   "digest"]
        rows: List[List[object]] = []
        for name, summary in sorted(self.points.items()):
            rows.append([name, summary["modeled_users"],
                         summary["completed"],
                         round(summary["ops_per_second"]),
                         round(summary["mean_latency_us"], 2),
                         summary["digest"]])
        return format_table(
            headers, rows,
            title="Load generator — flow-level users, PMNet switch")


def jobs(config: SystemConfig = None,  # type: ignore[assignment]
         quick: bool = True) -> List[JobSpec]:
    """One job per arrival process."""
    cfg = config if config is not None else SystemConfig()
    quick = Scale.resolve_quick(quick)
    points = QUICK_POINTS if quick else FULL_POINTS
    return [JobSpec(experiment="loadgen", point=f"mode={name}",
                    params={"point": name,
                            "loadgen": points[name].to_params()},
                    seed=cfg.seed, quick=quick, config=config)
            for name in sorted(points)]


def run_point(spec: JobSpec) -> Dict[str, object]:
    """Run one arrival process; returns a JSON-safe summary."""
    cfg = spec.resolved_config()
    scale = Scale.exact(spec.quick)
    loadgen = LoadGenConfig.from_params(spec.params["loadgen"])
    deployment = build(
        DeploymentSpec(placement="switch"),
        cfg.with_clients(scale.clients).with_payload(loadgen.payload_bytes))
    result = run_loadgen(deployment, loadgen)
    return {
        "mode": result.mode,
        "modeled_users": result.modeled_users,
        "shards": result.shards,
        "issued": result.issued,
        "completed": result.completed,
        "errors": result.errors,
        "duration_ns": result.duration_ns,
        "ops_per_second": result.ops_per_second(),
        "mean_latency_us": result.mean_latency_us(),
        "digest": result.digest(),
    }


def assemble(results: Sequence[JobResult]) -> LoadGenExperimentResult:
    return LoadGenExperimentResult(
        {result.spec.params["point"]: result.value for result in results})


def run(config: SystemConfig = None,  # type: ignore[assignment]
        quick: bool = True) -> LoadGenExperimentResult:
    return assemble(execute_serial(jobs(config, quick), run_point))
