"""End-to-end requests/CPU-second across the scheduler backends.

The kernel microbenchmark (:mod:`repro.sim.benchmark`) isolates the
event queue; this one answers the question users actually have: how
many *requests* does the full model push through per CPU-second, and
how much of the compiled backend's hot-path win survives once the PM
model, the protocol stack, and the folding pipeline are doing real work
around it.

Two legs per backend, both deterministic:

* **loadgen** — the flow-level closed-loop generator against the PMNet
  switch (the quick-sweep shape: thousands of modeled users, a fixed
  request budget), and
* **chaos** — seeded chaos plans (:func:`repro.failure.chaos.run_plan`)
  whose deployments, workloads, and fault schedules derive from the
  seed alone.

Each repeat runs all three backends back to back (one machine-speed
phase — see :mod:`repro.sim.benchmark` for why only adjacent runs are
comparable on shared hosts) and yields one pairwise ratio per
comparison: tiered/heap and compiled/tiered, on the aggregate
requests-per-CPU-second of the group's legs.  The reported ``speedup_*``
is the median, ``speedup_*_best`` the least-disturbed group — the floor
statistic.

Identity is enforced, not sampled: every leg's digest (the loadgen
latency digest, the chaos trace digest) must be bit-identical across
the three backends, otherwise :class:`BackendDivergence` is raised and
no report is written — a faster backend that computes a different
simulation is worthless.

Two entry points use this module: ``pmnet-repro bench-e2e`` (writes
``BENCH_e2e.json``) and ``benchmarks/test_e2e_requests.py`` (guards the
compiled ≥ tiered floor on the aggregate rate).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence

from repro.config import SystemConfig
from repro.experiments.common import Scale
from repro.experiments.deploy import DeploymentSpec, build
from repro.failure.chaos import generate_plan, run_plan
from repro.net.packet import reset_frame_ids
from repro.protocol.packet import reset_request_ids
from repro.workloads.loadgen import LoadGenConfig, run_loadgen

#: Result file emitted by ``pmnet-repro bench-e2e``.
BENCH_RESULT_FILE = "BENCH_e2e.json"

#: The scheduler backends every leg is measured against, in the order
#: they run inside a group (alternated per repeat to cancel drift).
E2E_BACKENDS = ("heap", "tiered", "compiled")

#: The loadgen leg: the quick closed-loop point — think-time users
#: against the switch, a fixed completed-request budget.
LOADGEN_POINT = LoadGenConfig(mode="closed", users=2_000,
                              total_requests=4_000, window=64,
                              warmup_requests=8)

#: Chaos plans per group; two seeds keep the leg mix (faults, cache
#: on/off, replication) broader than any single plan.
CHAOS_SEEDS = (1, 2)


class BackendDivergence(RuntimeError):
    """Two backends produced different simulations for the same leg."""


@contextmanager
def _pinned_kernel(backend: str):
    """Pin ``PMNET_KERNEL`` for one leg (deployments build their own
    simulator, so the env switch is the only hook)."""
    previous = os.environ.get("PMNET_KERNEL")
    os.environ["PMNET_KERNEL"] = backend
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("PMNET_KERNEL", None)
        else:
            os.environ["PMNET_KERNEL"] = previous


def _leg(name: str, backend: str, requests: int, digest: str,
         executed_events: int, cpu: float, wall: float) -> Dict[str, object]:
    return {
        "leg": name,
        "backend": backend,
        "requests": float(requests),
        "digest": digest,
        "executed_events": executed_events,
        "cpu_seconds": cpu,
        "seconds": wall,
        "requests_per_cpu_second": requests / cpu if cpu > 0 else 0.0,
    }


def _loadgen_leg(backend: str, seed: int) -> Dict[str, object]:
    """One closed-loop loadgen run on ``backend``; only the simulation
    (not deployment construction) is timed."""
    reset_request_ids()
    reset_frame_ids()
    with _pinned_kernel(backend):
        scale = Scale.exact(True)
        config = SystemConfig(seed=seed).with_clients(
            scale.clients).with_payload(LOADGEN_POINT.payload_bytes)
        deployment = build(DeploymentSpec(placement="switch"), config)
    sim = deployment.sim
    if sim.kernel != backend:
        raise BackendDivergence(
            f"requested backend {backend!r} resolved to {sim.kernel!r}")
    wall_started = time.perf_counter()
    cpu_started = time.process_time()
    result = run_loadgen(deployment, LOADGEN_POINT)
    cpu = time.process_time() - cpu_started
    wall = time.perf_counter() - wall_started
    return _leg("loadgen", backend, result.completed, result.digest(),
                sim.executed_events, cpu, wall)


def _chaos_leg(backend: str, seed: int) -> Dict[str, object]:
    """One full chaos plan on ``backend`` (``run_plan`` derives the
    deployment and resets the id counters itself)."""
    with _pinned_kernel(backend):
        plan = generate_plan(seed)
        wall_started = time.perf_counter()
        cpu_started = time.process_time()
        result = run_plan(plan)
        cpu = time.process_time() - cpu_started
        wall = time.perf_counter() - wall_started
    return _leg(f"chaos[{seed}]", backend, result.completions,
                result.trace_digest, result.executed_events, cpu, wall)


def _check_digests(legs_by_backend: Dict[str, List[Dict[str, object]]]) -> None:
    reference_backend = next(iter(legs_by_backend))
    reference = legs_by_backend[reference_backend]
    for backend, legs in legs_by_backend.items():
        for leg, ref in zip(legs, reference):
            if leg["digest"] != ref["digest"]:
                raise BackendDivergence(
                    f"{leg['leg']}: {backend} digest {leg['digest']} != "
                    f"{reference_backend} digest {ref['digest']}")
            if leg["executed_events"] != ref["executed_events"]:
                raise BackendDivergence(
                    f"{leg['leg']}: {backend} executed "
                    f"{leg['executed_events']} events, {reference_backend} "
                    f"executed {ref['executed_events']}")


def _aggregate(legs: Sequence[Dict[str, object]]) -> float:
    requests = sum(leg["requests"] for leg in legs)
    cpu = sum(leg["cpu_seconds"] for leg in legs)
    return requests / cpu if cpu > 0 else 0.0


def _median(sorted_values: List[float]) -> float:
    return sorted_values[len(sorted_values) // 2] if sorted_values else 0.0


def run_e2e_benchmark(repeats: int = 3, seed: int = 42,
                      chaos_seeds: Sequence[int] = CHAOS_SEEDS
                      ) -> Dict[str, object]:
    """Measure the end-to-end request rate on all three backends.

    Raises :class:`BackendDivergence` if any leg's digest or event
    count differs between backends — identity is the precondition for
    the speedups meaning anything.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    rates: Dict[str, List[float]] = {b: [] for b in E2E_BACKENDS}
    groups: List[Dict[str, object]] = []
    pairwise_tiered: List[float] = []
    pairwise_compiled: List[float] = []
    digests: Dict[str, str] = {}
    for index in range(repeats):
        order = E2E_BACKENDS if index % 2 == 0 else E2E_BACKENDS[::-1]
        legs_by_backend: Dict[str, List[Dict[str, object]]] = {}
        for backend in order:
            legs = [_loadgen_leg(backend, seed)]
            legs.extend(_chaos_leg(backend, s) for s in chaos_seeds)
            legs_by_backend[backend] = legs
        _check_digests(legs_by_backend)
        group = {}
        for backend, legs in legs_by_backend.items():
            rate = _aggregate(legs)
            rates[backend].append(rate)
            group[backend] = {"requests_per_cpu_second": rate, "legs": legs}
        groups.append(group)
        heap_rate = group["heap"]["requests_per_cpu_second"]
        tiered_rate = group["tiered"]["requests_per_cpu_second"]
        if heap_rate > 0:
            pairwise_tiered.append(tiered_rate / heap_rate)
        if tiered_rate > 0:
            pairwise_compiled.append(
                group["compiled"]["requests_per_cpu_second"] / tiered_rate)
        for leg in legs_by_backend[E2E_BACKENDS[0]]:
            digests[leg["leg"]] = leg["digest"]
    pairwise_tiered.sort()
    pairwise_compiled.sort()
    return {
        "benchmark": "e2e_requests",
        "backends": list(E2E_BACKENDS),
        "repeats": repeats,
        "seed": seed,
        "chaos_seeds": list(chaos_seeds),
        "loadgen": LOADGEN_POINT.to_params(),
        "requests_per_cpu_second": max(rates["compiled"]),
        "tiered_requests_per_cpu_second": max(rates["tiered"]),
        "baseline_requests_per_cpu_second": max(rates["heap"]),
        "speedup_tiered": _median(pairwise_tiered),
        "speedup_tiered_best": pairwise_tiered[-1] if pairwise_tiered else 0.0,
        "pairwise_tiered_speedups": pairwise_tiered,
        "speedup_compiled": _median(pairwise_compiled),
        "speedup_compiled_best": (pairwise_compiled[-1]
                                  if pairwise_compiled else 0.0),
        "pairwise_compiled_speedups": pairwise_compiled,
        "digests": digests,
        "digests_identical": True,  # _check_digests raises otherwise
        "all_requests_per_cpu_second": rates,
        "groups": groups,
    }


def write_result(result: Dict[str, object],
                 path: Optional[str] = None) -> str:
    """Write the enveloped benchmark report as JSON; return the path."""
    from repro.obs.export import write_bench_report

    target = path or BENCH_RESULT_FILE
    return write_bench_report('e2e', result, target, quick=True)


def format_result(result: Dict[str, object]) -> str:
    lines = [
        (f"e2e requests/CPU-sec (loadgen + chaos, compiled): "
         f"{result['requests_per_cpu_second']:,.0f} — compiled/tiered "
         f"{result['speedup_compiled']:.2f}x median / "
         f"{result['speedup_compiled_best']:.2f}x best group, tiered/heap "
         f"{result['speedup_tiered']:.2f}x median / "
         f"{result['speedup_tiered_best']:.2f}x best group "
         f"({result['repeats']} adjacent groups, digests identical)"),
    ]
    for backend in result.get("backends", ()):
        best = max(result["all_requests_per_cpu_second"][backend])
        lines.append(f"  {backend:9s} {best:>12,.0f} req/CPU-sec (best)")
    return "\n".join(lines)
