"""Closed-loop workload drivers (the YCSB-like client of Sec VI-A2).

Two entry points:

* :func:`run_closed_loop` — each client issues independent operations
  produced by an ``op_maker`` callback (key-value mixes, payload sweeps).
* :func:`run_sessions` — each client runs a workload-supplied generator
  (Twitter/TPC-C procedures with data dependencies and lock retries).

Both drive every client synchronously (one outstanding request, matching
the paper's synchronous RPC model), skip a configurable warm-up, and
return a :class:`RunStats` with latency distributions and client-
perceived throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.errors import ExperimentError
from repro.experiments.deploy import Deployment
from repro.host.client import Completion, PMNetClient
from repro.sim.monitor import _UNSET, LatencyRecorder, ThroughputMeter
from repro.workloads.kv import Operation

#: op_maker(client_index, request_index, rng) -> (Operation, payload_bytes)
OpMaker = Callable[[int, int, object], Tuple[Operation, int]]


@dataclass
class RunStats:
    """Everything a benchmark reports about one run."""

    all_latencies: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder("all"))
    update_latencies: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder("updates"))
    read_latencies: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder("reads"))
    throughput: ThroughputMeter = field(
        default_factory=lambda: ThroughputMeter("completions"))
    completions_by_via: Dict[str, int] = field(default_factory=dict)
    #: Genuine failures (bad requests, lock conflicts, server errors).
    errors: int = 0
    #: Well-formed lookups that found nothing (GET/DELETE on an absent
    #: key) — correct store behaviour under a read-heavy mix, reported
    #: separately so ``errors == 0`` means what it says.
    misses: int = 0
    requests: int = 0

    def record(self, now_ns: int, latency_ns: int, op: Operation,
               completion: Completion) -> None:
        self.requests += 1
        self.all_latencies.record(latency_ns)
        if op.is_update:
            self.update_latencies.record(latency_ns)
        else:
            self.read_latencies.record(latency_ns)
        self.throughput.record(now_ns)
        via = completion.via
        self.completions_by_via[via] = self.completions_by_via.get(via, 0) + 1
        result = completion.result
        if not result.ok:
            if result.is_miss:
                self.misses += 1
            else:
                self.errors += 1

    def ops_per_second(self, default: object = _UNSET) -> float:
        if default is _UNSET:
            return self.throughput.ops_per_second()
        return self.throughput.ops_per_second(default=default)

    def instruments(self) -> tuple:
        """The run's typed instruments (explicit registration)."""
        return (self.all_latencies, self.update_latencies,
                self.read_latencies, self.throughput)

    def mean_latency_us(self) -> float:
        return self.all_latencies.mean() / 1000.0

    def p99_latency_us(self) -> float:
        return self.all_latencies.p99() / 1000.0


class ClientAPI:
    """What a workload session generator gets to talk to.

    Wraps one :class:`PMNetClient` so workload code can ``yield`` from
    these helpers without touching simulator plumbing; the driver records
    latencies for every call automatically.
    """

    def __init__(self, sim, client: PMNetClient, stats: RunStats,
                 warmup_remaining: int) -> None:
        self._sim = sim
        self._client = client
        self._stats = stats
        self._warmup_remaining = warmup_remaining

    def request(self, op: Operation, payload_bytes: Optional[int] = None):
        """Issue one operation; yields its Completion (a sub-generator).

        Usage inside a session generator::

            completion = yield from api.request(op)
        """
        start = self._sim.now
        if op.is_update:
            event = self._client.send_update(op, payload_bytes)
        else:
            event = self._client.bypass(op, payload_bytes)
        completion = yield event
        if self._warmup_remaining > 0:
            self._warmup_remaining -= 1
        else:
            self._stats.record(self._sim.now, self._sim.now - start, op,
                               completion)
        return completion

    def think(self, delay_ns: int):
        """Client-side pause (request generation cost, backoff)."""
        if delay_ns > 0:
            yield delay_ns


#: session_factory(client_index, api, rng) -> generator
SessionFactory = Callable[[int, ClientAPI, object], Iterator]


def run_closed_loop(deployment: Deployment, op_maker: OpMaker,
                    requests_per_client: int,
                    warmup_requests: int = 0) -> RunStats:
    """Drive every client with independent generated operations."""
    def factory(index: int, api: ClientAPI, rng) -> Iterator:
        for request_index in range(requests_per_client + warmup_requests):
            op, size = op_maker(index, request_index, rng)
            yield from api.request(op, size)
            think = deployment.config.client.think_time_ns
            if think:
                yield think
    return run_sessions(deployment, factory, warmup_requests)


def run_sessions(deployment: Deployment, session_factory: SessionFactory,
                 warmup_requests: int = 0) -> RunStats:
    """Drive every client with a workload-defined session generator."""
    sim = deployment.sim
    stats = RunStats()
    if deployment.obs is not None:
        # Driving the same instrumented deployment twice would re-create
        # same-named run instruments, so only the first run's register.
        registry = deployment.obs.registry
        for instrument in stats.instruments():
            if instrument.name not in registry:
                registry.register(instrument)
    deployment.open_all_sessions()
    processes = []
    for index, client in enumerate(deployment.clients):
        rng = sim.random.stream(f"driver:{index}")
        api = ClientAPI(sim, client, stats, warmup_requests)
        generator = session_factory(index, api, rng)
        processes.append(sim.spawn(generator, f"driver{index}"))
    sim.run()
    unfinished = [p.name for p in processes if p.alive]
    if unfinished:
        raise ExperimentError(
            f"driver processes never finished: {unfinished[:5]} "
            f"(+{max(0, len(unfinished) - 5)} more) — requests were lost "
            "without retransmission, or the simulation deadlocked")
    return stats
