"""Figure 7: per-client packet ordering under adversity.

The design figure's three scenarios, executed rather than drawn:

(a) **reordered packets** — the client-to-device path randomly delays
    packets; the server's PMNet library restores order before applying;
(b) **packet loss** — the device-to-server path drops packets; the
    server detects SeqNum gaps and requests retransmission, which PMNet
    serves from its log;
(c) **failure** — the server power-cycles mid-stream and the log is
    replayed in order.

In every scenario the check is the same: the server applied each
session's updates in exactly 0,1,2,... order, nothing lost, nothing
doubled — verified with the PMTest-style checker over the run's trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.persistcheck import PersistenceChecker
from repro.analysis.report import format_table
from repro.config import SystemConfig
from repro.experiments.common import Scale
from repro.experiments.deploy import DeploymentSpec, build
from repro.experiments.jobs import JobResult, JobSpec, execute_serial
from repro.failure.injector import FailureInjector
from repro.net.link import Impairments
from repro.sim.clock import microseconds, milliseconds
from repro.sim.trace import Tracer
from repro.workloads.handlers import StructureHandler
from repro.workloads.kv import OpKind, Operation
from repro.workloads.pmdk.hashmap import PMHashmap


@dataclass
class ScenarioRow:
    name: str
    requests: int
    reordered_buffered: int
    duplicates_dropped: int
    retrans_requests: int
    retrans_served_from_log: int
    resent_after_failure: int
    checker_violations: int
    in_order: bool


@dataclass
class Fig07Result:
    rows: List[ScenarioRow] = field(default_factory=list)

    def scenario(self, name: str) -> ScenarioRow:
        return next(row for row in self.rows if row.name == name)

    def format(self) -> str:
        table = [[row.name, row.requests, row.reordered_buffered,
                  row.duplicates_dropped, row.retrans_requests,
                  row.retrans_served_from_log, row.resent_after_failure,
                  row.checker_violations, row.in_order]
                 for row in self.rows]
        body = format_table(
            ["scenario", "reqs", "buffered", "dups dropped",
             "retrans reqs", "served from log", "replayed",
             "violations", "in order"],
            table,
            title="Fig 7 — per-client ordering under reorder/loss/failure")
        return (f"{body}\nEvery scenario ends with the PMTest-style "
                "checker clean: rules R1-R6 hold.")


def _run_scenario(name: str, quick: bool,
                  impair_client_side: Optional[Impairments] = None,
                  impair_server_side: Optional[Impairments] = None,
                  crash: bool = False,
                  seed: int = 5) -> ScenarioRow:
    config = SystemConfig(seed=seed).with_clients(2 if quick else 8)
    requests = 40 if quick else 150
    tracer = Tracer(enabled=True)
    handler = StructureHandler(PMHashmap())
    deployment = build(DeploymentSpec(placement="switch"), config,
                       handler=handler, tracer=tracer)
    for link in deployment.topology.links:
        if impair_client_side and link.forward.name == "merge->pmnet1":
            link.forward.impairments = impair_client_side
        if impair_server_side and link.forward.name == "pmnet1->server":
            link.forward.impairments = impair_server_side
    sim = deployment.sim

    def client_proc(index, client):
        for i in range(requests):
            yield client.send_update(
                Operation(OpKind.SET, key=(index, i), value=i))
            yield config.client.think_time_ns

    deployment.open_all_sessions()
    for index, client in enumerate(deployment.clients):
        sim.spawn(client_proc(index, client), f"c{index}")
    if crash:
        injector = FailureInjector(sim)
        injector.crash_server_at(deployment.server, microseconds(200))
        injector.recover_server_at(deployment.server, milliseconds(2),
                                   deployment.pmnet_names)
    sim.run()

    server = deployment.server
    device = deployment.devices[0]
    # Definitive in-order check straight from the trace.
    violations = PersistenceChecker(tracer).check()
    processed_order: Dict[int, List[int]] = {}
    for record in tracer.filter(event="processed"):
        if record.details.get("update"):
            processed_order.setdefault(record.details["session"],
                                       []).append(record.details["seq"])
    in_order = all(seqs == sorted(seqs)
                   for seqs in processed_order.values())
    return ScenarioRow(
        name=name,
        requests=requests * len(deployment.clients),
        reordered_buffered=server.reorder.out_of_order_buffered,
        duplicates_dropped=server.reorder.duplicates_dropped,
        retrans_requests=int(server.retrans_sent),
        retrans_served_from_log=int(device.retrans_served),
        resent_after_failure=int(device.resend_engine.resends),
        checker_violations=len(violations),
        in_order=in_order,
    )


#: The design figure's scenarios as JSON-safe job parameters (the
#: impairment dicts become ``Impairments(**...)`` at execution time).
SCENARIOS = (
    {"name": "(a) reordering",
     "impair_client_side": {"reorder_probability": 0.3,
                            "reorder_extra_ns": 8_000},
     "impair_server_side": None, "crash": False},
    {"name": "(b) packet loss",
     "impair_client_side": None,
     "impair_server_side": {"loss_probability": 0.25}, "crash": False},
    {"name": "(c) server failure",
     "impair_client_side": None,
     "impair_server_side": None, "crash": True},
)

#: Every scenario builds its own SystemConfig from this seed.
SCENARIO_SEED = 5


def jobs(config: SystemConfig = None,  # type: ignore[assignment]
         quick: bool = True) -> List[JobSpec]:
    """One job per adversity scenario (config is scenario-built)."""
    quick = Scale.resolve_quick(quick)
    return [JobSpec(experiment="fig07", point=params["name"],
                    params=dict(params), seed=SCENARIO_SEED, quick=quick)
            for params in SCENARIOS]


def run_point(spec: JobSpec) -> ScenarioRow:
    params = spec.params
    client = params["impair_client_side"]
    server = params["impair_server_side"]
    return _run_scenario(
        params["name"], spec.quick,
        impair_client_side=Impairments(**client) if client else None,
        impair_server_side=Impairments(**server) if server else None,
        crash=params["crash"], seed=spec.seed)


def assemble(results: Sequence[JobResult]) -> Fig07Result:
    return Fig07Result(rows=[result.value for result in results])


def run(config: SystemConfig = None, quick: bool = True) -> Fig07Result:  # type: ignore[assignment]
    return assemble(execute_serial(jobs(config, quick), run_point))
