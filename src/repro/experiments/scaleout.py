"""Scale-out: fabric tail latency vs shards, chain length, hop cost.

The tentpole question for the multi-rack fabric (Sec VII's "what if the
store outgrows one rack?"): what do 10^4+ closed-loop users *feel* as
the deployment scales out?  Three sweep axes, each a one-line change of
the :class:`~repro.experiments.deploy.DeploymentSpec`:

* **shard count** — more racks x servers spread the consistent-hash
  ring; per-shard load drops, tail latency should hold;
* **chain length** — every extra chain member adds a store-and-forward
  PM write plus a cross-rack hop before the tail's early ACK;
* **cross-rack hop cost** — the leaf-spine propagation override
  (``spine_propagation_ns``) prices the spine fabric, and chained
  writes pay it once per chain hop.

Load is the flow-level generator (``repro.workloads.loadgen``): each
client host is a shard multiplexing thousands of virtual users, so the
quick sweep already models >= 10^4 users per point.  Reported latencies
are p50/p99 over the canonical sample table, whose digest is the
byte-identity surface the determinism suite compares across fold
levels, kernel backends, and worker counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.report import format_table
from repro.config import SystemConfig
from repro.experiments.common import Scale
from repro.experiments.deploy import DeploymentSpec, build
from repro.experiments.jobs import JobResult, JobSpec, execute_serial
from repro.workloads.loadgen import LoadGenConfig, LoadGenResult, run_loadgen

#: Modeled closed-loop users per point (the acceptance floor is 10^4).
QUICK_USERS = 12_000
FULL_USERS = 100_000

#: The swept fabric shapes: name -> DeploymentSpec params overrides.
#: The pivot point (4 shards, chain 3, default hop) appears once per
#: axis family so every axis reads against the same reference.
SWEEP: Dict[str, Dict[str, object]] = {
    # Axis 1: shard count (chain 3 throughout).
    "shards=2/chain=3": dict(racks=2, devices_per_rack=2,
                             servers_per_rack=1, chain_length=3),
    "shards=4/chain=3": dict(racks=2, devices_per_rack=2,
                             servers_per_rack=2, chain_length=3),
    "shards=6/chain=3": dict(racks=3, devices_per_rack=1,
                             servers_per_rack=2, chain_length=3),
    # Axis 2: chain length (4 shards throughout).
    "shards=4/chain=1": dict(racks=2, devices_per_rack=2,
                             servers_per_rack=2, chain_length=1),
    "shards=4/chain=2": dict(racks=2, devices_per_rack=2,
                             servers_per_rack=2, chain_length=2),
    # Axis 3: cross-rack hop cost (4 shards, chain 3).
    "shards=4/chain=3/hop=2us": dict(racks=2, devices_per_rack=2,
                                     servers_per_rack=2, chain_length=3,
                                     spine_propagation_ns=2_000),
    "shards=4/chain=3/hop=10us": dict(racks=2, devices_per_rack=2,
                                      servers_per_rack=2, chain_length=3,
                                      spine_propagation_ns=10_000),
}

#: Client hosts (= loadgen shards) per rack.
CLIENTS_PER_RACK = 2


def _spec_for(overrides: Dict[str, object]) -> DeploymentSpec:
    return DeploymentSpec(placement="switch",
                          clients_per_rack=CLIENTS_PER_RACK,
                          **overrides)  # type: ignore[arg-type]


def _loadgen_for(quick: bool) -> LoadGenConfig:
    if quick:
        return LoadGenConfig(mode="closed", users=QUICK_USERS,
                             total_requests=2_400, window=32,
                             warmup_requests=8)
    return LoadGenConfig(mode="closed", users=FULL_USERS,
                         total_requests=40_000, window=128,
                         warmup_requests=32)


def percentile_ns(result: LoadGenResult, quantile: float) -> int:
    """Nearest-rank percentile over the canonical sample table."""
    rows = sorted(latency for latencies in result.samples.values()
                  for latency in latencies)
    if not rows:
        return 0
    rank = max(1, math.ceil(quantile * len(rows)))
    return rows[rank - 1]


@dataclass
class ScaleoutResult:
    """Per-point tail-latency summaries keyed by sweep point name."""

    points: Dict[str, Dict[str, object]]

    def format(self) -> str:
        headers = ["point", "shards", "chain", "hop ns", "users",
                   "completed", "p50 us", "p99 us", "ops/s", "digest"]
        rows: List[List[object]] = []
        for name in SWEEP:
            summary = self.points.get(name)
            if summary is None:
                continue
            rows.append([
                name, summary["shards"], summary["chain_length"],
                summary["spine_propagation_ns"] or "-",
                summary["modeled_users"], summary["completed"],
                round(summary["p50_us"], 2), round(summary["p99_us"], 2),
                round(summary["ops_per_second"]), summary["digest"]])
        return format_table(
            headers, rows,
            title="Scale-out — fabric tail latency vs shards / chain / "
                  "hop cost")


def jobs(config: SystemConfig = None,  # type: ignore[assignment]
         quick: bool = True) -> List[JobSpec]:
    """One job per fabric sweep point."""
    cfg = config if config is not None else SystemConfig()
    quick = Scale.resolve_quick(quick)
    loadgen = _loadgen_for(quick)
    return [JobSpec(experiment="scaleout", point=name,
                    params={"point": name,
                            "spec": _spec_for(overrides).to_params(),
                            "loadgen": loadgen.to_params()},
                    seed=cfg.seed, quick=quick, config=config)
            for name, overrides in SWEEP.items()]


def run_point(spec: JobSpec) -> Dict[str, object]:
    """Drive one fabric shape with flow-level users; JSON-safe summary."""
    cfg = spec.resolved_config()
    deploy_spec = DeploymentSpec.from_params(spec.params["spec"])
    loadgen = LoadGenConfig.from_params(spec.params["loadgen"])
    deployment = build(deploy_spec,
                       cfg.with_payload(loadgen.payload_bytes))
    result = run_loadgen(deployment, loadgen)
    shards = deploy_spec.racks * deploy_spec.servers_per_rack
    return {
        "point": spec.params["point"],
        "shards": shards,
        "chain_length": deploy_spec.chain_length,
        "spine_propagation_ns": deploy_spec.spine_propagation_ns,
        "modeled_users": result.modeled_users,
        "completed": result.completed,
        "errors": result.errors,
        "p50_us": percentile_ns(result, 0.50) / 1000.0,
        "p99_us": percentile_ns(result, 0.99) / 1000.0,
        "ops_per_second": result.ops_per_second(),
        "mean_latency_us": result.mean_latency_us(),
        "digest": result.digest(),
    }


def assemble(results: Sequence[JobResult]) -> ScaleoutResult:
    return ScaleoutResult({result.spec.params["point"]: result.value
                           for result in results})


def run(config: SystemConfig = None,  # type: ignore[assignment]
        quick: bool = True) -> ScaleoutResult:
    return assemble(execute_serial(jobs(config, quick), run_point))
